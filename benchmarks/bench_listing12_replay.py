"""E-l12/13: monitored traces and deterministic replay (Listings 1.2/1.3, §5).

Paper artifacts: executing the Listing 1.1 counterexample as a test
records, under *minimal* instrumentation, only the port messages
(Listing 1.2); deterministic replay with *full* instrumentation then
adds ``[CurrentState]`` and ``[Timing]`` records (Listing 1.3 for the
faulty shuttle, Listing 1.5 for the correct one) without suffering the
probe effect.
"""

from repro import railcab
from repro.automata import Interaction
from repro.testing import (
    MessageEvent,
    StateEvent,
    TestVerdict,
    TimingEvent,
    execute_test,
    render_events,
    replay,
)
from repro.testing import test_case_from_trace as case_from_trace

LISTING_1_1_PROJECTION = [
    Interaction(None, ["convoyProposal"]),
    Interaction(["convoyProposalRejected"], None),
    Interaction(None, ["convoyProposal"]),
    Interaction(["startConvoy"], None),
    Interaction(None, ["breakConvoyProposal"]),
]


def build():
    shuttle = railcab.faulty_rear_shuttle()
    case = case_from_trace(LISTING_1_1_PROJECTION, name="listing-1.1")
    execution = execute_test(shuttle, case, port="rearRole")
    result = replay(shuttle, execution.recording, port="rearRole")
    return shuttle, execution, result


def test_listing_1_2_and_1_3_record_replay(benchmark, record_artifact):
    shuttle, execution, result = benchmark(build)

    # The faulty shuttle diverges (Listing 1.3's conflict): it reports
    # state "convoy" right after proposing.
    assert execution.verdict is TestVerdict.DIVERGED

    # Listing 1.2 shape: the minimal recording contains message events
    # only — the outgoing proposal and the incoming rejection.
    assert MessageEvent("convoyProposal", "rearRole", "outgoing", 1) in execution.events
    assert MessageEvent("convoyProposalRejected", "rearRole", "incoming", 2) in execution.events
    assert not any(isinstance(event, StateEvent) for event in execution.events)

    # Listing 1.3 shape: replay adds states and timing, probe-effect-free.
    assert result.probe_effect_free
    kinds = {type(event) for event in result.events}
    assert StateEvent in kinds and TimingEvent in kinds and MessageEvent in kinds
    states = [event.name for event in result.events if isinstance(event, StateEvent)]
    assert states[0] == "noConvoy"
    assert "convoy" in states  # the faulty mode switch the paper shows

    # Replaying never perturbed the live component's timing.
    assert not shuttle.probe_effect_active
    record_artifact("Listing 1.2 — minimal record", render_events(list(execution.events)))
    record_artifact("Listing 1.3 — full replay", render_events(list(result.events)))


def test_listing_1_5_successful_learning_trace(benchmark, record_artifact):
    def run_correct():
        shuttle = railcab.correct_rear_shuttle()
        case = case_from_trace(LISTING_1_1_PROJECTION, name="listing-1.1")
        execution = execute_test(shuttle, case, port="rearRole")
        return execution, replay(shuttle, execution.recording, port="rearRole")

    execution, result = benchmark(run_correct)
    # The correct shuttle follows the counterexample until the break
    # proposal; Listing 1.5's trace ends in state convoy.
    states = [event.name for event in result.events if isinstance(event, StateEvent)]
    assert states[0] == "noConvoy::default"
    assert "noConvoy::wait" in states
    assert any(state.startswith("convoy") for state in states)
    record_artifact("Listing 1.5 — monitored learning trace", render_events(list(result.events)))
