"""E-l11: the first verification counterexample (Listing 1.1, §4.1).

Paper artifact: checking ``M_a^c ∥ M_a^0 ⊨ φ_weak ∧ ¬δ`` fails, and the
run of Listing 1.1 — proposal, rejection, proposal again, startConvoy,
breakConvoyProposal, ending deadlocked in ``s_delta`` — is a
counterexample of that check.  Model checkers may return *any*
counterexample (ours prefers the shortest; the paper's conclusion
discusses exactly this strategy choice), so the reproduction asserts
both: our checker produces some valid counterexample, and the paper's
specific Listing 1.1 run is a valid deadlock run of the composition.
"""

from repro import railcab
from repro.automata import Interaction, Run, S_DELTA, chaotic_closure, compose
from repro.legacy import interface_of
from repro.logic import DEADLOCK_FREE, ModelChecker, counterexample, weaken_for_chaos
from repro.synthesis import initial_model, render_counterexample_listing


def build():
    shuttle = railcab.correct_rear_shuttle()
    interface = interface_of(shuttle)
    closure = chaotic_closure(
        initial_model(interface, labeler=railcab.rear_state_labeler),
        interface.universe(),
    )
    composed = compose(railcab.front_role_automaton(), closure)
    checker = ModelChecker(composed)
    weakened = weaken_for_chaos(railcab.PATTERN_CONSTRAINT)
    holds_property = checker.holds(weakened)
    holds_deadlock = checker.holds(DEADLOCK_FREE)
    witness = counterexample(composed, DEADLOCK_FREE, checker=checker)
    return composed, holds_property, holds_deadlock, witness


def _listing_1_1_run(composed) -> Run | None:
    """Re-trace the paper's exact Listing 1.1 interaction sequence."""
    sequence = [
        Interaction(["convoyProposal"], ["convoyProposal"]),
        Interaction(["convoyProposalRejected"], ["convoyProposalRejected"]),
        Interaction(["convoyProposal"], ["convoyProposal"]),
        Interaction(["startConvoy"], ["startConvoy"]),
        Interaction(["breakConvoyProposal"], ["breakConvoyProposal"]),
    ]
    frontier = {state: Run(state) for state in composed.initial}
    for interaction in sequence:
        next_frontier = {}
        for state, run in frontier.items():
            for transition in composed.transitions_from(state):
                if transition.interaction == interaction and transition.target not in next_frontier:
                    next_frontier[transition.target] = run.extend(interaction, transition.target)
        frontier = next_frontier
        if not frontier:
            return None
    for state, run in sorted(frontier.items(), key=lambda item: repr(item[0])):
        if state[1] == S_DELTA and composed.is_deadlock(state):
            return run
    return None


def test_listing_1_1_initial_counterexample(benchmark, record_artifact):
    composed, holds_property, holds_deadlock, witness = benchmark(build)

    # The first check must fail on the deadlock half of φ ∧ ¬δ.
    assert not holds_deadlock
    assert witness is not None
    assert witness.is_run_of(composed)
    assert composed.is_deadlock(witness.last_state)

    # The paper's Listing 1.1 run exists verbatim and deadlocks in s_delta.
    listing = _listing_1_1_run(composed)
    assert listing is not None
    assert listing.is_run_of(composed)
    record_artifact(
        "Listing 1.1 — initial counterexample",
        render_counterexample_listing(
            listing,
            legacy_inputs=railcab.FRONT_TO_REAR,
            legacy_outputs=railcab.REAR_TO_FRONT,
        ),
    )
