"""E-fig4: initial behavior synthesis (Figure 4(a)/(b), §3, Lemma 4).

Paper artifact: the trivial incomplete automaton capturing only the
known initial state ``noConvoy::default`` (4(a)), and its chaotic
closure (4(b)) — the initial state doubled, one copy wired to both
chaotic states by every interaction.  Lemma 4: the closure is a safe
abstraction of the real shuttle.
"""

from repro import railcab
from repro.automata import (
    CHAOS_PROPOSITION,
    ClosureState,
    S_ALL,
    S_DELTA,
    chaos_tolerant_labels,
    is_chaos_state,
    refines,
    to_dot,
)
from repro.legacy import interface_of
from repro.synthesis import initial_abstraction, initial_model


def build():
    shuttle = railcab.correct_rear_shuttle()
    interface = interface_of(shuttle)
    model = initial_model(interface, labeler=railcab.rear_state_labeler)
    closure = initial_abstraction(
        interface,
        interface.universe(),
        labeler=railcab.rear_state_labeler,
        deterministic_implementation=False,  # the literal Definition 9
    )
    return shuttle, interface, model, closure


def test_fig4_initial_synthesis(benchmark, record_artifact):
    shuttle, interface, model, closure = benchmark(build)

    # Figure 4(a): exactly the initial state, no transitions, no refusals.
    assert model.states == frozenset({"noConvoy::default"})
    assert model.transitions == frozenset()
    assert model.refusals == frozenset()

    # Figure 4(b): doubled initial state plus the chaotic core.
    initial_0 = ClosureState("noConvoy::default", False)
    initial_1 = ClosureState("noConvoy::default", True)
    assert closure.states == frozenset({initial_0, initial_1, S_ALL, S_DELTA})
    assert closure.initial == frozenset({initial_0, initial_1})
    # The extended copy reaches both chaotic states on '*'.
    universe = interface.universe()
    escapes = [t for t in closure.transitions_from(initial_1) if is_chaos_state(t.target)]
    assert len(escapes) == 2 * len(universe)
    # The not-extended copy blocks (it may already deadlock).
    assert closure.is_deadlock(initial_0)

    # Lemma 4: M_r ⊑ M_a^0.
    hidden = shuttle._hidden.with_labels(railcab.rear_state_labeler)
    assert refines(
        hidden,
        closure,
        label_match=chaos_tolerant_labels(CHAOS_PROPOSITION),
        universe=universe,
    )
    record_artifact("Figure 4(b) — chaos(M_l^0) (DOT)", to_dot(closure))
