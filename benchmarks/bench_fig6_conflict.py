"""E-fig6 + Listing 1.4: fast conflict detection on the faulty shuttle.

Paper artifact: after one learning step the synthesized model (Figure 6
— ``noConvoy`` switching straight to ``convoy`` upon proposing) is in
conflict with the context: the violation of
``A[] not (rearRole.convoy and frontRole.noConvoy)`` lies entirely in
the synthesized part, proving a real integration error without further
testing — "our approach supports a fast conflict detection".
"""

from repro import railcab
from repro.automata import Interaction, is_chaos_state
from repro.synthesis import Verdict, render_counterexample_listing
from conftest import run_synthesis


def build():
    return run_synthesis(railcab.faulty_rear_shuttle())


def test_fig6_conflict_detection(benchmark, record_artifact):
    result = benchmark(build)

    # A real violation of the pattern constraint, found fast.
    assert result.verdict is Verdict.REAL_VIOLATION
    assert result.violation_kind == "property"
    assert result.iteration_count == 2  # the paper's two-step narrative
    assert result.iterations[-1].fast_conflict
    assert result.iterations[-1].tests_executed == 0

    # Figure 6's learned model: proposing switches straight to convoy.
    assert any(
        transition.source == "noConvoy"
        and transition.outputs == frozenset({"convoyProposal"})
        and transition.target == "convoy"
        for transition in result.final_model.transitions
    )

    # Listing 1.4: the witness stays in the synthesized (non-chaotic)
    # part and ends with rear convoy / front noConvoy.
    witness = result.violation_witness
    assert witness is not None
    assert not any(is_chaos_state(state[1]) for state in witness.states)
    assert witness.steps[0][0] == Interaction(
        ["convoyProposal"], ["convoyProposal"]
    )
    final_context, final_legacy = witness.last_state
    assert str(final_context).startswith("noConvoy")
    assert str(final_legacy.base if hasattr(final_legacy, "base") else final_legacy) == "convoy"

    record_artifact(
        "Listing 1.4 — conflict in the synthesized part",
        render_counterexample_listing(
            witness,
            legacy_inputs=railcab.FRONT_TO_REAR,
            legacy_outputs=railcab.REAR_TO_FRONT,
        ),
    )
