"""E-auto: the second case study (AUTOSAR-style supplier integration).

The paper's introduction motivates the scheme with automotive supplier
components; this benchmark times the full workflow on the
BrakeCoordination scenario: pattern verification, supplier-A proof,
supplier-B rejection, and the architecture-level ``integrate`` façade.
"""

from repro import automotive
from repro.integration import integrate
from repro.synthesis import IntegrationSynthesizer, Verdict


def test_pattern_verification(benchmark):
    result = benchmark(lambda: automotive.brake_coordination_pattern().verify())
    assert result.ok


def test_supplier_a_proven(benchmark):
    def run():
        return IntegrationSynthesizer(
            automotive.coordinator_automaton(),
            automotive.supplier_a_acc(),
            automotive.BRAKE_CONSTRAINT,
            labeler=automotive.acc_state_labeler,
        ).run()

    result = benchmark(run)
    assert result.verdict is Verdict.PROVEN


def test_supplier_b_rejected(benchmark):
    def run():
        return IntegrationSynthesizer(
            automotive.coordinator_automaton(),
            automotive.supplier_b_acc(),
            automotive.BRAKE_CONSTRAINT,
            labeler=automotive.acc_state_labeler,
        ).run()

    result = benchmark(run)
    assert result.verdict is Verdict.REAL_VIOLATION


def test_full_integration_workflow(benchmark):
    def run():
        return integrate(
            automotive.acc_architecture(),
            {"acc": automotive.supplier_a_acc()},
            labelers={"acc": automotive.acc_state_labeler},
        )

    report = benchmark(run)
    assert report.ok
