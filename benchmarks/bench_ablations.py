"""Ablations over the design choices DESIGN.md calls out.

* refusal mode: the deterministic wholesale refusals (§4.3's
  determinism argument) vs. Definition 12's literal single refusal;
* counterexamples per iteration: the paper's conclusion proposes
  deriving several counterexamples per check — measures verification
  rounds traded against test executions;
* fast conflict detection on/off;
* context-relevant scaling: the chain-server family where the learned
  part *must* grow (complement of claim C2's flat curve).
"""

import pytest

from repro import railcab
from repro.logic import parse
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.workloads import chain_server, ping_client


def synthesize(component, **kwargs):
    defaults = dict(
        labeler=railcab.rear_state_labeler,
        port="rearRole",
    )
    defaults.update(kwargs)
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        **defaults,
    ).run()


@pytest.mark.parametrize("mode", ["deterministic", "conservative"])
def test_ablation_refusal_mode(benchmark, mode):
    result = benchmark(
        lambda: synthesize(railcab.correct_rear_shuttle(convoy_ticks=1), refusal_mode=mode)
    )
    assert result.verdict is Verdict.PROVEN
    if mode == "conservative":
        reference = synthesize(railcab.correct_rear_shuttle(convoy_ticks=1))
        # Definition 12's literal mode converges too, but never faster.
        assert result.iteration_count >= reference.iteration_count


@pytest.mark.parametrize("per_iteration", [1, 3, 5])
def test_ablation_counterexample_batching(benchmark, per_iteration):
    result = benchmark(
        lambda: synthesize(
            railcab.correct_rear_shuttle(convoy_ticks=1),
            settings=SynthesisSettings(counterexamples_per_iteration=per_iteration),
        )
    )
    assert result.verdict is Verdict.PROVEN
    if per_iteration > 1:
        reference = synthesize(railcab.correct_rear_shuttle(convoy_ticks=1))
        # Fewer (or equal) verification rounds — the paper's conjecture.
        assert result.iteration_count <= reference.iteration_count


@pytest.mark.parametrize("fast", [True, False])
def test_ablation_fast_conflict(benchmark, fast):
    result = benchmark(lambda: synthesize(railcab.faulty_rear_shuttle(), fast_conflict=fast))
    assert result.verdict is Verdict.REAL_VIOLATION
    final = result.iterations[-1]
    if fast:
        assert final.tests_executed == 0
    else:
        assert final.tests_executed > 0


@pytest.mark.parametrize("length", [2, 4, 8])
def test_ablation_context_relevant_scaling(benchmark, length):
    """When the context exercises everything, learning must scale."""
    component = chain_server(length)

    def run():
        return IntegrationSynthesizer(
            ping_client(),
            chain_server(length),
            parse("AG (client.waiting -> AF[1,3] client.idle)"),
            labeler=lambda s: {f"server.{s}"},
        ).run()

    result = benchmark(run)
    assert result.verdict is Verdict.PROVEN
    # All 2·length states are context-relevant and get learned.
    assert result.learned_states == component.state_bound
