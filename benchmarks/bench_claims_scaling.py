"""E-claims: the paper's headline claims C1–C4, quantified.

* C1 (soundness): verdicts agree with ground truth on a family of
  mutated shuttles — no false alarms, no missed real errors;
* C2 (partial learning): the effort to *prove* the integration is
  independent of how much context-irrelevant behavior the component
  carries;
* C3 (fast conflict detection): the faulty shuttle is exposed after two
  iterations with zero tests in the final one;
* C4 (monotone convergence): knowledge grows strictly monotonically and
  the series terminates.
"""

import pytest

from repro import railcab
from repro.automata import compose
from repro.logic import ModelChecker, parse
from repro.synthesis import Verdict
from conftest import run_synthesis


def test_c1_soundness_of_verdicts(benchmark):
    """Every verdict matches the white-box ground truth (Lemmas 5/6)."""

    def verify_family():
        components = {
            "correct": railcab.correct_rear_shuttle(),
            "correct-long": railcab.correct_rear_shuttle(convoy_ticks=3),
            "correct-shy": railcab.correct_rear_shuttle(breaks_convoy=False),
            "faulty": railcab.faulty_rear_shuttle(),
            "overbuilt": railcab.overbuilt_rear_shuttle(extra_states=5),
        }
        outcomes = {}
        for name, component in components.items():
            result = run_synthesis(component)
            truth = compose(
                railcab.front_role_automaton(),
                component._hidden.with_labels(railcab.rear_state_labeler),
            )
            checker = ModelChecker(truth)
            ground = checker.holds(railcab.PATTERN_CONSTRAINT) and checker.holds(
                parse("AG not deadlock")
            )
            outcomes[name] = (result.verdict, ground)
        return outcomes

    outcomes = benchmark(verify_family)
    for name, (verdict, ground) in outcomes.items():
        assert verdict is not Verdict.BUDGET_EXCEEDED, name
        assert (verdict is Verdict.PROVEN) == ground, name


@pytest.mark.parametrize("extra_states", [2, 10, 30])
def test_c2_partial_learning_suffices(benchmark, extra_states):
    """Proof effort is flat in the size of context-irrelevant behavior."""
    component = railcab.overbuilt_rear_shuttle(extra_states=extra_states)
    result = benchmark(
        lambda: run_synthesis(railcab.overbuilt_rear_shuttle(extra_states=extra_states))
    )
    assert result.verdict is Verdict.PROVEN
    # The learned model never grows with the diagnostic chain:
    assert result.learned_states <= 5
    assert result.learned_states < component.state_bound
    # The reference point: the baseline iteration/test counts of the
    # plain correct shuttle.
    reference = run_synthesis(railcab.correct_rear_shuttle())
    assert result.iteration_count == reference.iteration_count
    assert result.total_tests == reference.total_tests


def test_c3_fast_conflict_detection(benchmark):
    result = benchmark(lambda: run_synthesis(railcab.faulty_rear_shuttle()))
    assert result.verdict is Verdict.REAL_VIOLATION
    assert result.iteration_count == 2
    assert result.iterations[-1].fast_conflict
    assert result.iterations[-1].tests_executed == 0


def test_c4_monotone_convergence(benchmark):
    result = benchmark(lambda: run_synthesis(railcab.correct_rear_shuttle(convoy_ticks=2)))
    assert result.verdict is Verdict.PROVEN
    knowledge = [
        record.model_transitions + record.model_refusals for record in result.iterations
    ]
    # §4.4: strictly monotone progress until the final (proving) check.
    for before, after in zip(knowledge, knowledge[1:]):
        assert after > before or after == knowledge[-1]
    gains = [record.knowledge_gained for record in result.iterations[:-1]]
    assert all(gain > 0 for gain in gains)
