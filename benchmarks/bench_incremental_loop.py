"""Incremental verification engine: loop wall-time vs full recompose.

The synthesis loop re-verifies after every learning step.  The
from-scratch pipeline rebuilds the chaotic closure, recomposes the
product, and model-checks cold each iteration; the incremental engine
(:mod:`repro.automata.incremental`) patches the dirty region of all
three instead.  Both must produce the *same* closures, products,
verdicts, and final models — only the work differs.

Measured here on the RailCab convoy workload (the paper's running
example, scaled via ``convoy_ticks`` so the loop runs for hundreds of
learning iterations) and on the multi-legacy front+rear workload.
``test_incremental_speedup_over_full_recompose`` asserts the headline
claim: at least a 3x total-loop speedup at identical verdicts.

``tools/bench_report.py`` normalizes this module's
``--benchmark-json`` output into ``BENCH_loop.json``.
"""

from __future__ import annotations

import statistics
import time

from repro import railcab
from repro.synthesis import IntegrationSynthesizer, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer

#: Convoy length for the per-path benchmarks (quick: ~70 iterations).
QUICK_TICKS = 32
#: Convoy length for the speedup comparison (~200 iterations; the
#: larger product makes the full-recompose overhead dominate clearly).
SPEEDUP_TICKS = 96
#: The headline claim asserted by this module.
SPEEDUP_FLOOR = 3.0


def _convoy_synthesizer(*, incremental: bool, ticks: int) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=ticks),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        incremental=incremental,
    )


def _multi_synthesizer(*, incremental: bool) -> MultiLegacySynthesizer:
    return MultiLegacySynthesizer(
        None,
        [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=8)],
        railcab.PATTERN_CONSTRAINT,
        labelers={
            "frontShuttle": railcab.front_state_labeler,
            "rearShuttle": railcab.rear_state_labeler,
        },
        incremental=incremental,
    )


def _loop_extra_info(result) -> dict:
    last = result.iterations[-1]
    return {
        "iterations": result.iteration_count,
        "composed_states_final": last.composed_states,
        "composed_states_max": max(r.composed_states for r in result.iterations),
        "checker_fixpoint_work_total": sum(r.checker_fixpoint_work for r in result.iterations),
        "product_hits": sum(r.product_hits for r in result.iterations),
        "product_misses": sum(r.product_misses for r in result.iterations),
        "closure_groups_reused": sum(r.closure_groups_reused for r in result.iterations),
        "closure_groups_rebuilt": sum(r.closure_groups_rebuilt for r in result.iterations),
        "dirty_states_total": sum(r.dirty_states for r in result.iterations),
        "affected_states_total": sum(r.affected_states for r in result.iterations),
    }


def test_loop_incremental_convoy(benchmark):
    """Total loop wall-time with the incremental engine (default path)."""
    result = benchmark(lambda: _convoy_synthesizer(incremental=True, ticks=QUICK_TICKS).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "incremental"
    benchmark.extra_info["convoy_ticks"] = QUICK_TICKS


def test_loop_full_recompose_convoy(benchmark):
    """Total loop wall-time rebuilding closure/product/checker each iteration."""
    result = benchmark(lambda: _convoy_synthesizer(incremental=False, ticks=QUICK_TICKS).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "full_recompose"
    benchmark.extra_info["convoy_ticks"] = QUICK_TICKS


def test_incremental_speedup_over_full_recompose(benchmark):
    """>= 3x total-loop speedup at identical verdicts (the tentpole claim).

    Interleaves full and incremental runs and compares the per-mode
    minima — the statistic least sensitive to scheduler noise (and the
    one pytest-benchmark itself leads with).
    """

    def measure():
        incr_times: list[float] = []
        full_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["incremental"] = _convoy_synthesizer(
                incremental=True, ticks=SPEEDUP_TICKS
            ).run()
            incr_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["full"] = _convoy_synthesizer(
                incremental=False, ticks=SPEEDUP_TICKS
            ).run()
            full_times.append(time.perf_counter() - t0)
        return results, incr_times, full_times

    results, incr_times, full_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    incremental, full = results["incremental"], results["full"]

    # Equal outcomes: the engine must not change what the loop concludes.
    assert incremental.verdict is full.verdict is Verdict.PROVEN
    assert incremental.iteration_count == full.iteration_count >= 8
    assert incremental.final_model == full.final_model

    speedup_min = min(full_times) / min(incr_times)
    speedup_median = statistics.median(full_times) / statistics.median(incr_times)
    benchmark.extra_info.update(
        {
            "convoy_ticks": SPEEDUP_TICKS,
            "iterations": incremental.iteration_count,
            "full_loop_seconds_min": min(full_times),
            "incremental_loop_seconds_min": min(incr_times),
            "full_loop_seconds_median": statistics.median(full_times),
            "incremental_loop_seconds_median": statistics.median(incr_times),
            "speedup_min": speedup_min,
            "speedup_median": speedup_median,
            "incremental_extra": _loop_extra_info(incremental),
            "full_extra": _loop_extra_info(full),
        }
    )
    assert speedup_min >= SPEEDUP_FLOOR, (
        f"incremental engine speedup {speedup_min:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(full min {min(full_times) * 1000:.1f}ms, incremental min {min(incr_times) * 1000:.1f}ms)"
    )


def test_loop_incremental_multi_legacy(benchmark):
    """The n-ary product path: front+rear learned in parallel."""
    result = benchmark(lambda: _multi_synthesizer(incremental=True).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    reference = _multi_synthesizer(incremental=False).run()
    assert reference.verdict is result.verdict
    assert reference.iteration_count == result.iteration_count
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "incremental_multi"
