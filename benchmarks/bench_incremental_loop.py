"""Incremental verification engine: loop wall-time vs full recompose.

The synthesis loop re-verifies after every learning step.  The
from-scratch pipeline rebuilds the chaotic closure, recomposes the
product, and model-checks cold each iteration; the incremental engine
(:mod:`repro.automata.incremental`) patches the dirty region of all
three instead.  Both must produce the *same* closures, products,
verdicts, and final models — only the work differs.

Measured here on the RailCab convoy workload (the paper's running
example, scaled via ``convoy_ticks`` so the loop runs for hundreds of
learning iterations) and on the multi-legacy front+rear workload.
``test_incremental_speedup_over_full_recompose`` asserts the headline
claim: at least a 3x total-loop speedup at identical verdicts.

The sharded variants exercise the ``parallelism=`` knob: since this
machinery took over the product re-exploration, the sequential path
*is* the ``K=1`` direct shard call, so the 3x floor above doubles as
the K=1 no-regression guard; ``test_sharded_loop_k1_no_regression``
additionally compares K=1 against the default path round by round, and
``test_sharded_loop_k4_speedup_report`` reports the measured K=4 ratio
honestly (on a single-core GIL-bound runner it can be below 1 — the
point of sharding here is determinism plus scaling headroom, which the
report records rather than asserts).

The ``checker_sharded`` variants do the same for the *checker fixpoint*
sharding knob (``checker_parallelism=``): K=1 must not regress the
sequential solvers, and the K=4 ratio is measured and recorded with the
product sharding pinned at 1 so the checker contribution is isolated.

The ``tracing_overhead`` guard does the same for the observability
layer (``repro.obs``): the instrumentation is permanent, so the
``NullTracer`` cost is measured as span-count × per-null-call cost
(there is no un-instrumented loop to diff against) and must stay below
1% of loop time; a live JSONL-streaming tracer must stay within 10%.
The ``robust_overhead`` guard applies the same accounting to the
fault-tolerant test supervisor (``repro.testing.robust``): the
fault-free supervised path must stay within 5% of loop time.  The
``flight_recorder_overhead`` guard does it once more for the progress
/ flight-recorder event sites: un-armed (the empty
``ProgressEmitter``) below 1%, an armed in-memory ring below 5%.  The
``remote_overhead`` guard pins the out-of-process boundary
(``repro.legacy.remote``): a warm host's per-step frame round-trip
must cost under 5ms over the in-process step, and a warm
``InstancePool`` acquire must stay far below a cold interpreter spawn.

``tools/bench_report.py`` normalizes this module's
``--benchmark-json`` output into ``BENCH_loop.json``.
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time

from repro import railcab
from repro.obs import NULL_TRACER, Tracer, span_line
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer

#: Convoy length for the per-path benchmarks (quick: ~70 iterations).
QUICK_TICKS = 32
#: Convoy length for the speedup comparison (~200 iterations; the
#: larger product makes the full-recompose overhead dominate clearly).
SPEEDUP_TICKS = 96
#: The headline claim asserted by this module.
SPEEDUP_FLOOR = 3.0


def _convoy_synthesizer(
    *,
    incremental: bool,
    ticks: int,
    parallelism: int | None = None,
    checker_parallelism: int | None = None,
    tracer=None,
    flight=None,
) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=ticks),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=SynthesisSettings(
            incremental=incremental,
            parallelism=parallelism,
            checker_parallelism=checker_parallelism,
            tracer=tracer,
            flight_recorder=flight,
        ),
    )


def _multi_synthesizer(*, incremental: bool) -> MultiLegacySynthesizer:
    return MultiLegacySynthesizer(
        None,
        [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=8)],
        railcab.PATTERN_CONSTRAINT,
        labelers={
            "frontShuttle": railcab.front_state_labeler,
            "rearShuttle": railcab.rear_state_labeler,
        },
        settings=SynthesisSettings(incremental=incremental),
    )


def _loop_extra_info(result) -> dict:
    last = result.iterations[-1]
    return {
        "iterations": result.iteration_count,
        "composed_states_final": last.composed_states,
        "composed_states_max": max(r.composed_states for r in result.iterations),
        "checker_fixpoint_work_total": sum(r.checker_fixpoint_work for r in result.iterations),
        "product_hits": sum(r.product_hits for r in result.iterations),
        "product_misses": sum(r.product_misses for r in result.iterations),
        "closure_groups_reused": sum(r.closure_groups_reused for r in result.iterations),
        "closure_groups_rebuilt": sum(r.closure_groups_rebuilt for r in result.iterations),
        "dirty_states_total": sum(r.dirty_states for r in result.iterations),
        "affected_states_total": sum(r.affected_states for r in result.iterations),
        "product_shards": max((r.product_shards for r in result.iterations), default=0),
        "shard_handoffs_total": sum(r.product_shard_handoffs for r in result.iterations),
        "shard_merge_conflicts_total": sum(
            r.product_shard_merge_conflicts for r in result.iterations
        ),
        "checker_shards": max((r.checker_shards for r in result.iterations), default=1),
        "checker_shard_handoffs_total": sum(
            r.checker_shard_handoffs for r in result.iterations
        ),
    }


def test_loop_incremental_convoy(benchmark):
    """Total loop wall-time with the incremental engine (default path)."""
    result = benchmark(lambda: _convoy_synthesizer(incremental=True, ticks=QUICK_TICKS).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "incremental"
    benchmark.extra_info["convoy_ticks"] = QUICK_TICKS


def test_loop_full_recompose_convoy(benchmark):
    """Total loop wall-time rebuilding closure/product/checker each iteration."""
    result = benchmark(lambda: _convoy_synthesizer(incremental=False, ticks=QUICK_TICKS).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "full_recompose"
    benchmark.extra_info["convoy_ticks"] = QUICK_TICKS


def test_incremental_speedup_over_full_recompose(benchmark):
    """>= 3x total-loop speedup at identical verdicts (the tentpole claim).

    Interleaves full and incremental runs and compares the per-mode
    minima — the statistic least sensitive to scheduler noise (and the
    one pytest-benchmark itself leads with).
    """

    def measure():
        incr_times: list[float] = []
        full_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["incremental"] = _convoy_synthesizer(
                incremental=True, ticks=SPEEDUP_TICKS
            ).run()
            incr_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["full"] = _convoy_synthesizer(
                incremental=False, ticks=SPEEDUP_TICKS
            ).run()
            full_times.append(time.perf_counter() - t0)
        return results, incr_times, full_times

    results, incr_times, full_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    incremental, full = results["incremental"], results["full"]

    # Equal outcomes: the engine must not change what the loop concludes.
    assert incremental.verdict is full.verdict is Verdict.PROVEN
    assert incremental.iteration_count == full.iteration_count >= 8
    assert incremental.final_model == full.final_model

    speedup_min = min(full_times) / min(incr_times)
    speedup_median = statistics.median(full_times) / statistics.median(incr_times)
    benchmark.extra_info.update(
        {
            "convoy_ticks": SPEEDUP_TICKS,
            "iterations": incremental.iteration_count,
            "full_loop_seconds_min": min(full_times),
            "incremental_loop_seconds_min": min(incr_times),
            "full_loop_seconds_median": statistics.median(full_times),
            "incremental_loop_seconds_median": statistics.median(incr_times),
            "speedup_min": speedup_min,
            "speedup_median": speedup_median,
            "incremental_extra": _loop_extra_info(incremental),
            "full_extra": _loop_extra_info(full),
        }
    )
    assert speedup_min >= SPEEDUP_FLOOR, (
        f"incremental engine speedup {speedup_min:.2f}x below the {SPEEDUP_FLOOR}x floor "
        f"(full min {min(full_times) * 1000:.1f}ms, incremental min {min(incr_times) * 1000:.1f}ms)"
    )


def test_sharded_loop_k1_no_regression(benchmark):
    """The K=1 sharded path must not regress the sequential loop.

    Both sides run the identical convoy loop; the "sequential" side is
    the default path (``parallelism=None`` → 1), the "sharded" side
    forces ``parallelism=1`` explicitly.  Besides bit-identical results,
    the no-regression claim is asserted on the *best paired round*: a
    real K=1 overhead would slow every round, so at least one round in
    which the sharded side is at least as fast refutes a regression
    without gating on scheduler noise (the min-based ratio is recorded
    for the report).
    """

    def measure():
        default_times: list[float] = []
        k1_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["default"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS
            ).run()
            default_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["k1"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1
            ).run()
            k1_times.append(time.perf_counter() - t0)
        return results, default_times, k1_times

    results, default_times, k1_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    default, k1 = results["default"], results["k1"]
    assert default.verdict is k1.verdict is Verdict.PROVEN
    assert default.iteration_count == k1.iteration_count
    assert default.final_model == k1.final_model
    assert all(r.product_shards == 1 for r in k1.iterations)

    best_paired = max(d / s for d, s in zip(default_times, k1_times))
    ratio_min = min(default_times) / min(k1_times)
    benchmark.extra_info.update(
        {
            "mode": "sharded_k1",
            "convoy_ticks": QUICK_TICKS,
            "iterations": k1.iteration_count,
            "k1_vs_sequential_best_paired": best_paired,
            "k1_vs_sequential_min_ratio": ratio_min,
        }
    )
    assert best_paired >= 1.0, (
        f"K=1 sharded loop slower than the sequential path in every round "
        f"(best paired ratio {best_paired:.3f})"
    )


def test_sharded_loop_k4_speedup_report(benchmark):
    """Measure and report the K=4 loop ratio against K=1 (no floor).

    Results must be bit-identical; the wall-time ratio is recorded for
    the report.  On a multi-core runner thread shards overlap cache
    misses; on a single-core one the ratio can dip below 1 — either way
    the number lands in ``BENCH_loop.json`` rather than a flaky assert.
    """

    def measure():
        k1_times: list[float] = []
        k4_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["k1"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1
            ).run()
            k1_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["k4"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=4
            ).run()
            k4_times.append(time.perf_counter() - t0)
        return results, k1_times, k4_times

    results, k1_times, k4_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    k1, k4 = results["k1"], results["k4"]
    assert k1.verdict is k4.verdict is Verdict.PROVEN
    assert k1.iteration_count == k4.iteration_count
    assert k1.final_model == k4.final_model
    assert k1.final_closure == k4.final_closure
    assert all(r.product_shards == 4 for r in k4.iterations)
    for a, b in zip(k1.iterations, k4.iterations):
        assert a.counterexample == b.counterexample
        assert (a.product_hits, a.product_misses) == (b.product_hits, b.product_misses)
        assert sum(b.product_shard_states_explored) == b.product_hits + b.product_misses

    benchmark.extra_info.update(
        {
            "mode": "sharded_k4",
            "convoy_ticks": QUICK_TICKS,
            "iterations": k4.iteration_count,
            "k4_vs_k1_speedup_min": min(k1_times) / min(k4_times),
            "k4_vs_k1_speedup_median": statistics.median(k1_times)
            / statistics.median(k4_times),
            "k1_loop_seconds_min": min(k1_times),
            "k4_loop_seconds_min": min(k4_times),
            "shard_handoffs_total": sum(r.product_shard_handoffs for r in k4.iterations),
            "shard_merge_conflicts_total": sum(
                r.product_shard_merge_conflicts for r in k4.iterations
            ),
        }
    )


def test_checker_sharded_loop_k1_no_regression(benchmark):
    """The K=1 sharded checker must not regress the sequential solvers.

    Product sharding is pinned at 1 on both sides so the comparison
    isolates the checker dispatch (``checker_parallelism=None`` → the
    plain sequential worklists vs an explicit ``checker_parallelism=1``,
    which takes the same sequential code path through the dispatch
    check).  Same best-paired-round acceptance as the product variant.
    """

    def measure():
        default_times: list[float] = []
        k1_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["default"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1
            ).run()
            default_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["k1"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1, checker_parallelism=1
            ).run()
            k1_times.append(time.perf_counter() - t0)
        return results, default_times, k1_times

    results, default_times, k1_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    default, k1 = results["default"], results["k1"]
    assert default.verdict is k1.verdict is Verdict.PROVEN
    assert default.iteration_count == k1.iteration_count
    assert default.final_model == k1.final_model
    assert all(r.checker_shards == 1 for r in k1.iterations)
    for a, b in zip(default.iterations, k1.iterations):
        assert a.checker_fixpoint_work == b.checker_fixpoint_work

    best_paired = max(d / s for d, s in zip(default_times, k1_times))
    ratio_min = min(default_times) / min(k1_times)
    benchmark.extra_info.update(
        {
            "mode": "checker_sharded_k1",
            "convoy_ticks": QUICK_TICKS,
            "iterations": k1.iteration_count,
            "k1_vs_sequential_best_paired": best_paired,
            "k1_vs_sequential_min_ratio": ratio_min,
        }
    )
    assert best_paired >= 1.0, (
        f"K=1 sharded checker slower than the sequential solvers in every round "
        f"(best paired ratio {best_paired:.3f})"
    )


def test_checker_sharded_loop_k4_speedup_report(benchmark):
    """Measure and report the checker K=4 loop ratio against K=1 (no floor).

    Product sharding stays at 1 on both sides; only the checker fixpoint
    sharding differs.  Results must be bit-identical — including the
    total fixpoint work, which the round-based handoff protocol conserves
    exactly — and the wall-time ratio lands in ``BENCH_loop.json``.
    """

    def measure():
        k1_times: list[float] = []
        k4_times: list[float] = []
        results = {}
        for _ in range(5):
            t0 = time.perf_counter()
            results["k1"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1, checker_parallelism=1
            ).run()
            k1_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["k4"] = _convoy_synthesizer(
                incremental=True, ticks=QUICK_TICKS, parallelism=1, checker_parallelism=4
            ).run()
            k4_times.append(time.perf_counter() - t0)
        return results, k1_times, k4_times

    results, k1_times, k4_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    k1, k4 = results["k1"], results["k4"]
    assert k1.verdict is k4.verdict is Verdict.PROVEN
    assert k1.iteration_count == k4.iteration_count
    assert k1.final_model == k4.final_model
    assert k1.final_closure == k4.final_closure
    assert all(r.checker_shards == 4 for r in k4.iterations)
    for a, b in zip(k1.iterations, k4.iterations):
        assert a.counterexample == b.counterexample
        assert a.checker_fixpoint_work == b.checker_fixpoint_work
        assert sum(b.checker_shard_fixpoint_work) == b.checker_fixpoint_work

    benchmark.extra_info.update(
        {
            "mode": "checker_sharded_k4",
            "convoy_ticks": QUICK_TICKS,
            "iterations": k4.iteration_count,
            "k4_vs_k1_speedup_min": min(k1_times) / min(k4_times),
            "k4_vs_k1_speedup_median": statistics.median(k1_times)
            / statistics.median(k4_times),
            "k1_loop_seconds_min": min(k1_times),
            "k4_loop_seconds_min": min(k4_times),
            "checker_shard_handoffs_total": sum(
                r.checker_shard_handoffs for r in k4.iterations
            ),
            "checker_fixpoint_work_total": sum(
                r.checker_fixpoint_work for r in k4.iterations
            ),
        }
    )


#: Ceilings asserted by :func:`test_tracing_overhead_guard`.
NULL_TRACER_OVERHEAD_CEILING = 0.01
JSONL_TRACER_OVERHEAD_CEILING = 0.10


def _best_of(timed, repeats: int = 3) -> float:
    """Best-of-N for a timed microbenchmark: the minimum is the least
    noise-contaminated estimate of the true cost on a shared runner."""
    return min(timed() for _ in range(repeats))


def test_tracing_overhead_guard(benchmark):
    """Tracing must be free when off and cheap when on.

    The span instrumentation lives permanently in the loop's hot paths,
    so there is no un-instrumented baseline to compare against.  Both
    ceilings are therefore bounded the same way: count the spans a
    traced run of the workload emits, microbenchmark the cost of one
    span enter/exit in that mode, and bound their product as a fraction
    of the (null-traced) loop time.  The ``NullTracer`` cycle — shared
    no-op handle, no allocation — must stay below 1%; the active cycle
    with the live JSONL-streaming sink (the ``REPRO_TRACE``
    configuration: every span serialized through :func:`span_line` and
    written to a real file handle) must stay below 10%.

    The end-to-end paired null-vs-streaming loop times are recorded in
    ``BENCH_loop.json`` alongside, but — like the K=4 shard ratios —
    only sanity-bounded, not gated at the ceiling: on a shared runner
    the round-to-round wall-clock noise of a sub-second loop exceeds
    the single-digit overhead being measured.
    """

    def measure():
        null_times: list[float] = []
        jsonl_times: list[float] = []
        results = {}
        span_count = [0]
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False, encoding="utf-8"
        )

        def sink(span):
            span_count[0] += 1
            handle.write(span_line(span) + "\n")

        try:
            for round_index in range(5):
                t0 = time.perf_counter()
                results["null"] = _convoy_synthesizer(
                    incremental=True, ticks=SPEEDUP_TICKS, tracer=NULL_TRACER
                ).run()
                null_times.append(time.perf_counter() - t0)
                span_count[0] = 0
                t0 = time.perf_counter()
                results["jsonl"] = _convoy_synthesizer(
                    incremental=True, ticks=SPEEDUP_TICKS, tracer=Tracer(sink=sink)
                ).run()
                jsonl_times.append(time.perf_counter() - t0)
            spans_per_run = span_count[0]

            # Per-span costs in both modes, with representative args —
            # best of three timed blocks each, so a single GC pause or
            # scheduler hiccup cannot inflate the estimate.
            cycles = 100_000

            def time_null() -> float:
                t0 = time.perf_counter()
                for _ in range(cycles):
                    with NULL_TRACER.span("overhead.probe", kind="null"):
                        pass
                return (time.perf_counter() - t0) / cycles

            active = Tracer(sink=sink)

            def time_active() -> float:
                t0 = time.perf_counter()
                for _ in range(cycles):
                    with active.span("overhead.probe", solve="reach", domain=512):
                        pass
                return (time.perf_counter() - t0) / cycles

            per_null_call = _best_of(time_null)
            per_active_call = _best_of(time_active)
        finally:
            handle.close()
            os.unlink(handle.name)
        return results, null_times, jsonl_times, spans_per_run, per_null_call, per_active_call

    # Best-of-N with one retry: a loaded CI runner can blow any single
    # measurement; only a bound exceeded by two independent measurement
    # passes is treated as a real regression.
    sample = benchmark.pedantic(measure, rounds=1, iterations=1)
    for attempt in (1, 2):
        results, null_times, jsonl_times, spans_per_run, per_null_call, per_active_call = sample
        null_result, jsonl_result = results["null"], results["jsonl"]
        assert null_result.verdict is jsonl_result.verdict is Verdict.PROVEN
        assert null_result.iteration_count == jsonl_result.iteration_count >= 8
        assert null_result.final_model == jsonl_result.final_model
        assert spans_per_run > 0

        null_fraction = spans_per_run * per_null_call / min(null_times)
        jsonl_fraction = spans_per_run * per_active_call / min(null_times)
        best_paired = min(j / n for j, n in zip(jsonl_times, null_times))
        min_ratio = min(jsonl_times) / min(null_times)
        benchmark.extra_info.update(
            {
                "mode": "tracing_overhead",
                "convoy_ticks": SPEEDUP_TICKS,
                "iterations": null_result.iteration_count,
                "spans_per_run": spans_per_run,
                "per_null_span_seconds": per_null_call,
                "per_active_span_seconds": per_active_call,
                "null_tracer_overhead_fraction": null_fraction,
                "jsonl_tracer_overhead_fraction": jsonl_fraction,
                "null_loop_seconds_min": min(null_times),
                "jsonl_loop_seconds_min": min(jsonl_times),
                "jsonl_vs_null_best_paired": best_paired,
                "jsonl_vs_null_min_ratio": min_ratio,
                "measurement_attempts": attempt,
            }
        )
        within_bounds = (
            null_fraction <= NULL_TRACER_OVERHEAD_CEILING
            and jsonl_fraction <= JSONL_TRACER_OVERHEAD_CEILING
            and min_ratio <= 1.5
        )
        if within_bounds:
            break
        if attempt == 1:
            sample = measure()  # retry once off-benchmark with fresh timings
            continue
        assert null_fraction <= NULL_TRACER_OVERHEAD_CEILING, (
            f"NullTracer overhead {null_fraction:.4%} of loop time exceeds the "
            f"{NULL_TRACER_OVERHEAD_CEILING:.0%} ceiling on both attempts "
            f"({spans_per_run} spans × {per_null_call * 1e9:.0f}ns)"
        )
        assert jsonl_fraction <= JSONL_TRACER_OVERHEAD_CEILING, (
            f"JSONL-streaming tracer overhead {jsonl_fraction:.2%} of loop time "
            f"exceeds the {JSONL_TRACER_OVERHEAD_CEILING:.0%} ceiling on both "
            f"attempts ({spans_per_run} spans × {per_active_call * 1e6:.1f}µs)"
        )
        # Gross-regression sanity bound on the end-to-end measurement only —
        # wall-clock noise on shared runners dwarfs the asserted ceilings.
        assert min_ratio <= 1.5, (
            f"JSONL-streaming run {min_ratio:.2f}x the null run (min-vs-min) — "
            f"far beyond per-span accounting; something pathological regressed"
        )


#: Ceilings asserted by :func:`test_flight_recorder_overhead_guard`.
NULL_FLIGHT_OVERHEAD_CEILING = 0.01
ACTIVE_FLIGHT_OVERHEAD_CEILING = 0.05


def test_flight_recorder_overhead_guard(benchmark):
    """The flight recorder must be free when off and cheap when armed.

    Like the tracing guard: the progress/flight event sites live
    permanently in the loop, so the un-armed cost is bounded by
    accounting — count the events an armed run records, microbenchmark
    one emit through an empty :class:`ProgressEmitter` (the exact
    no-consumer path every site takes by default), and pin the product
    below 1% of loop time.  An armed in-memory ring
    (:class:`FlightRecorder` without a directory — the ``--blackbox``
    configuration between anomalies) is bounded the same way at 5%,
    with the paired end-to-end ratio recorded and only sanity-bounded.
    """
    from repro.obs import FlightRecorder, ProgressEmitter

    def measure():
        null_times: list[float] = []
        active_times: list[float] = []
        results = {}
        events_per_run = 0
        for _ in range(5):
            t0 = time.perf_counter()
            results["null"] = _convoy_synthesizer(
                incremental=True, ticks=SPEEDUP_TICKS
            ).run()
            null_times.append(time.perf_counter() - t0)
            recorder = FlightRecorder(capacity=256)
            t0 = time.perf_counter()
            results["active"] = _convoy_synthesizer(
                incremental=True, ticks=SPEEDUP_TICKS, flight=recorder
            ).run()
            active_times.append(time.perf_counter() - t0)
            events_per_run = recorder._seq

        cycles = 100_000
        idle = ProgressEmitter()

        def time_null() -> float:
            t0 = time.perf_counter()
            for _ in range(cycles):
                idle.emit("overhead.probe", iteration=1, tests_executed=3)
            return (time.perf_counter() - t0) / cycles

        ring = FlightRecorder(capacity=256)
        armed = ProgressEmitter(ring)

        def time_active() -> float:
            t0 = time.perf_counter()
            for _ in range(cycles):
                armed.emit("overhead.probe", iteration=1, tests_executed=3)
            return (time.perf_counter() - t0) / cycles

        per_null_emit = _best_of(time_null)
        per_active_emit = _best_of(time_active)
        return results, null_times, active_times, events_per_run, per_null_emit, per_active_emit

    # Best-of-N with one retry, exactly like the tracing guard: only a
    # ceiling exceeded by two independent measurement passes fails.
    sample = benchmark.pedantic(measure, rounds=1, iterations=1)
    for attempt in (1, 2):
        results, null_times, active_times, events_per_run, per_null_emit, per_active_emit = sample
        null_result, active_result = results["null"], results["active"]
        assert null_result.verdict is active_result.verdict is Verdict.PROVEN
        assert null_result.iteration_count == active_result.iteration_count >= 8
        assert null_result.final_model == active_result.final_model
        assert events_per_run > 0

        null_fraction = events_per_run * per_null_emit / min(null_times)
        active_fraction = events_per_run * per_active_emit / min(null_times)
        best_paired = min(a / n for a, n in zip(active_times, null_times))
        min_ratio = min(active_times) / min(null_times)
        benchmark.extra_info.update(
            {
                "mode": "flight_recorder_overhead",
                "convoy_ticks": SPEEDUP_TICKS,
                "iterations": null_result.iteration_count,
                "events_per_run": events_per_run,
                "per_null_emit_seconds": per_null_emit,
                "per_active_emit_seconds": per_active_emit,
                "null_flight_overhead_fraction": null_fraction,
                "active_flight_overhead_fraction": active_fraction,
                "null_loop_seconds_min": min(null_times),
                "active_loop_seconds_min": min(active_times),
                "active_vs_null_best_paired": best_paired,
                "active_vs_null_min_ratio": min_ratio,
                "measurement_attempts": attempt,
            }
        )
        within_bounds = (
            null_fraction <= NULL_FLIGHT_OVERHEAD_CEILING
            and active_fraction <= ACTIVE_FLIGHT_OVERHEAD_CEILING
            and min_ratio <= 1.5
        )
        if within_bounds:
            break
        if attempt == 1:
            sample = measure()  # retry once off-benchmark with fresh timings
            continue
        assert null_fraction <= NULL_FLIGHT_OVERHEAD_CEILING, (
            f"un-armed flight/progress overhead {null_fraction:.4%} of loop time "
            f"exceeds the {NULL_FLIGHT_OVERHEAD_CEILING:.0%} ceiling on both "
            f"attempts ({events_per_run} events × {per_null_emit * 1e9:.0f}ns)"
        )
        assert active_fraction <= ACTIVE_FLIGHT_OVERHEAD_CEILING, (
            f"armed ring-recorder overhead {active_fraction:.2%} of loop time "
            f"exceeds the {ACTIVE_FLIGHT_OVERHEAD_CEILING:.0%} ceiling on both "
            f"attempts ({events_per_run} events × {per_active_emit * 1e6:.1f}µs)"
        )
        assert min_ratio <= 1.5, (
            f"armed run {min_ratio:.2f}x the un-armed run (min-vs-min) — far "
            f"beyond per-event accounting; something pathological regressed"
        )


#: Ceiling asserted by :func:`test_robust_overhead_guard`.
ROBUST_OVERHEAD_CEILING = 0.05


def test_robust_overhead_guard(benchmark):
    """The fault-free supervised test path must cost <= 5% of loop time.

    Every loop execution now runs through
    :class:`repro.testing.RobustExecutor` (retries, deadlines,
    validation — see ``docs/robustness.md``); without a fault profile
    the supervisor reduces to one ``try`` block and a handful of
    attribute reads around the raw :func:`execute_test`.  As with the
    tracing guard there is no un-supervised loop left to diff against,
    so the bound is per-call accounting: microbenchmark the raw
    executor and the supervised path on a representative test case,
    multiply the per-test delta by the tests a loop run executes, and
    pin the product below 5% of the measured loop time.
    """
    from repro.automata import Interaction
    from repro.testing import RobustExecutor, execute_test, test_case_from_trace

    def measure():
        loop_times: list[float] = []
        result = None
        for _ in range(3):
            t0 = time.perf_counter()
            result = _convoy_synthesizer(incremental=True, ticks=SPEEDUP_TICKS).run()
            loop_times.append(time.perf_counter() - t0)

        component = railcab.correct_rear_shuttle(convoy_ticks=1)
        case = test_case_from_trace([Interaction()] * 4, name="overhead.probe")
        executor = RobustExecutor()
        cycles = 2_000

        def time_raw() -> float:
            t0 = time.perf_counter()
            for _ in range(cycles):
                execute_test(component, case, port="rearRole")
            return (time.perf_counter() - t0) / cycles

        def time_supervised() -> float:
            t0 = time.perf_counter()
            for _ in range(cycles):
                executor.execute(component, case, port="rearRole")
            return (time.perf_counter() - t0) / cycles

        # Best-of-three per mode: one preempted block must not fake a
        # supervision regression.
        per_raw = _best_of(time_raw)
        per_supervised = _best_of(time_supervised)
        return result, loop_times, per_raw, per_supervised

    # Best-of-N with one retry, mirroring the tracing guard: fail only
    # if the ceiling is exceeded by two independent measurement passes.
    sample = benchmark.pedantic(measure, rounds=1, iterations=1)
    for attempt in (1, 2):
        result, loop_times, per_raw, per_supervised = sample
        assert result.verdict is Verdict.PROVEN
        assert result.iteration_count >= 8
        # The fault-free loop retries nothing, quarantines nothing.
        assert result.total_test_retries == 0
        assert result.total_inconclusive == 0
        assert result.quarantined == ()

        tests_per_run = result.total_tests
        per_test_overhead = max(per_supervised - per_raw, 0.0)
        robust_fraction = tests_per_run * per_test_overhead / min(loop_times)
        benchmark.extra_info.update(
            {
                "mode": "robust_overhead",
                "convoy_ticks": SPEEDUP_TICKS,
                "iterations": result.iteration_count,
                "tests_per_run": tests_per_run,
                "per_raw_execute_seconds": per_raw,
                "per_supervised_execute_seconds": per_supervised,
                "per_test_overhead_seconds": per_test_overhead,
                "robust_overhead_fraction": robust_fraction,
                "loop_seconds_min": min(loop_times),
                "measurement_attempts": attempt,
            }
        )
        if robust_fraction <= ROBUST_OVERHEAD_CEILING:
            break
        if attempt == 1:
            sample = measure()  # retry once off-benchmark with fresh timings
            continue
        assert robust_fraction <= ROBUST_OVERHEAD_CEILING, (
            f"fault-free RobustExecutor overhead {robust_fraction:.2%} of loop "
            f"time exceeds the {ROBUST_OVERHEAD_CEILING:.0%} ceiling on both "
            f"attempts ({tests_per_run} tests × {per_test_overhead * 1e6:.1f}µs)"
        )


#: Ceilings asserted by :func:`test_remote_overhead_guard`.  One frame
#: round-trip over warm pipes is tens of microseconds; 5ms leaves two
#: orders of magnitude for a loaded CI runner while still catching a
#: protocol regression (an extra round-trip per step, a lost buffer).
REMOTE_STEP_OVERHEAD_CEILING = 0.005
#: A warm pool acquire (ping + reset) must stay well under a cold
#: interpreter spawn — that gap is the pool's entire reason to exist.
WARM_VS_COLD_CEILING = 0.5


def test_remote_overhead_guard(benchmark):
    """Warm-pool out-of-process steps must stay cheap and spawns warm.

    Two pins for ``repro.legacy.remote`` (see ``docs/remote.md``): the
    per-step RPC overhead of a warm host — one ``step`` frame
    round-trip minus the in-process step cost — stays under
    ``REMOTE_STEP_OVERHEAD_CEILING``, and an :class:`InstancePool`
    warm acquire (health-check ping + reset) costs at most half a cold
    ``RemoteComponent`` spawn (in practice ~100x less; the generous
    ceiling absorbs runner noise, the recorded ratio tracks the truth).
    """
    from repro.legacy.remote import InstancePool, RemotePolicy, rehost

    policy = RemotePolicy(step_deadline=30.0, spawn_timeout=60.0)

    def measure():
        local = railcab.correct_rear_shuttle(convoy_ticks=1)
        cycles = 400

        def time_local() -> float:
            local.reset()
            t0 = time.perf_counter()
            for _ in range(cycles):
                local.step(frozenset())
            per_call = (time.perf_counter() - t0) / cycles
            local.reset()
            return per_call

        with rehost(railcab.correct_rear_shuttle(convoy_ticks=1), policy) as remote:

            def time_remote() -> float:
                remote.reset()
                t0 = time.perf_counter()
                for _ in range(cycles):
                    remote.step(frozenset())
                per_call = (time.perf_counter() - t0) / cycles
                remote.reset()
                return per_call

            per_local = _best_of(time_local)
            per_remote = _best_of(time_remote)

        def time_cold_spawn() -> float:
            t0 = time.perf_counter()
            with rehost(railcab.correct_rear_shuttle(convoy_ticks=1), policy):
                pass
            return time.perf_counter() - t0

        cold_spawn = _best_of(time_cold_spawn)

        with InstancePool(
            railcab.correct_rear_shuttle(convoy_ticks=1), size=2, policy=policy
        ) as pool:

            def time_warm_acquire() -> float:
                t0 = time.perf_counter()
                for _ in range(20):
                    pool.release(pool.acquire())
                return (time.perf_counter() - t0) / 20

            warm_acquire = _best_of(time_warm_acquire)
            reuses = pool.stats["pool_reuses"]
            respawns = pool.stats["pool_respawns"]

        return per_local, per_remote, cold_spawn, warm_acquire, reuses, respawns

    sample = benchmark.pedantic(measure, rounds=1, iterations=1)
    for attempt in (1, 2):
        per_local, per_remote, cold_spawn, warm_acquire, reuses, respawns = sample
        per_step_overhead = max(per_remote - per_local, 0.0)
        warm_vs_cold = warm_acquire / cold_spawn
        # Every warm acquire reused a healthy pre-forked host.
        assert respawns == 0 and reuses >= 60
        benchmark.extra_info.update(
            {
                "mode": "remote_overhead",
                "per_local_step_seconds": per_local,
                "per_remote_step_seconds": per_remote,
                "per_step_overhead_seconds": per_step_overhead,
                "cold_spawn_seconds": cold_spawn,
                "warm_acquire_seconds": warm_acquire,
                "warm_vs_cold_ratio": warm_vs_cold,
                "measurement_attempts": attempt,
            }
        )
        within_bounds = (
            per_step_overhead <= REMOTE_STEP_OVERHEAD_CEILING
            and warm_vs_cold <= WARM_VS_COLD_CEILING
        )
        if within_bounds:
            break
        if attempt == 1:
            sample = measure()  # retry once off-benchmark with fresh timings
            continue
        assert per_step_overhead <= REMOTE_STEP_OVERHEAD_CEILING, (
            f"warm per-step RPC overhead {per_step_overhead * 1e6:.0f}µs exceeds "
            f"the {REMOTE_STEP_OVERHEAD_CEILING * 1e6:.0f}µs ceiling on both "
            f"attempts (remote {per_remote * 1e6:.0f}µs vs local {per_local * 1e6:.0f}µs)"
        )
        assert warm_vs_cold <= WARM_VS_COLD_CEILING, (
            f"warm pool acquire ({warm_acquire * 1e3:.1f}ms) is {warm_vs_cold:.2f}x "
            f"a cold spawn ({cold_spawn * 1e3:.1f}ms) — the pre-fork pool has "
            f"stopped paying for itself"
        )


def test_loop_incremental_multi_legacy(benchmark):
    """The n-ary product path: front+rear learned in parallel."""
    result = benchmark(lambda: _multi_synthesizer(incremental=True).run())
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count >= 8
    reference = _multi_synthesizer(incremental=False).run()
    assert reference.verdict is result.verdict
    assert reference.iteration_count == result.iteration_count
    benchmark.extra_info.update(_loop_extra_info(result))
    benchmark.extra_info["mode"] = "incremental_multi"
