"""E-conf: the equivalence-query cost the paper's approach avoids (§6).

Conformance testing is the practical realisation of equivalence queries
(Chow's W-method); Vasilevskii's bound ``O(k²·l·|Σ|^{l−k+1})`` is
exponential in the state-count uncertainty ``l − k``.  Regenerated
here: actual W-method suite sizes against the analytic bound, and the
blow-up as the assumed implementation bound grows.
"""

import pytest

from repro import railcab
from repro.baselines import (
    LStarLearner,
    MembershipOracle,
    PerfectEquivalenceOracle,
    vasilevskii_bound,
    w_method_suite,
)
from repro.legacy import interface_of


def learned_hypothesis():
    component = railcab.correct_rear_shuttle(convoy_ticks=1)
    universe = interface_of(component).universe()
    learner = LStarLearner(
        MembershipOracle(component),
        universe,
        PerfectEquivalenceOracle(component._hidden, universe),
    )
    return learner.learn(), universe


@pytest.mark.parametrize("slack", [0, 1, 2])
def test_w_method_suite_size_vs_bound(benchmark, slack, record_artifact):
    dfa, universe = learned_hypothesis()
    bound = dfa.size + slack

    suite = benchmark(lambda: w_method_suite(dfa, universe, state_bound=bound))

    analytic = vasilevskii_bound(dfa.size, bound, len(universe))
    assert len(suite) <= analytic
    record_artifact(
        f"W-method, k={dfa.size}, l={bound}, |Σ|={len(universe)}",
        f"suite size = {len(suite)}, Vasilevskii bound = {analytic}",
    )


def test_exponential_blowup_shape(benchmark):
    """The suite grows geometrically with the state-count slack."""
    dfa, universe = learned_hypothesis()

    def sweep():
        return [len(w_method_suite(dfa, universe, state_bound=dfa.size + s)) for s in (0, 1, 2)]

    sizes = benchmark(sweep)
    # Strictly growing and by at least the alphabet factor asymptotically.
    assert sizes[0] < sizes[1] < sizes[2]
    assert sizes[2] / sizes[1] >= len(universe) / 2


def test_our_scheme_has_no_equivalence_cost(benchmark):
    """The synthesis never runs an equivalence query at all: its total
    test count stays below even the smallest conformance suite."""
    from conftest import run_synthesis

    dfa, universe = learned_hypothesis()
    smallest_suite = len(w_method_suite(dfa, universe, state_bound=dfa.size))
    result = benchmark(lambda: run_synthesis(railcab.correct_rear_shuttle(convoy_ticks=1)))
    assert result.proven
    assert result.total_tests < smallest_suite
