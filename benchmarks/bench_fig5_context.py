"""E-fig5: the known context behavior (Figure 5).

Paper artifact: the front role automaton — ``noConvoy`` until a
``convoyProposal`` arrives, then ``answer`` (nondeterministic reject or
start), ``convoy`` until a ``breakConvoyProposal``, which is accepted
or rejected.  Regenerated here by unfolding the role's Real-Time
Statechart.
"""

from repro import railcab
from repro.automata import Interaction, to_dot
from repro.logic import check, parse
from repro.rtsc import unfold, validate


def build():
    chart = railcab.front_role_statechart()
    report = validate(chart)
    automaton = railcab.front_role_automaton()
    return chart, report, automaton


def test_fig5_context_behavior(benchmark, record_artifact):
    chart, report, automaton = benchmark(build)
    assert report.ok

    # Figure 5's states and message flow.
    assert automaton.states == frozenset(
        {"noConvoy::default", "noConvoy::answer", "convoy::default", "convoy::break"}
    )
    receive = Interaction(["convoyProposal"], None)
    assert any(
        t.interaction == receive and t.target == "noConvoy::answer"
        for t in automaton.transitions_from("noConvoy::default")
    )
    answers = {
        tuple(sorted(t.outputs)) for t in automaton.transitions_from("noConvoy::answer") if t.outputs
    }
    assert ("convoyProposalRejected",) in answers
    assert ("startConvoy",) in answers
    break_answers = {
        tuple(sorted(t.outputs)) for t in automaton.transitions_from("convoy::break") if t.outputs
    }
    assert ("breakConvoyAccepted",) in break_answers
    assert ("breakConvoyRejected",) in break_answers

    # The context itself is live and never claims convoy while noConvoy.
    assert check(automaton, parse("AG not deadlock")).holds
    assert check(
        automaton, parse("AG not (frontRole.convoy and frontRole.noConvoy)")
    ).holds
    record_artifact("Figure 5 — front role behavior (DOT)", to_dot(automaton))
