"""E-multi: the §7 multi-legacy extension, quantified.

The paper conjectures the benefit of parallel learning "depends on the
degree in which the known context restricts their interaction".
Measured here: two mutually-restricting legacy shuttles are proven with
each model learned only as far as their interplay requires; faults that
exist only in the interplay (forgetful front) are found as real
violations; a halting component yields a confirmed real deadlock.
"""

from repro import railcab
from repro.automata import Automaton
from repro.legacy import LegacyComponent
from repro.synthesis import MultiLegacySynthesizer, Verdict

LABELERS = {
    "frontShuttle": railcab.front_state_labeler,
    "rearShuttle": railcab.rear_state_labeler,
}


def run_pair(front, rear):
    return MultiLegacySynthesizer(
        None, [front, rear], railcab.PATTERN_CONSTRAINT, labelers=LABELERS
    ).run()


def test_two_correct_legacy_shuttles_proven(benchmark):
    result = benchmark(
        lambda: run_pair(
            railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)
        )
    )
    assert result.verdict is Verdict.PROVEN
    # Parallel learning converges for both models…
    assert set(result.final_models) == {"frontShuttle", "rearShuttle"}
    # …and mutual restriction keeps the learned parts small.
    rear_bound = railcab.correct_rear_shuttle(convoy_ticks=1).state_bound
    assert result.learned_states("rearShuttle") <= rear_bound


def test_interplay_fault_found(benchmark):
    result = benchmark(
        lambda: run_pair(
            railcab.forgetful_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)
        )
    )
    assert result.verdict is Verdict.REAL_VIOLATION
    assert result.violation_kind == "property"


def test_partial_learning_with_overbuilt_partner(benchmark):
    def run():
        return run_pair(
            railcab.correct_front_shuttle(), railcab.overbuilt_rear_shuttle(extra_states=15)
        )

    result = benchmark(run)
    assert result.verdict is Verdict.PROVEN
    bound = railcab.overbuilt_rear_shuttle(extra_states=15).state_bound
    assert result.learned_states("rearShuttle") < bound


def test_cross_component_deadlock_confirmed(benchmark):
    halting_front = Automaton(
        inputs=railcab.REAR_TO_FRONT,
        outputs=railcab.FRONT_TO_REAR,
        transitions=[
            ("start", (), (), "start"),
            ("start", ("convoyProposal",), (), "halted"),
        ],
        initial=["start"],
        name="frontShuttle(halting)",
    )

    def run():
        return run_pair(
            LegacyComponent(halting_front, name="frontShuttle"),
            railcab.correct_rear_shuttle(convoy_ticks=1),
        )

    result = benchmark(run)
    assert result.verdict is Verdict.REAL_VIOLATION
    assert result.violation_kind == "deadlock"
