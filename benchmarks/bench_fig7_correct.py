"""E-fig7 + Listing 1.5: the correct shuttle is proven (Figure 7, §4.4).

Paper artifact: for the protocol-conforming shuttle the iteration
series terminates with ``M_a^c ∥ M_a^n ⊨ φ ∧ ¬δ``, which by Lemma 5
proves the property for the real system.  The final learned behavior is
Figure 7's "correct synthesized behavior w.r.t. context".
"""

from repro import railcab
from repro.automata import compose
from repro.logic import ModelChecker, parse
from repro.synthesis import Verdict, render_iteration_table
from conftest import run_synthesis


def build():
    return run_synthesis(railcab.correct_rear_shuttle(convoy_ticks=1))


def test_fig7_correct_integration_proven(benchmark, record_artifact):
    result = benchmark(build)

    assert result.verdict is Verdict.PROVEN
    final = result.iterations[-1]
    assert final.property_holds and final.deadlock_free

    # Figure 7 shape: the protocol cycle was learned...
    learned = result.final_model
    sources = {t.source for t in learned.transitions}
    assert "noConvoy::default" in sources and "noConvoy::wait" in sources
    assert any(
        t.outputs == frozenset({"convoyProposal"}) for t in learned.transitions
    )
    assert any(
        t.inputs == frozenset({"startConvoy"}) for t in learned.transitions
    )

    # ... and every learned transition is real behavior (observation
    # conformance at the end of the series).
    hidden = railcab.correct_rear_shuttle(convoy_ticks=1)._hidden
    for transition in learned.transitions:
        assert transition in hidden.transitions

    # Lemma 5 ground truth: the real composition satisfies φ ∧ ¬δ.
    truth = compose(
        railcab.front_role_automaton(), hidden.with_labels(railcab.rear_state_labeler)
    )
    checker = ModelChecker(truth)
    assert checker.holds(railcab.PATTERN_CONSTRAINT)
    assert checker.holds(parse("AG not deadlock"))

    record_artifact("Figure 7 — iteration series", render_iteration_table(result))
