"""E-lstar: context-guided synthesis vs whole-machine learning (§6).

The paper's comparison with regular inference: L* needs
``O(|Σ|·n²·m)`` membership queries and up to ``n`` equivalence queries
to identify the whole machine, while the paper's scheme only learns the
context-relevant part and never needs an equivalence query.  Measured
here on the overbuilt shuttles: our cost stays flat while L*'s grows
with the hidden state count.
"""

import pytest

from repro import railcab
from repro.baselines import (
    BBCVerdict,
    BlackBoxChecker,
    LStarLearner,
    MembershipOracle,
    PerfectEquivalenceOracle,
)
from repro.legacy import interface_of
from repro.synthesis import Verdict
from conftest import run_synthesis


def lstar_learn(component):
    universe = interface_of(component).universe()
    membership = MembershipOracle(component)
    equivalence = PerfectEquivalenceOracle(component._hidden, universe)
    learner = LStarLearner(membership, universe, equivalence)
    dfa = learner.learn()
    return dfa, learner.statistics


@pytest.mark.parametrize("extra_states", [2, 10])
def test_lstar_cost_grows_with_machine_size(benchmark, extra_states):
    dfa, stats = benchmark(
        lambda: lstar_learn(railcab.overbuilt_rear_shuttle(extra_states=extra_states))
    )
    # L* must identify the whole machine, diagnostic chain included.
    assert dfa.size >= railcab.overbuilt_rear_shuttle(extra_states=extra_states).state_bound
    assert stats.equivalence_queries >= 1
    # Reference: the same property decision by our scheme.
    ours = run_synthesis(railcab.overbuilt_rear_shuttle(extra_states=extra_states))
    assert ours.proven
    assert ours.total_tests < stats.membership_queries


def test_query_counts_shape(benchmark):
    """The paper's qualitative table: ours flat, L* growing."""

    def sweep():
        rows = []
        for extra in (2, 5, 10):
            component = railcab.overbuilt_rear_shuttle(extra_states=extra)
            ours = run_synthesis(railcab.overbuilt_rear_shuttle(extra_states=extra))
            _, stats = lstar_learn(railcab.overbuilt_rear_shuttle(extra_states=extra))
            rows.append(
                {
                    "hidden_states": component.state_bound,
                    "our_tests": ours.total_tests,
                    "our_learned": ours.learned_states,
                    "lstar_membership": stats.membership_queries,
                }
            )
        return rows

    rows = benchmark(sweep)
    our_tests = [row["our_tests"] for row in rows]
    lstar_queries = [row["lstar_membership"] for row in rows]
    # Ours is flat; L* strictly grows with the machine.
    assert len(set(our_tests)) == 1
    assert lstar_queries == sorted(lstar_queries) and lstar_queries[0] < lstar_queries[-1]


def test_bbc_needs_equivalence_for_a_proof(benchmark):
    """Black-box checking can only 'prove' after full identification."""
    component = railcab.overbuilt_rear_shuttle(extra_states=5)
    universe = interface_of(component).universe()

    def run_bbc():
        checker = BlackBoxChecker(
            railcab.front_role_automaton(),
            railcab.overbuilt_rear_shuttle(extra_states=5),
            railcab.PATTERN_CONSTRAINT,
            universe=universe,
            equivalence=PerfectEquivalenceOracle(component._hidden, universe),
            labeler=railcab.rear_state_labeler,
        )
        return checker.run()

    result = benchmark(run_bbc)
    assert result.verdict is BBCVerdict.SATISFIED
    # BBC's final hypothesis spans the whole machine; ours never does.
    assert result.hypothesis_sizes[-1] >= component.state_bound
    ours = run_synthesis(railcab.overbuilt_rear_shuttle(extra_states=5))
    assert ours.learned_states < component.state_bound


def test_bbc_finds_the_fault_adaptively(benchmark):
    """On the faulty shuttle BBC terminates early — like our scheme."""
    component = railcab.faulty_rear_shuttle()
    universe = interface_of(component).universe()

    def run_bbc():
        checker = BlackBoxChecker(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            universe=universe,
            equivalence=PerfectEquivalenceOracle(component._hidden, universe),
            labeler=railcab.rear_state_labeler,
        )
        return checker.run()

    result = benchmark(run_bbc)
    assert result.verdict is BBCVerdict.VIOLATED
    assert result.witness is not None


@pytest.mark.parametrize("mode", ["all-prefixes", "rivest-schapire"])
def test_counterexample_handling_tradeoff(benchmark, mode):
    """Rivest–Schapire trades membership queries for equivalence rounds."""

    def learn():
        component = railcab.overbuilt_rear_shuttle(extra_states=10)
        universe = interface_of(component).universe()
        learner = LStarLearner(
            MembershipOracle(railcab.overbuilt_rear_shuttle(extra_states=10)),
            universe,
            PerfectEquivalenceOracle(component._hidden, universe),
            counterexample_handling=mode,
        )
        dfa = learner.learn()
        return dfa, learner.statistics

    dfa, stats = benchmark(learn)
    assert dfa.size == railcab.overbuilt_rear_shuttle(extra_states=10).state_bound + 1
    if mode == "rivest-schapire":
        reference_learner = LStarLearner(
            MembershipOracle(railcab.overbuilt_rear_shuttle(extra_states=10)),
            interface_of(railcab.overbuilt_rear_shuttle(extra_states=10)).universe(),
            PerfectEquivalenceOracle(
                railcab.overbuilt_rear_shuttle(extra_states=10)._hidden,
                interface_of(railcab.overbuilt_rear_shuttle(extra_states=10)).universe(),
            ),
        )
        reference_learner.learn()
        assert stats.membership_queries < reference_learner.statistics.membership_queries
