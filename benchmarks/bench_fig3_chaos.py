"""E-fig3: the chaotic automaton of Figure 3 (Definition 8).

Paper artifact: the two-state maximal behavior — ``s_all`` accepts
every interaction and may always fall into the all-blocking
``s_delta``; both states are initial.
"""

from repro import railcab
from repro.automata import S_ALL, S_DELTA, chaotic_automaton, to_dot
from repro.legacy import interface_of


def build():
    interface = interface_of(railcab.correct_rear_shuttle())
    universe = interface.universe()
    return chaotic_automaton(universe), universe


def test_fig3_chaotic_automaton(benchmark, record_artifact):
    chaos, universe = benchmark(build)
    # Figure 3's structure:
    assert chaos.states == frozenset({S_ALL, S_DELTA})
    assert chaos.initial == frozenset({S_ALL, S_DELTA})
    assert chaos.is_deadlock(S_DELTA)
    # s_all supports every interaction ('*' in the figure), twice (stay
    # chaotic or block forever).
    assert chaos.enabled(S_ALL) == frozenset(universe)
    assert len(chaos.transitions) == 2 * len(universe)
    record_artifact("Figure 3 — chaotic automaton (DOT)", to_dot(chaos))
