"""Shared helpers for the paper-artifact benchmarks.

Every benchmark regenerates one figure/listing of the paper (or one of
the quantitative claims) and asserts the *shape* reported by the paper
— who wins, which verdict, how many iterations — while pytest-benchmark
records the runtime of the reproduced pipeline stage.
"""

from __future__ import annotations

import pytest

from repro import railcab
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings


def run_synthesis(component, *, fast_conflict: bool = True, max_iterations: int = 500):
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        fast_conflict=fast_conflict,
        settings=SynthesisSettings(max_iterations=max_iterations),
        port="rearRole",
    ).run()


@pytest.fixture
def record_artifact(request, capsys):
    """Print a regenerated artifact under a banner (visible with -s)."""

    def _record(title: str, text: str) -> None:
        print(f"\n===== {title} =====")
        print(text)

    return _record
