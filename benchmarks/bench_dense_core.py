"""Dense integer-indexed checker core: micro and headline benchmarks.

The dense core (:mod:`repro.automata.interning`) replaces the dict/set
fixpoint solvers' per-state Python objects with interned contiguous
ids, CSR adjacency arrays, and byte-flag membership buffers.  This
module measures the three layers of that stack and the claims recorded
under the ``"dense"`` key of ``BENCH_loop.json``:

``test_intern_throughput``
    States interned per second, first contact and delta-extension — the
    cost the checker pays once per learning iteration.

``test_predecessor_image_throughput``
    ``pre∃``/``pre∀`` kernel edges per second on a 10k-state graph,
    with whatever kernel is available (numpy ``reduceat`` fast path or
    the pure-stdlib early-exit scan — ``HAVE_NUMPY`` is recorded so
    the report says which one was measured).

``test_dense_fixpoint_speedup_10k``
    The headline: the same CCTL formula set solved on the same
    10k-state synthetic product by ``dense=True`` and ``dense=False``
    checkers in paired interleaved rounds.  Sat sets, verdict-relevant
    layers, and ``fixpoint_work`` must be bit-identical; the wall-time
    ratio is asserted ≥ :data:`SPEEDUP_FLOOR` (≥ 5× with numpy, the
    honest stdlib floor without) and recorded for the report.

``test_dense_convoy_checker_k4_vs_k1``
    The sharding claim on the convoy workload: with ``id % K``
    ownership the K=4 checker must *strictly* beat K=1 on at least one
    paired round (best-paired ratio > 1.0) — the analytic inline
    attribution makes sharding overhead-free, so K>1 no longer loses
    wall-clock the way the crc32/dict protocol did.

``test_dense_product_bfs_vs_dict_k1``
    The product-BFS regime claim: the id-space exploration of
    :class:`~repro.automata.incremental.IncrementalProduct` (interned
    joint states, byte-flag visited buffers, ``array('I')`` edge
    targets) must not lose to the legacy dict cache at K=1 on the
    convoy-loop usage pattern — one cold exploration plus one
    mostly-warm update per learning iteration.  Automata and work
    counters are asserted identical on every paired round.

``test_dense_product_convoy_k4_vs_k1``
    The product sharding claim: K=4 dense product BFS under the
    automatically selected strategy (the chained single-worklist
    schedule with analytic ``id % K`` attribution at convoy scale)
    must beat K=1 on at least one paired round — the regression this
    guards against is the crc32/dict-era product sharding at 0.48–0.68x
    of K=1.

``tools/bench_report.py`` normalizes this module's output into the
``"dense"`` and ``"dense_product"`` sections of ``BENCH_loop.json``.
"""

from __future__ import annotations

import statistics
import time

from repro import railcab
from repro.automata import Automaton, StateInterner
from repro.automata.incremental import IncrementalProduct
from repro.automata.interning import HAVE_NUMPY, DenseGraph
from repro.logic import AF, AG, AU, EF, EG, EU, Interval, ModelChecker, Not, Or, Prop
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict

#: States in the synthetic product (the ISSUE's "10k-state products").
PRODUCT_STATES = 10_000

#: Dense-vs-dict sequential fixpoint floor asserted by the headline
#: benchmark.  The numpy kernels land near 10x on this workload; the
#: pure-stdlib scan still clears 2x — both floors leave headroom for
#: scheduler noise while catching any real regression.
SPEEDUP_FLOOR = 5.0 if HAVE_NUMPY else 2.0

#: Convoy length for the K=4 vs K=1 comparison (~70 loop iterations).
CONVOY_TICKS = 32

#: Warm updates measured after the cold exploration in the product-BFS
#: benchmarks — the loop's pattern: one cold product per run, then one
#: mostly-warm update per learning iteration.
PRODUCT_WARM_UPDATES = 8


def _synthetic_product(n: int = PRODUCT_STATES) -> Automaton:
    """A product-shaped automaton: composite tuple states, ring + chords.

    Every 211th state is a deadlock (maximal-path semantics must hold on
    both engines), ``p`` labels alternate densely, and ``q`` is sparse —
    the shape of a reachability target such as a deadlock or error
    state, which is where the layered DPs spend their work.
    """
    states = [(f"s{i % 97}", f"t{i % 89}", ("chaos", i)) for i in range(n)]
    transitions = []
    for i in range(n):
        if i % 211 == 7:
            continue  # deadlock state
        transitions.append((states[i], (), ("o",), states[(i + 1) % n]))
        if i % 3 == 0:
            transitions.append((states[i], (), ("o",), states[(i * 7 + 13) % n]))
    labels = {}
    for i, state in enumerate(states):
        props = set()
        if i % 2:
            props.add("p")
        if i % 101 == 0:
            props.add("q")
        labels[state] = frozenset(props)
    return Automaton(
        states=states,
        inputs=set(),
        outputs={"o"},
        transitions=transitions,
        initial=[states[0]],
        labels=labels,
        name=f"synthetic-product-{n}",
    )


def _formula_set():
    """Bounded and unbounded CCTL mix (sparse and dense operand sets)."""
    p, q = Prop("p"), Prop("q")
    return (
        AF(q, interval=Interval(0, 40)),
        AG(Or(p, Not(p)), interval=Interval(0, 40)),
        EG(p, interval=Interval(0, 40)),
        EF(q, interval=Interval(0, 40)),
        AU(p, q, interval=Interval(5, 40)),
        EU(p, q, interval=Interval(5, 40)),
        AG(Or(p, q)),
        EF(q),
    )


# ------------------------------------------------------------- intern layer


def test_intern_throughput(benchmark):
    """States interned per second, cold and delta-extended."""
    n = 50_000
    cold_states = [(f"s{i % 97}", f"t{i % 89}", ("chaos", i)) for i in range(n)]
    delta_states = [(f"s{i % 97}", f"t{i % 89}", ("chaos", i)) for i in range(n + n // 4)]

    def measure():
        t0 = time.perf_counter()
        interner = StateInterner(cold_states)
        cold_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        added = interner.extend(delta_states)  # 75% already interned
        delta_seconds = time.perf_counter() - t0
        return interner, cold_seconds, delta_seconds, added

    interner, cold_seconds, delta_seconds, added = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    assert len(interner) == n + n // 4
    assert added == n // 4
    benchmark.extra_info.update(
        {
            "states": n,
            "cold_states_per_second": n / cold_seconds,
            "delta_states_per_second": len(delta_states) / delta_seconds,
        }
    )


# ------------------------------------------------------------- kernel layer


def test_predecessor_image_throughput(benchmark):
    """``pre∃``/``pre∀`` edges per second over the 10k-state graph."""
    automaton = _synthetic_product()
    checker = ModelChecker(automaton, dense=True)
    interner = checker._interner
    graph = DenseGraph.from_successors(interner, checker._successors)
    member = bytearray(graph.size)
    for ident in range(0, graph.size, 2):
        member[ident] = 1
    candidates = list(range(graph.size))
    repeats = 50

    def measure():
        t0 = time.perf_counter()
        for _ in range(repeats):
            graph.pre_exists(member, candidates)
            graph.pre_forall(member, candidates, require_successor=True)
        return time.perf_counter() - t0

    elapsed = benchmark.pedantic(measure, rounds=3, iterations=1)
    edges_touched = 2 * repeats * graph.edge_count
    benchmark.extra_info.update(
        {
            "have_numpy": HAVE_NUMPY,
            "graph_states": graph.size,
            "graph_edges": graph.edge_count,
            "image_edges_per_second": edges_touched / elapsed,
        }
    )


# ---------------------------------------------------------- headline claim


def test_dense_fixpoint_speedup_10k(benchmark):
    """Dense vs dict sequential fixpoints on the 10k-state product.

    Paired interleaved rounds; identical sat sets and conserved
    ``fixpoint_work`` are asserted on every round, then the min-vs-min
    wall-time ratio must clear :data:`SPEEDUP_FLOOR`.
    """
    automaton = _synthetic_product()
    formulas = _formula_set()

    def solve(dense: bool):
        checker = ModelChecker(automaton, dense=dense)
        t0 = time.perf_counter()
        sats = [checker.sat(formula) for formula in formulas]
        return time.perf_counter() - t0, sats, checker.stats.fixpoint_work

    def measure():
        dense_times: list[float] = []
        dict_times: list[float] = []
        for _ in range(4):
            dense_seconds, dense_sats, dense_work = solve(True)
            dict_seconds, dict_sats, dict_work = solve(False)
            assert dense_sats == dict_sats
            assert dense_work == dict_work
            dense_times.append(dense_seconds)
            dict_times.append(dict_seconds)
        return dense_times, dict_times

    dense_times, dict_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup_min = min(dict_times) / min(dense_times)
    speedup_median = statistics.median(dict_times) / statistics.median(dense_times)
    benchmark.extra_info.update(
        {
            "have_numpy": HAVE_NUMPY,
            "product_states": PRODUCT_STATES,
            "formulas": len(_formula_set()),
            "dense_solve_seconds_min": min(dense_times),
            "dict_solve_seconds_min": min(dict_times),
            "dense_vs_dict_speedup_min": speedup_min,
            "dense_vs_dict_speedup_median": speedup_median,
            "speedup_floor": SPEEDUP_FLOOR,
        }
    )
    assert speedup_min >= SPEEDUP_FLOOR, (
        f"dense sequential fixpoints only {speedup_min:.2f}x faster than the "
        f"dict solvers (floor {SPEEDUP_FLOOR}x, numpy={HAVE_NUMPY})"
    )


# --------------------------------------------------------- sharding claim


def test_dense_convoy_checker_k4_vs_k1(benchmark):
    """K=4 must strictly beat K=1 on at least one paired convoy round.

    With ``id % K`` ownership and analytic inline attribution the
    sharded solve runs the same single worklist as K=1, so its overhead
    is near zero; on a multi-core runner the round protocol additionally
    overlaps shards.  Either way the best paired ratio must exceed 1.0
    — the regression this guards against is the crc32/dict-era K=4 at
    0.63x of K=1.  Results are bit-identical as always.
    """

    def convoy(checker_parallelism: int):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=CONVOY_TICKS),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
            settings=SynthesisSettings(
                incremental=True,
                parallelism=1,
                checker_parallelism=checker_parallelism,
                dense=True,
            ),
        )

    def measure():
        k1_times: list[float] = []
        k4_times: list[float] = []
        results = {}
        for _ in range(7):
            t0 = time.perf_counter()
            results["k1"] = convoy(1).run()
            k1_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            results["k4"] = convoy(4).run()
            k4_times.append(time.perf_counter() - t0)
        return results, k1_times, k4_times

    results, k1_times, k4_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    k1, k4 = results["k1"], results["k4"]
    assert k1.verdict is k4.verdict is Verdict.PROVEN
    assert k1.iteration_count == k4.iteration_count
    assert k1.final_model == k4.final_model
    assert all(r.checker_shards == 4 for r in k4.iterations)
    for a, b in zip(k1.iterations, k4.iterations):
        assert a.counterexample == b.counterexample
        assert a.checker_fixpoint_work == b.checker_fixpoint_work

    best_paired = max(a / b for a, b in zip(k1_times, k4_times))
    benchmark.extra_info.update(
        {
            "convoy_ticks": CONVOY_TICKS,
            "iterations": k4.iteration_count,
            "k4_vs_k1_best_paired": best_paired,
            "k4_vs_k1_median_ratio": statistics.median(k1_times)
            / statistics.median(k4_times),
            "k1_loop_seconds_min": min(k1_times),
            "k4_loop_seconds_min": min(k4_times),
        }
    )
    assert best_paired > 1.0, (
        f"dense K=4 checker never beat K=1 in any paired round "
        f"(best paired ratio {best_paired:.3f})"
    )


# ------------------------------------------------------ product BFS claims


def _convoy_product() -> tuple[Automaton, Automaton]:
    """The convoy loop's product inputs: client role x learned closure."""
    result = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=CONVOY_TICKS),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
    ).run()
    assert result.verdict is Verdict.PROVEN
    return railcab.front_role_automaton(), result.final_closure


def _product_sequence(parallelism: int, dense: bool, components, clean):
    """One convoy-loop product lifecycle: cold BFS + warm updates."""
    product = IncrementalProduct(
        semantics="strict", parallelism=parallelism, dense=dense
    )
    t0 = time.perf_counter()
    first = product.update(components, clean)
    for _ in range(PRODUCT_WARM_UPDATES):
        last = product.update(components, clean)
    return time.perf_counter() - t0, first, last


def test_dense_product_bfs_vs_dict_k1(benchmark):
    """The dense product BFS must not lose to the dict cache at K=1.

    Paired interleaved rounds of the convoy-loop lifecycle (one cold
    exploration, :data:`PRODUCT_WARM_UPDATES` warm updates).  The dense
    regime's cold pass pays one interner probe per discovered target
    that the dict path does not, but its warm passes walk a flat entry
    table instead of re-hashing joint tuples — over the lifecycle the
    best paired ratio must stay at or above 1.0.  Automata and work
    counters are asserted identical on every round.
    """
    client, closure = _convoy_product()
    components = [client, closure]
    clean = [frozenset(), frozenset()]

    def measure():
        dict_times: list[float] = []
        dense_times: list[float] = []
        shapes = {}
        # Alternating in-round order, as in the K-sweep benchmarks: no
        # systematic second-position effect can bias every paired ratio.
        for round_index in range(9):
            order = ((False, dict_times), (True, dense_times))
            if round_index % 2:
                order = tuple(reversed(order))
            outcomes = {}
            for dense, times in order:
                seconds, first, last = _product_sequence(1, dense, components, clean)
                outcomes[dense] = (first, last)
                times.append(seconds)
            dict_first, dict_last = outcomes[False]
            dense_first, dense_last = outcomes[True]
            assert dense_first.automaton == dict_first.automaton
            assert dense_first.misses == dict_first.misses
            assert dense_first.hits == dict_first.hits
            assert dense_last.misses == dict_last.misses == 0
            assert dense_last.hits == dict_last.hits
            shapes["states"] = len(dense_first.automaton.states)
            shapes["dense_states"] = dense_first.dense_states
        return dict_times, dense_times, shapes

    dict_times, dense_times, shapes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    best_paired = max(a / b for a, b in zip(dict_times, dense_times))
    benchmark.extra_info.update(
        {
            "convoy_ticks": CONVOY_TICKS,
            "warm_updates": PRODUCT_WARM_UPDATES,
            "product_states": shapes["states"],
            "product_dense_states": shapes["dense_states"],
            "dense_vs_dict_best_paired": best_paired,
            "dense_vs_dict_median_ratio": statistics.median(dict_times)
            / statistics.median(dense_times),
            "dict_sequence_seconds_min": min(dict_times),
            "dense_sequence_seconds_min": min(dense_times),
        }
    )
    assert best_paired >= 1.0, (
        f"dense product BFS lost every paired round to the dict cache "
        f"(best paired ratio {best_paired:.3f})"
    )


def test_dense_product_convoy_k4_vs_k1(benchmark):
    """K=4 dense product BFS (best strategy) must beat K=1 best-paired.

    Same protocol as :func:`test_dense_convoy_checker_k4_vs_k1`, with
    the *product* parallelism swept and the checker pinned at K=1 so
    the product contribution is isolated: the full convoy loop runs at
    K=1 and K=4 in paired interleaved rounds.  ``select_strategy``
    resolves the convoy-scale flat workload to the chained
    single-worklist schedule, whose analytic ``id % K`` attribution
    prices K>1 at two modulo operations per edge — so K=4 must win at
    least one paired loop round (best-paired ratio strictly above
    1.0).  The regression this guards against is the crc32/dict round
    protocol, where K=4 product sharding ran the loop at 0.48–0.68x of
    K=1.  Verdicts, learned models, and the scheduling-independent
    ``product_*`` record counters are asserted identical as always.
    """

    def convoy(parallelism: int):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=CONVOY_TICKS),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
            settings=SynthesisSettings(
                incremental=True,
                parallelism=parallelism,
                checker_parallelism=1,
                dense_product=True,
            ),
        )

    def measure():
        k1_times: list[float] = []
        k4_times: list[float] = []
        results = {}
        # Alternate which side runs first within each paired round so a
        # systematic second-position effect (allocator or cache state
        # left behind by the first run) cannot bias every ratio the
        # same way.
        for round_index in range(9):
            order = ((1, k1_times), (4, k4_times))
            if round_index % 2:
                order = tuple(reversed(order))
            for parallelism, times in order:
                t0 = time.perf_counter()
                results[parallelism] = convoy(parallelism).run()
                times.append(time.perf_counter() - t0)
        return results, k1_times, k4_times

    results, k1_times, k4_times = benchmark.pedantic(measure, rounds=1, iterations=1)
    k1, k4 = results[1], results[4]
    assert k1.verdict is k4.verdict is Verdict.PROVEN
    assert k1.iteration_count == k4.iteration_count
    assert k1.final_model == k4.final_model
    assert all(r.product_shards == 4 for r in k4.iterations)
    for a, b in zip(k1.iterations, k4.iterations):
        assert a.counterexample == b.counterexample
        assert a.product_hits == b.product_hits
        assert a.product_misses == b.product_misses
        assert a.product_dense_states == b.product_dense_states
        assert a.product_bitset_words == b.product_bitset_words

    best_paired = max(a / b for a, b in zip(k1_times, k4_times))
    benchmark.extra_info.update(
        {
            "convoy_ticks": CONVOY_TICKS,
            "iterations": k4.iteration_count,
            "k4_vs_k1_best_paired": best_paired,
            "k4_vs_k1_median_ratio": statistics.median(k1_times)
            / statistics.median(k4_times),
            "k1_loop_seconds_min": min(k1_times),
            "k4_loop_seconds_min": min(k4_times),
        }
    )
    assert best_paired > 1.0, (
        f"dense K=4 product BFS never beat K=1 in any paired loop round "
        f"(best paired ratio {best_paired:.3f})"
    )
