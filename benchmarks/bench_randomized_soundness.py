"""E-claims C1, randomized: verdicts vs ground truth on mutants.

"It can pin-point real failures without false negatives right from the
beginning" — swept here over seeded random deterministic components and
random mutants of the correct chain server: for every single one, the
synthesis verdict must equal the white-box ground truth of
``context ∥ M_r ⊨ φ ∧ ¬δ``.
"""

from repro.automata import compose
from repro.logic import ModelChecker, parse
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.workloads import (
    chain_server,
    mutate_component,
    ping_client,
    random_deterministic_component,
)

PROPERTY = parse("AG (client.waiting -> AF[1,3] client.idle)")


def verdict_and_truth(component):
    result = IntegrationSynthesizer(
        ping_client(),
        component,
        PROPERTY,
        labeler=lambda s: {f"server.{s}"},
        settings=SynthesisSettings(max_iterations=300),
    ).run()
    truth = compose(ping_client(), component._hidden)
    checker = ModelChecker(truth)
    ground = checker.holds(PROPERTY) and checker.holds(parse("AG not deadlock"))
    return result.verdict, ground


def test_random_components_soundness(benchmark):
    def sweep():
        outcomes = []
        for seed in range(20):
            component = random_deterministic_component(seed, n_states=4)
            outcomes.append((seed, *verdict_and_truth(component)))
        return outcomes

    outcomes = benchmark(sweep)
    for seed, verdict, ground in outcomes:
        assert verdict is not Verdict.BUDGET_EXCEEDED, seed
        assert (verdict is Verdict.PROVEN) == ground, f"seed {seed}"


def test_mutant_sweep_soundness(benchmark):
    def sweep():
        outcomes = []
        base = chain_server(3)
        for seed in range(15):
            mutant = mutate_component(chain_server(3), seed, mutations=1)
            outcomes.append((seed, *verdict_and_truth(mutant)))
        del base
        return outcomes

    outcomes = benchmark(sweep)
    proven = sum(1 for _, verdict, _ in outcomes if verdict is Verdict.PROVEN)
    violated = sum(1 for _, verdict, _ in outcomes if verdict is Verdict.REAL_VIOLATION)
    # The sweep must contain both kinds (otherwise it tests nothing).
    assert proven > 0 and violated > 0
    for seed, verdict, ground in outcomes:
        assert (verdict is Verdict.PROVEN) == ground, f"mutant seed {seed}"
