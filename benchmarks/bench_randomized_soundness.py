"""E-claims C1, randomized: verdicts vs ground truth on mutants.

"It can pin-point real failures without false negatives right from the
beginning" — swept here over seeded random deterministic components and
random mutants of the correct chain server: for every single one, the
synthesis verdict must equal the white-box ground truth of
``context ∥ M_r ⊨ φ ∧ ¬δ``.

The scenario-factory sweeps below generalize the same claim across the
generated architecture space (multi-slot, joint, planted violations,
clocked and unclocked properties) and across the full configuration
matrix — incremental/dense/sharded/chaos — including a scenario sized
past ``DENSE_STATE_FLOOR`` so the adaptive dense core is differentially
tested in both regimes.  ``tools/campaign.py`` runs the same harness at
thousand-scenario scale.
"""

from repro.automata import compose
from repro.automata.interning import DENSE_STATE_FLOOR
from repro.logic import ModelChecker, parse
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.testing import (
    LARGE_EVERY,
    evaluate_scenario,
    generate_scenario,
    ground_truth,
)
from repro.workloads import (
    chain_server,
    mutate_component,
    ping_client,
    random_deterministic_component,
)

PROPERTY = parse("AG (client.waiting -> AF[1,3] client.idle)")


def verdict_and_truth(component):
    result = IntegrationSynthesizer(
        ping_client(),
        component,
        PROPERTY,
        labeler=lambda s: {f"server.{s}"},
        settings=SynthesisSettings(max_iterations=300),
    ).run()
    truth = compose(ping_client(), component._hidden)
    checker = ModelChecker(truth)
    ground = checker.holds(PROPERTY) and checker.holds(parse("AG not deadlock"))
    return result.verdict, ground


def test_random_components_soundness(benchmark):
    def sweep():
        outcomes = []
        for seed in range(20):
            component = random_deterministic_component(seed, n_states=4)
            outcomes.append((seed, *verdict_and_truth(component)))
        return outcomes

    outcomes = benchmark(sweep)
    for seed, verdict, ground in outcomes:
        assert verdict is not Verdict.BUDGET_EXCEEDED, seed
        assert (verdict is Verdict.PROVEN) == ground, f"seed {seed}"


def test_mutant_sweep_soundness(benchmark):
    def sweep():
        outcomes = []
        base = chain_server(3)
        for seed in range(15):
            mutant = mutate_component(chain_server(3), seed, mutations=1)
            outcomes.append((seed, *verdict_and_truth(mutant)))
        del base
        return outcomes

    outcomes = benchmark(sweep)
    proven = sum(1 for _, verdict, _ in outcomes if verdict is Verdict.PROVEN)
    violated = sum(1 for _, verdict, _ in outcomes if verdict is Verdict.REAL_VIOLATION)
    # The sweep must contain both kinds (otherwise it tests nothing).
    assert proven > 0 and violated > 0
    for seed, verdict, ground in outcomes:
        assert (verdict is Verdict.PROVEN) == ground, f"mutant seed {seed}"


def test_scenario_matrix_soundness(benchmark):
    """Factory scenarios × full config matrix: zero disagreements.

    Every generated scenario carries a certified known answer; every
    configuration's verdict (and the derived overall verdict) must match
    the independently re-derived full-composition truth.
    """

    def sweep():
        return [evaluate_scenario(generate_scenario(seed, profile="tiny"))
                for seed in range(1, 13)]

    evaluations = benchmark(sweep)
    kinds = {evaluation.truth["scenario"] for evaluation in evaluations}
    assert kinds == {"proven", "violation"}  # both answers represented
    for evaluation in evaluations:
        assert evaluation.ok, (evaluation.spec.seed, evaluation.disagreements)


def test_scenario_dense_boundary_soundness(benchmark):
    """A dense-floor-crossing scenario agrees across the matrix.

    Seed ``LARGE_EVERY`` generates a counter client big enough that the
    first verify iteration composes a product beyond
    ``DENSE_STATE_FLOOR``, so dense-on, dense-off, and the adaptive
    default are all exercised against the same ground truth.
    """

    def run():
        scenario = generate_scenario(LARGE_EVERY, profile="default")
        states = sum(
            len(scenario.contexts[slot.name].states)
            for slot in scenario.spec.slots
        )
        return scenario, states, evaluate_scenario(scenario)

    scenario, client_states, evaluation = benchmark(run)
    assert client_states > DENSE_STATE_FLOOR / 4  # composed product crosses it
    assert ground_truth(scenario)["scenario"] == scenario.spec.expectation
    assert evaluation.ok, evaluation.disagreements
    degraded_configs = {entry.split(":")[0] for entry in evaluation.degraded}
    assert all("chaos" in entry for entry in degraded_configs)  # only faulted configs may degrade
