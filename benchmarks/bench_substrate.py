"""E-substrate: throughput of the verification substrate.

Infrastructure benchmarks: parallel composition, model checking with
bounded operators, chaotic-closure construction, and RTSC unfolding on
scaled inputs.  These back the DESIGN.md ablation notes — the iterative
loop's cost is dominated by repeated compose+check rounds.
"""

import pytest

from repro.automata import (
    Automaton,
    IncompleteAutomaton,
    InteractionUniverse,
    Transition,
    Interaction,
    chaotic_closure,
    compose,
)
from repro.logic import ModelChecker, parse
from repro.rtsc import ClockConstraint, Statechart, unfold


def ring(n: int, name: str, signal_in: str, signal_out: str) -> Automaton:
    """A ring of n states passing one token per revolution."""
    transitions = []
    for index in range(n):
        target = (index + 1) % n
        if index == 0:
            interaction = Interaction([signal_in], None)
        elif index == n - 1:
            interaction = Interaction(None, [signal_out])
        else:
            interaction = Interaction()
        transitions.append(Transition(f"{name}{index}", interaction, f"{name}{target}"))
        transitions.append(Transition(f"{name}{index}", Interaction(), f"{name}{index}"))
    return Automaton(
        inputs={signal_in},
        outputs={signal_out},
        transitions=transitions,
        initial=[f"{name}0"],
        labels={f"{name}0": {f"{name}.home"}},
        name=name,
    )


@pytest.mark.parametrize("size", [10, 40])
def test_composition_throughput(benchmark, size):
    left = ring(size, "L", "a", "b")
    right = ring(size, "R", "b", "a")
    composed = benchmark(lambda: compose(left, right))
    assert composed.states


@pytest.mark.parametrize("size", [10, 40])
def test_model_checking_throughput(benchmark, size):
    left = ring(size, "L", "a", "b")
    right = ring(size, "R", "b", "a")
    composed = compose(left, right)
    formula = parse(f"AG (L.home -> AF[0,{4 * size}] R.home)")

    def check():
        return ModelChecker(composed).check(formula)

    result = benchmark(check)
    assert isinstance(result.holds, bool)


@pytest.mark.parametrize("states,alphabet", [(5, 4), (20, 8)])
def test_closure_construction_throughput(benchmark, states, alphabet):
    inputs = [f"i{k}" for k in range(alphabet // 2)]
    outputs = [f"o{k}" for k in range(alphabet // 2)]
    universe = InteractionUniverse.singletons(inputs, outputs)
    transitions = [
        (f"s{i}", (), (outputs[0],), f"s{(i + 1) % states}") for i in range(states)
    ]
    model = IncompleteAutomaton(
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=["s0"],
        name="learned",
    )
    closure = benchmark(
        lambda: chaotic_closure(model, universe, deterministic_implementation=True)
    )
    assert len(closure.states) == 2 * states + 2


@pytest.mark.parametrize("horizon", [5, 20])
def test_rtsc_unfolding_throughput(benchmark, horizon):
    chart = Statechart("timer", outputs={"tick"}, clocks={"c"})
    waiting = chart.location(
        "waiting", initial=True, invariant=ClockConstraint.at_most("c", horizon)
    )
    fire = chart.location("fire")
    chart.transition(
        waiting, fire, raised="tick", guard=ClockConstraint.at_least("c", horizon), resets={"c"}
    )
    chart.transition(fire, waiting, resets={"c"})
    automaton = benchmark(lambda: unfold(chart))
    assert len(automaton.states) >= horizon
