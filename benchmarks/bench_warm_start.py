"""E-warm: knowledge reuse across properties and sessions.

Not in the paper, but a direct consequence of its design: the learned
model is property-independent (it is a safe abstraction of the
component, full stop), so a model learned while proving one constraint
warm-starts the verification of the next — typically to a zero-test,
single-iteration proof.  Measured here together with the validation
cost of re-executing persisted knowledge against the live component.
"""

from repro import railcab
from repro.logic import parse
from repro.persistence import incomplete_from_dict, incomplete_to_dict
from repro.synthesis import IntegrationSynthesizer, Verdict

AGREEMENT = parse("AG (rearRole.convoy -> frontRole.convoy)")


def cold_result():
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
    ).run()


def test_warm_start_zero_tests(benchmark):
    knowledge = cold_result().final_model

    def warm():
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            AGREEMENT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=knowledge,
        ).run()

    result = benchmark(warm)
    assert result.verdict is Verdict.PROVEN
    assert result.iteration_count == 1
    assert result.total_tests == 0


def test_warm_vs_cold_cost(benchmark):
    knowledge = cold_result().final_model

    def both():
        cold = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            AGREEMENT,
            labeler=railcab.rear_state_labeler,
        ).run()
        warm = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            AGREEMENT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=knowledge,
        ).run()
        return cold, warm

    cold, warm = benchmark(both)
    assert cold.verdict is Verdict.PROVEN and warm.verdict is Verdict.PROVEN
    assert warm.iteration_count < cold.iteration_count
    assert warm.total_tests < cold.total_tests


def test_persistence_round_trip_fidelity(benchmark):
    knowledge = cold_result().final_model

    def round_trip():
        return incomplete_from_dict(incomplete_to_dict(knowledge))

    reloaded = benchmark(round_trip)
    assert reloaded == knowledge
