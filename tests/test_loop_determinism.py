"""Full-loop determinism of the sharded synthesis pipeline.

The RailCab convoy loop is run twice at ``parallelism=4`` (which also
shards the checker fixpoints via the checker-parallelism fallback) and
once sequentially: iteration counts, counterexamples, learned models,
and every :class:`IterationRecord` counter must be identical — except
the per-shard breakdowns, whose shape depends on the shard count but
whose sums must stay consistent on every iteration
(``sum(product_shard_states_explored) == product_hits + product_misses``
and ``sum(checker_shard_fixpoint_work) == checker_fixpoint_work``).
Note ``checker_fixpoint_work`` itself is *not* exempted: the sharded
fixpoint performs exactly the sequential admissions/removals, so the
total is pinned record-by-record across every shard count.
"""

from __future__ import annotations

import pytest

from repro import railcab
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer

#: IterationRecord fields that legitimately vary with the shard count
#: (a single shard emits no handoffs and hence no merge conflicts);
#: everything else must match field-for-field.  Between runs at the
#: *same* shard count even these are exactly equal.
PER_SHARD_FIELDS = (
    "product_shards",
    "product_shard_states_explored",
    "product_shard_handoffs",
    "product_shard_merge_conflicts",
    "checker_shards",
    "checker_shard_fixpoint_work",
    "checker_shard_handoffs",
)


def _convoy(parallelism: int | None) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=2),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=SynthesisSettings(parallelism=parallelism),
    )


def _assert_records_match(left, right, *, modulo_shards: bool) -> None:
    assert len(left) == len(right)
    for a, b in zip(left, right):
        skip = PER_SHARD_FIELDS if modulo_shards else ()
        for field_name in type(a).__dataclass_fields__:
            if field_name in skip:
                continue
            assert getattr(a, field_name) == getattr(b, field_name), field_name
        # The per-shard breakdowns must still sum consistently.
        for record in (a, b):
            assert sum(record.product_shard_states_explored) == (
                record.product_hits + record.product_misses
            )
            assert sum(record.checker_shard_fixpoint_work) == (
                record.checker_fixpoint_work
            )


@pytest.fixture(scope="module")
def runs():
    # The fixture pins shard counts explicitly (4 vs 1) and asserts the
    # checker-parallelism *fallback*, so the env knobs must not leak in
    # (CI re-runs the suite under REPRO_CHECKER_PARALLELISM=4).
    with pytest.MonkeyPatch.context() as patch:
        patch.delenv("REPRO_CHECKER_PARALLELISM", raising=False)
        first = _convoy(4).run()
        second = _convoy(4).run()
        sequential = _convoy(1).run()
    return first, second, sequential


def test_repeated_sharded_runs_are_identical(runs):
    first, second, _ = runs
    assert first.verdict is second.verdict is Verdict.PROVEN
    assert first.iteration_count == second.iteration_count
    assert first.final_model == second.final_model
    assert first.final_closure == second.final_closure
    for a, b in zip(first.iterations, second.iterations):
        assert a.counterexample == b.counterexample
    _assert_records_match(first.iterations, second.iterations, modulo_shards=False)


def test_sharded_run_equals_sequential_run(runs):
    first, _, sequential = runs
    assert first.verdict is sequential.verdict is Verdict.PROVEN
    assert first.iteration_count == sequential.iteration_count
    assert first.final_model == sequential.final_model
    assert first.final_closure == sequential.final_closure
    for a, b in zip(first.iterations, sequential.iterations):
        assert a.counterexample == b.counterexample
    _assert_records_match(first.iterations, sequential.iterations, modulo_shards=True)


def test_sharded_run_actually_sharded(runs):
    first, _, sequential = runs
    assert all(r.product_shards == 4 for r in first.iterations)
    assert all(len(r.product_shard_states_explored) == 4 for r in first.iterations)
    assert all(r.product_shards == 1 for r in sequential.iterations)
    # The joint state space is spread across shards on some iteration.
    assert any(
        sum(1 for n in r.product_shard_states_explored if n) > 1
        for r in first.iterations
    )
    assert any(r.product_shard_handoffs > 0 for r in first.iterations)


def test_checker_shards_follow_product_parallelism(runs):
    first, _, sequential = runs
    # checker_parallelism falls back to the product parallelism.
    assert all(r.checker_shards == 4 for r in first.iterations)
    assert all(len(r.checker_shard_fixpoint_work) == 4 for r in first.iterations)
    assert all(r.checker_shards == 1 for r in sequential.iterations)
    # The sharded fixpoint does real cross-shard work on some iteration.
    assert any(
        sum(1 for n in r.checker_shard_fixpoint_work if n) > 1
        for r in first.iterations
    )
    assert any(r.checker_shard_handoffs > 0 for r in first.iterations)
    # Total admissions/removals are conserved exactly, iteration by
    # iteration — the determinism claim for the checker fixpoints.
    for a, b in zip(first.iterations, sequential.iterations):
        assert a.checker_fixpoint_work == b.checker_fixpoint_work


def test_deprecated_record_counter_aliases(runs):
    first, _, _ = runs
    record = first.iterations[0]
    with pytest.deprecated_call():
        assert record.shard_states_explored == record.product_shard_states_explored
    with pytest.deprecated_call():
        assert record.shard_handoffs == record.product_shard_handoffs
    with pytest.deprecated_call():
        assert record.shard_merge_conflicts == record.product_shard_merge_conflicts


def test_dense_product_loop_counters_are_parallelism_independent():
    """The dense product BFS pins its counters record-by-record.

    ``product_dense_states`` is the interner size — the union of initial
    joint states and the targets of the (scheduling-independent) miss
    set — so it is *not* a per-shard field: every K must report the same
    value on every iteration, and ``product_bitset_words`` must be its
    exact ⌈n/64⌉.  ``_assert_records_match`` pins both automatically;
    this test additionally proves the run actually went dense.
    """

    def build(parallelism):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=2),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
            settings=SynthesisSettings(parallelism=parallelism, dense_product=True),
        ).run()

    sharded = build(4)
    sequential = build(1)
    assert sharded.verdict is sequential.verdict is Verdict.PROVEN
    assert sharded.final_model == sequential.final_model
    _assert_records_match(sharded.iterations, sequential.iterations, modulo_shards=True)
    for run in (sharded, sequential):
        assert all(r.product_dense_states > 0 for r in run.iterations)
        for r in run.iterations:
            assert r.product_bitset_words == (r.product_dense_states + 63) // 64
    # The interner only ever grows across the learning sequence.
    sizes = [r.product_dense_states for r in sharded.iterations]
    assert sizes == sorted(sizes)


def test_faulty_shuttle_violation_is_parallelism_independent():
    def build(parallelism):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
            settings=SynthesisSettings(parallelism=parallelism),
        ).run()

    sharded = build(4)
    sequential = build(None)
    assert sharded.verdict is sequential.verdict is Verdict.REAL_VIOLATION
    assert sharded.violation_kind == sequential.violation_kind
    assert sharded.violation_witness == sequential.violation_witness
    assert sharded.final_model == sequential.final_model
    _assert_records_match(sharded.iterations, sequential.iterations, modulo_shards=True)


def test_multi_legacy_loop_is_parallelism_independent():
    def build(parallelism, checker_parallelism=None):
        return MultiLegacySynthesizer(
            None,
            [
                railcab.correct_front_shuttle(),
                railcab.correct_rear_shuttle(convoy_ticks=2),
            ],
            railcab.PATTERN_CONSTRAINT,
            labelers={
                "frontShuttle": railcab.front_state_labeler,
                "rearShuttle": railcab.rear_state_labeler,
            },
            settings=SynthesisSettings(
                parallelism=parallelism, checker_parallelism=checker_parallelism
            ),
        ).run()

    sharded = build(4)
    cross = build(1, checker_parallelism=4)  # checker sharded, product not
    sequential = build(1)
    assert sharded.verdict is cross.verdict is sequential.verdict is Verdict.PROVEN
    assert sharded.iteration_count == sequential.iteration_count
    assert sharded.final_models == sequential.final_models
    assert cross.final_models == sequential.final_models
    _assert_records_match(sharded.iterations, sequential.iterations, modulo_shards=True)
    _assert_records_match(cross.iterations, sequential.iterations, modulo_shards=True)
    assert all(r.product_shards == 1 for r in cross.iterations)
    assert all(r.checker_shards == 4 for r in cross.iterations)
