"""Unit tests for restriction, renaming, completion, minimization."""

import pytest

from repro.automata import (
    Automaton,
    Interaction,
    InteractionUniverse,
    complete,
    enumerate_traces,
    minimize,
    rename_signals,
    restrict,
)
from repro.errors import ModelError

A = Interaction(["a"], None)
B = Interaction(None, ["b"])


def machine() -> Automaton:
    return Automaton(
        inputs={"a", "x"},
        outputs={"b", "y"},
        transitions=[
            ("s", ("a", "x"), ("b",), "t"),
            ("t", (), ("y",), "s"),
        ],
        initial=["s"],
        labels={"s": {"p", "q"}},
        name="M",
    )


class TestRestrict:
    def test_projects_interactions(self):
        restricted = restrict(machine(), inputs={"a"}, outputs={"b"})
        first = next(t for t in restricted.transitions if t.source == "s")
        assert first.interaction == Interaction(["a"], ["b"])

    def test_projects_labels(self):
        restricted = restrict(machine(), inputs={"a"}, outputs={"b"}, propositions={"p"})
        assert restricted.labels("s") == frozenset({"p"})

    def test_keeps_labels_without_proposition_filter(self):
        restricted = restrict(machine(), inputs={"a"}, outputs={"b"})
        assert restricted.labels("s") == frozenset({"p", "q"})

    def test_rejects_non_subset(self):
        with pytest.raises(ModelError, match="not a subset"):
            restrict(machine(), inputs={"zzz"}, outputs={"b"})


class TestRenameSignals:
    def test_renames_everywhere(self):
        renamed = rename_signals(machine(), {"a": "a2", "b": "b2"})
        assert "a2" in renamed.inputs and "a" not in renamed.inputs
        assert any("b2" in t.outputs for t in renamed.transitions)

    def test_identity_for_unmapped(self):
        renamed = rename_signals(machine(), {})
        assert renamed.inputs == machine().inputs

    def test_rejects_merging_signals(self):
        with pytest.raises(ModelError, match="merges"):
            rename_signals(machine(), {"a": "x"})


class TestComplete:
    def test_completes_with_sink(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        base = Automaton(
            inputs={"a"}, outputs={"b"}, transitions=[("s", A, "s")], initial=["s"]
        )
        completed = complete(base, universe)
        assert "⊥" in completed.states
        for state in completed.states:
            assert completed.enabled(state) == frozenset(universe)

    def test_already_complete_is_identity(self):
        universe = InteractionUniverse.explicit([A], inputs=["a"], outputs=[])
        base = Automaton(inputs={"a"}, outputs=(), transitions=[("s", A, "s")], initial=["s"])
        assert complete(base, universe) is base

    def test_sink_collision_rejected(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        base = Automaton(inputs={"a"}, outputs={"b"}, initial=["⊥"])
        with pytest.raises(ModelError, match="already exists"):
            complete(base, universe)


class TestMinimize:
    def test_merges_equivalent_states(self):
        # Two copies of the same cycle: minimization folds them.
        automaton = Automaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[
                ("s0", A, "t0"),
                ("t0", B, "s1"),
                ("s1", A, "t1"),
                ("t1", B, "s0"),
            ],
            initial=["s0"],
            name="doubled",
        )
        minimized = minimize(automaton)
        assert len(minimized.states) == 2
        assert enumerate_traces(minimized, 4) == enumerate_traces(automaton, 4)

    def test_distinguishes_by_labels(self):
        automaton = Automaton(
            inputs={"a"},
            outputs=(),
            transitions=[("s0", A, "s1"), ("s1", A, "s0")],
            initial=["s0"],
            labels={"s0": {"p"}},
        )
        assert len(minimize(automaton).states) == 2

    def test_distinguishes_by_refusals(self):
        # s1 deadlocks, s0 does not: they must not merge even though
        # both have the same labels.
        automaton = Automaton(
            inputs={"a"},
            outputs=(),
            transitions=[("s0", A, "s1")],
            initial=["s0"],
        )
        assert len(minimize(automaton).states) == 2

    def test_rejects_nondeterministic_input(self):
        automaton = Automaton(
            inputs={"a"},
            outputs=(),
            transitions=[("s", A, "t"), ("s", A, "u")],
            initial=["s"],
        )
        with pytest.raises(ModelError, match="deterministic"):
            minimize(automaton)

    def test_initial_state_preserved_semantically(self):
        automaton = Automaton(
            inputs={"a"}, outputs={"b"},
            transitions=[("s", A, "s")], initial=["s"],
        )
        minimized = minimize(automaton)
        assert len(minimized.initial) == 1
