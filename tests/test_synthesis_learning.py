"""Unit tests for initial synthesis and the learning step (§3, §4.3)."""

import pytest

from repro.automata import (
    CHAOS_PROPOSITION,
    ClosureState,
    IDLE,
    IncompleteAutomaton,
    Interaction,
    InteractionUniverse,
    Run,
    S_ALL,
)
from repro.errors import LearningError
from repro.legacy import InterfaceDescription
from repro.synthesis import (
    initial_abstraction,
    initial_model,
    learn,
    learn_blocked,
    learn_regular,
    refuse,
)

A = Interaction(["a"], None)
B = Interaction(None, ["b"])
UNIVERSE = InteractionUniverse.singletons({"a"}, {"b"})

INTERFACE = InterfaceDescription(
    name="legacy",
    inputs=frozenset({"a"}),
    outputs=frozenset({"b"}),
    initial_state="s0",
    state_bound=4,
)


class TestInitialSynthesis:
    def test_initial_model_is_trivial(self):
        model = initial_model(INTERFACE)
        assert model.states == frozenset({"s0"})
        assert model.transitions == frozenset()
        assert model.refusals == frozenset()
        assert model.initial == frozenset({"s0"})

    def test_initial_model_labeled(self):
        model = initial_model(INTERFACE, labeler=lambda s: {f"leg.{s}"})
        assert model.labels("s0") == frozenset({"leg.s0"})

    def test_initial_abstraction_is_figure_4b(self):
        closure = initial_abstraction(INTERFACE, UNIVERSE)
        assert ClosureState("s0", False) in closure.states
        assert ClosureState("s0", True) in closure.states
        assert S_ALL in closure.states
        # (s0,0) deadlocks (no transitions learned yet); (s0,1) escapes
        # on every interaction.
        assert closure.is_deadlock(ClosureState("s0", False))
        assert len(closure.transitions_from(ClosureState("s0", True))) == 2 * len(UNIVERSE)

    def test_initial_abstraction_default_universe(self):
        closure = initial_abstraction(INTERFACE)
        assert closure.inputs == INTERFACE.inputs

    def test_chaos_labels_present(self):
        closure = initial_abstraction(INTERFACE, UNIVERSE)
        assert closure.labels(S_ALL) == frozenset({CHAOS_PROPOSITION})


class TestLearnRegular:
    def test_definition_11_adds_states_and_transitions(self):
        model = initial_model(INTERFACE)
        run = Run("s0").extend(A, "s1").extend(B, "s0")
        learned = learn_regular(model, run)
        assert learned.states == frozenset({"s0", "s1"})
        assert len(learned.transitions) == 2

    def test_learning_is_idempotent(self):
        model = initial_model(INTERFACE)
        run = Run("s0").extend(A, "s1")
        once = learn_regular(model, run)
        twice = learn_regular(once, run)
        assert once == twice

    def test_new_states_labeled(self):
        model = initial_model(INTERFACE, labeler=lambda s: {f"leg.{s}"})
        learned = learn_regular(model, Run("s0").extend(A, "s1"), labeler=lambda s: {f"leg.{s}"})
        assert learned.labels("s1") == frozenset({"leg.s1"})

    def test_rejects_deadlock_run(self):
        model = initial_model(INTERFACE)
        with pytest.raises(LearningError, match="regular run"):
            learn_regular(model, Run("s0").block(A))

    def test_conflicting_target_detected(self):
        model = learn_regular(initial_model(INTERFACE), Run("s0").extend(A, "s1"))
        with pytest.raises(LearningError, match="non-deterministically"):
            learn_regular(model, Run("s0").extend(A, "s2"))

    def test_contradicting_refusal_detected(self):
        model = initial_model(INTERFACE).replace(refusals=[("s0", A)])
        with pytest.raises(LearningError, match="contradicts an earlier refusal"):
            learn_regular(model, Run("s0").extend(A, "s1"))

    def test_observation_conformance_preserved(self):
        # Every run of the learned model must remain a run of the source.
        model = initial_model(INTERFACE)
        run = Run("s0").extend(A, "s1").extend(B, "s0")
        learned = learn_regular(model, run)
        assert learned.is_run(run)
        assert learned.is_run(Run("s0").extend(A, "s1"))


class TestLearnBlocked:
    def test_definition_12_adds_refusal(self):
        model = initial_model(INTERFACE)
        run = Run("s0").block(A)
        learned = learn_blocked(model, run, mode="conservative")
        assert len(learned.refusals) == 1

    def test_deterministic_mode_refuses_all_outputs(self):
        model = initial_model(INTERFACE)
        run = Run("s0").block(A)
        learned = learn_blocked(model, run, mode="deterministic", universe=UNIVERSE)
        refused_inputs = {r.interaction.inputs for r in learned.refusals}
        assert refused_inputs == {frozenset({"a"})}
        # a with no output, and... only one interaction with inputs {a}
        # exists in the singleton universe, plus the blocked tail itself.
        assert len(learned.refusals) >= 1

    def test_deterministic_mode_with_observed_outputs(self):
        model = learn_regular(initial_model(INTERFACE), Run("s0").extend(IDLE, "s0x"))
        # s0 reacted to no-input with nothing... now refuse other outputs:
        learned = learn_blocked(
            initial_model(INTERFACE),
            Run("s0").block(Interaction(None, ["b"])),
            mode="deterministic",
            universe=UNIVERSE,
            observed_outputs=frozenset(),
        )
        refused = {r.interaction for r in learned.refusals}
        assert Interaction(None, ["b"]) in refused
        assert IDLE not in refused  # matches the observed outputs
        del model

    def test_prefix_learned_before_refusal(self):
        model = initial_model(INTERFACE)
        run = Run("s0").extend(A, "s1").block(B)
        learned = learn_blocked(model, run, mode="conservative")
        assert "s1" in learned.states
        assert any(r.state == "s1" for r in learned.refusals)

    def test_deterministic_mode_needs_universe(self):
        with pytest.raises(LearningError, match="universe"):
            learn_blocked(initial_model(INTERFACE), Run("s0").block(A), mode="deterministic")

    def test_refusal_contradicting_transition_detected(self):
        model = learn_regular(initial_model(INTERFACE), Run("s0").extend(A, "s1"))
        with pytest.raises(LearningError, match="contradicts a known transition"):
            learn_blocked(model, Run("s0").block(A), mode="conservative")

    def test_no_progress_detected(self):
        model = initial_model(INTERFACE).replace(refusals=[("s0", A)])
        with pytest.raises(LearningError, match="no progress"):
            learn_blocked(model, Run("s0").block(A), mode="conservative")

    def test_requires_deadlock_run(self):
        with pytest.raises(LearningError, match="deadlock run"):
            learn_blocked(initial_model(INTERFACE), Run("s0"), mode="conservative")


class TestLearnDispatch:
    def test_dispatches_regular(self):
        learned = learn(initial_model(INTERFACE), Run("s0").extend(A, "s1"))
        assert len(learned.transitions) == 1

    def test_dispatches_blocked(self):
        learned = learn(
            initial_model(INTERFACE), Run("s0").block(A), mode="deterministic", universe=UNIVERSE
        )
        assert learned.refusals


class TestRefuse:
    def test_adds_refusals(self):
        model = initial_model(INTERFACE)
        updated = refuse(model, "s0", [A, B])
        assert len(updated.refusals) == 2

    def test_skips_known_interactions(self):
        model = learn_regular(initial_model(INTERFACE), Run("s0").extend(A, "s1"))
        updated = refuse(model, "s0", [A, B])
        assert len(updated.refusals) == 1

    def test_no_progress_raises_unless_allowed(self):
        model = learn_regular(initial_model(INTERFACE), Run("s0").extend(A, "s1"))
        with pytest.raises(LearningError):
            refuse(model, "s0", [A])
        assert refuse(model, "s0", [A], allow_no_progress=True) == model


class TestMonotonicity:
    def test_knowledge_size_strictly_grows(self):
        model = initial_model(INTERFACE)
        sizes = [model.knowledge_size()]
        model = learn_regular(model, Run("s0").extend(A, "s1"))
        sizes.append(model.knowledge_size())
        model = learn_blocked(
            model, Run("s0").extend(A, "s1").block(A), mode="deterministic", universe=UNIVERSE
        )
        sizes.append(model.knowledge_size())
        assert sizes == sorted(set(sizes))
