"""The consolidated :class:`SynthesisSettings` API and its shims.

One frozen settings object now carries every loop-tuning knob through
``integrate`` / ``IntegrationSynthesizer`` / ``MultiLegacySynthesizer``;
the old per-call keywords still work but warn.  The regression tests at
the bottom pin the ``integrate`` → multi-legacy forwarding bug: the
joint branch used to drop ``universes`` and the counterexample batch
size on the floor.
"""

from __future__ import annotations

import inspect

import pytest

from repro import railcab
from repro.errors import SynthesisError
from repro.integration import SynthesisSettings, integrate
from repro.automata.interning import DENSE_STATE_FLOOR
from repro.legacy import interface_of
from repro.synthesis import IntegrationSynthesizer, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer
from tests.test_integration_facade import convoy_architecture, two_legacy_architecture


# ------------------------------------------------------------------ the object


class TestSynthesisSettings:
    def test_defaults(self):
        settings = SynthesisSettings()
        assert settings.max_iterations is None
        assert settings.counterexamples_per_iteration == 1
        assert settings.incremental is True
        assert settings.parallelism is None
        assert settings.checker_parallelism is None
        assert settings.iterations_or(500) == 500
        assert SynthesisSettings(max_iterations=7).iterations_or(500) == 7

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SynthesisSettings().max_iterations = 3  # type: ignore[misc]

    def test_validation(self):
        with pytest.raises(SynthesisError, match="counterexamples_per_iteration"):
            SynthesisSettings(counterexamples_per_iteration=0)
        with pytest.raises(SynthesisError, match="max_iterations"):
            SynthesisSettings(max_iterations=0)

    def test_checker_parallelism_falls_back_to_parallelism(self, monkeypatch):
        from repro.automata import CHECKER_PARALLELISM_ENV, PARALLELISM_ENV

        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        monkeypatch.delenv(CHECKER_PARALLELISM_ENV, raising=False)
        assert SynthesisSettings().resolved_checker_parallelism() == 1
        assert SynthesisSettings(parallelism=4).resolved_checker_parallelism() == 4
        assert (
            SynthesisSettings(parallelism=4, checker_parallelism=2)
            .resolved_checker_parallelism()
            == 2
        )
        monkeypatch.setenv(CHECKER_PARALLELISM_ENV, "8")
        assert SynthesisSettings(parallelism=4).resolved_checker_parallelism() == 8


# ------------------------------------------------------------ deprecated shims


class TestDeprecatedKeywords:
    def test_synthesizer_legacy_keywords_warn_but_work(self):
        with pytest.deprecated_call(match="IntegrationSynthesizer"):
            synthesizer = IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(convoy_ticks=1),
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                port="rearRole",
                max_iterations=50,
                parallelism=2,
            )
        assert synthesizer.max_iterations == 50
        assert synthesizer.parallelism == 2
        assert synthesizer.settings == SynthesisSettings(
            max_iterations=50, parallelism=2
        )
        assert synthesizer.run().verdict is Verdict.PROVEN

    def test_legacy_keywords_override_settings(self):
        with pytest.deprecated_call():
            synthesizer = IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(convoy_ticks=1),
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                port="rearRole",
                settings=SynthesisSettings(max_iterations=9, parallelism=2),
                max_iterations=50,
            )
        assert synthesizer.settings.max_iterations == 50
        assert synthesizer.settings.parallelism == 2  # untouched

    def test_settings_alone_do_not_warn(self, recwarn):
        IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
            settings=SynthesisSettings(max_iterations=50),
        )
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_multi_legacy_keywords_warn_but_work(self):
        with pytest.deprecated_call(match="MultiLegacySynthesizer"):
            synthesizer = MultiLegacySynthesizer(
                None,
                [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle()],
                railcab.PATTERN_CONSTRAINT,
                labelers={
                    "frontShuttle": railcab.front_state_labeler,
                    "rearShuttle": railcab.rear_state_labeler,
                },
                max_iterations=77,
                counterexamples_per_iteration=2,
            )
        assert synthesizer.max_iterations == 77
        assert synthesizer.counterexamples_per_iteration == 2

    def test_integrate_legacy_keywords_warn_but_work(self):
        with pytest.deprecated_call(match="integrate"):
            report = integrate(
                convoy_architecture(),
                {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
                labelers={"follower": railcab.rear_state_labeler},
                max_iterations=50,
            )
        assert report.ok


def _here() -> int:
    return inspect.currentframe().f_back.f_lineno  # type: ignore[union-attr]


class TestWarningLocations:
    """The shims must blame the *caller* of the deprecated API.

    ``warnings.warn(..., stacklevel=...)`` is easy to get wrong by one
    frame — the warning then points inside the library and a
    ``-W error`` user cannot find the call to fix.  These tests pin the
    reported filename (this file, not settings.py / iterate.py) and the
    line number range of the deprecated call itself.
    """

    def test_synthesizer_keyword_warning_blames_this_file(self):
        begin = _here()
        with pytest.warns(DeprecationWarning, match="IntegrationSynthesizer") as captured:
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(convoy_ticks=1),
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                port="rearRole",
                max_iterations=50,
            )
        end = _here()
        warning = captured.pop(DeprecationWarning)
        assert warning.filename == __file__
        assert begin < warning.lineno < end

    def test_multi_keyword_warning_blames_this_file(self):
        begin = _here()
        with pytest.warns(DeprecationWarning, match="MultiLegacySynthesizer") as captured:
            MultiLegacySynthesizer(
                None,
                [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle()],
                railcab.PATTERN_CONSTRAINT,
                labelers={
                    "frontShuttle": railcab.front_state_labeler,
                    "rearShuttle": railcab.rear_state_labeler,
                },
                max_iterations=77,
            )
        end = _here()
        warning = captured.pop(DeprecationWarning)
        assert warning.filename == __file__
        assert begin < warning.lineno < end

    def test_integrate_keyword_warning_blames_this_file(self):
        begin = _here()
        with pytest.warns(DeprecationWarning, match="integrate") as captured:
            integrate(
                convoy_architecture(),
                {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
                labelers={"follower": railcab.rear_state_labeler},
                max_iterations=50,
            )
        end = _here()
        warning = captured.pop(DeprecationWarning)
        assert warning.filename == __file__
        assert begin < warning.lineno < end

    def test_renamed_counter_warning_blames_this_file(self):
        from repro.synthesis import IterationRecord
        from repro.synthesis.multi import MultiIterationRecord

        record = IterationRecord(
            0, 1, 0, 0, 1, 0, 1, True, True, None, None, False, None, 0, 0, None, 0
        )
        with pytest.warns(DeprecationWarning, match="shard_handoffs") as captured:
            _ = record.shard_handoffs
        warning = captured.pop(DeprecationWarning)
        assert warning.filename == __file__
        assert "product_shard_handoffs" in str(warning.message)

        multi_record = MultiIterationRecord(
            0, (), 1, True, True, None, None, False, 0, (), 0
        )
        with pytest.warns(DeprecationWarning, match="MultiIterationRecord") as captured:
            _ = multi_record.shard_states_explored
        warning = captured.pop(DeprecationWarning)
        assert warning.filename == __file__


# ----------------------------------------------- integrate forwarding (bugfix)


class _Recorder(MultiLegacySynthesizer):
    """Real multi-synthesizer that also records its constructor kwargs."""

    captured: dict = {}

    def __init__(self, *args, **kwargs):
        type(self).captured = dict(kwargs)
        super().__init__(*args, **kwargs)


class TestIntegrateForwarding:
    def test_multi_branch_forwards_universes_and_settings(self, monkeypatch):
        monkeypatch.setattr(
            "repro.integration.MultiLegacySynthesizer", _Recorder
        )
        front = railcab.correct_front_shuttle()
        rear = railcab.correct_rear_shuttle(convoy_ticks=1)
        settings = SynthesisSettings(counterexamples_per_iteration=2)
        report = integrate(
            two_legacy_architecture(),
            {"leader": front, "follower": rear},
            labelers={
                "leader": railcab.front_state_labeler,
                "follower": railcab.rear_state_labeler,
            },
            universes={"follower": interface_of(rear).universe()},
            settings=settings,
        )
        assert report.ok
        captured = _Recorder.captured
        # The bug: both of these used to be dropped on the multi branch.
        assert captured["universes"] == {
            rear.name: interface_of(rear).universe()
        }
        assert captured["settings"] == settings
        assert captured["settings"].counterexamples_per_iteration == 2

    def test_single_branch_forwards_settings(self):
        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
            labelers={"follower": railcab.rear_state_labeler},
            settings=SynthesisSettings(parallelism=2, checker_parallelism=2),
        )
        assert report.ok
        result = report.placements["follower"]
        assert all(r.product_shards == 2 for r in result.iterations)
        assert all(r.checker_shards == 2 for r in result.iterations)


# ------------------------------------------------------- dense resolution


class TestResolvedDense:
    """``resolved_dense`` at the exact adaptive boundary and under env."""

    def test_adaptive_boundary_is_exactly_the_floor(self):
        settings = SynthesisSettings()  # dense=None: adaptive
        assert DENSE_STATE_FLOOR == 2048  # the documented contract
        assert settings.resolved_dense(DENSE_STATE_FLOOR - 1) is False
        assert settings.resolved_dense(DENSE_STATE_FLOOR) is True
        assert settings.resolved_dense(DENSE_STATE_FLOOR + 1) is True

    def test_unknown_state_count_defaults_dense(self):
        # No size estimate: the dense core is the safe default.
        assert SynthesisSettings().resolved_dense(None) is True

    def test_env_overrides_adaptive_default(self, monkeypatch):
        settings = SynthesisSettings()
        monkeypatch.setenv("REPRO_DENSE", "1")
        assert settings.resolved_dense(DENSE_STATE_FLOOR - 1) is True
        assert settings.resolved_dense(1) is True
        monkeypatch.setenv("REPRO_DENSE", "0")
        assert settings.resolved_dense(DENSE_STATE_FLOOR) is False
        assert settings.resolved_dense(10**6) is False

    def test_explicit_setting_beats_env_and_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE", "0")
        assert SynthesisSettings(dense=True).resolved_dense(1) is True
        monkeypatch.setenv("REPRO_DENSE", "1")
        assert SynthesisSettings(dense=False).resolved_dense(10**6) is False


class TestResolvedDenseProduct:
    """``resolved_dense_product`` / ``resolved_product_strategy`` knobs."""

    def test_defaults_and_validation(self):
        settings = SynthesisSettings()
        assert settings.dense_product is None
        assert settings.product_strategy is None
        with pytest.raises(SynthesisError):
            SynthesisSettings(dense_product="yes")  # type: ignore[arg-type]
        with pytest.raises(SynthesisError, match="strategy"):
            SynthesisSettings(product_strategy="fibers")

    def test_adaptive_boundary_is_exactly_the_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_DENSE_PRODUCT", raising=False)
        settings = SynthesisSettings()  # dense_product=None: adaptive
        assert settings.resolved_dense_product(DENSE_STATE_FLOOR - 1) is False
        assert settings.resolved_dense_product(DENSE_STATE_FLOOR) is True
        assert settings.resolved_dense_product(None) is True  # dense default

    def test_env_overrides_adaptive_default(self, monkeypatch):
        settings = SynthesisSettings()
        monkeypatch.setenv("REPRO_DENSE_PRODUCT", "1")
        assert settings.resolved_dense_product(1) is True
        monkeypatch.setenv("REPRO_DENSE_PRODUCT", "0")
        assert settings.resolved_dense_product(10**6) is False

    def test_explicit_setting_beats_env_and_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_DENSE_PRODUCT", "0")
        assert SynthesisSettings(dense_product=True).resolved_dense_product(1) is True
        monkeypatch.setenv("REPRO_DENSE_PRODUCT", "1")
        assert (
            SynthesisSettings(dense_product=False).resolved_dense_product(10**6)
            is False
        )

    def test_product_strategy_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_PRODUCT_STRATEGY", raising=False)
        assert SynthesisSettings().resolved_product_strategy() is None
        assert (
            SynthesisSettings(product_strategy="thread").resolved_product_strategy()
            == "thread"
        )
        monkeypatch.setenv("REPRO_PRODUCT_STRATEGY", "process")
        assert SynthesisSettings().resolved_product_strategy() == "process"
        assert (
            SynthesisSettings(product_strategy="sequential")
            .resolved_product_strategy()
            == "sequential"
        )

    def test_loop_results_are_knob_independent(self):
        def build(**knobs):
            return IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(convoy_ticks=1),
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                port="rearRole",
                settings=SynthesisSettings(**knobs),
            ).run()

        reference = build()
        for knobs in (
            {"dense_product": True},
            {"dense_product": False},
            {"dense_product": True, "parallelism": 4, "product_strategy": "thread"},
        ):
            result = build(**knobs)
            assert result.verdict is reference.verdict is Verdict.PROVEN
            assert result.final_model == reference.final_model
            assert result.iteration_count == reference.iteration_count
