"""The flight recorder: ring semantics, anomaly dumps, reproducibility.

The blackbox dump is a debugging artifact whose whole value is being
*trustworthy*: the tests pin its schema, its activation routes
(settings / ``--blackbox`` / ``REPRO_BLACKBOX``), and — the load-bearing
property — that a chaos run's dump is bit-reproducible: byte-identical
across repeated runs from the same fault seed, and identical modulo the
``env`` block (compared via ``payload_digest``) across
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import railcab
from repro.errors import SynthesisError
from repro.obs import (
    BLACKBOX_ENV,
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    ProgressEvent,
    resolve_flight_recorder,
)
from repro.obs.flight import BLACKBOX_SCHEMA, environment_fingerprint, settings_fingerprint
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.testing import FaultProfile, RetryPolicy

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _synthesizer(settings: SynthesisSettings) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=settings,
    )


def _chaos_settings(recorder, seed: int = 7, max_iterations: int = 8) -> SynthesisSettings:
    # A hostile profile with no retry budget: every faulted test stays
    # inconclusive, so the run exercises the full anomaly surface
    # (test_inconclusive escalations, then budget_exceeded).
    return SynthesisSettings(
        max_iterations=max_iterations,
        fault_profile=FaultProfile.hostile(seed),
        retry_policy=RetryPolicy(max_attempts=1, record_rounds=1),
        flight_recorder=recorder,
    )


class TestRing:
    def test_record_and_eviction(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("iteration.started", iteration=index)
        assert len(recorder) == 3
        assert [event["iteration"] for event in recorder.events] == [2, 3, 4]
        # Sequence numbers keep counting across evictions.
        assert [event["seq"] for event in recorder.events] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_doubles_as_progress_sink(self):
        recorder = FlightRecorder()
        recorder.emit(ProgressEvent("verdict.reached", 3, {"verdict": "proven"}))
        (event,) = recorder.events
        assert event["event"] == "verdict.reached"
        assert event["verdict"] == "proven"

    def test_null_recorder_is_inert(self, tmp_path):
        assert NULL_FLIGHT_RECORDER.enabled is False
        assert isinstance(NULL_FLIGHT_RECORDER, NullFlightRecorder)
        NULL_FLIGHT_RECORDER.record("x", a=1)
        NULL_FLIGHT_RECORDER.bind(settings=None)
        assert NULL_FLIGHT_RECORDER.anomaly("anything", detail=1) is None
        assert list(tmp_path.iterdir()) == []


class TestResolution:
    def test_default_is_the_null_singleton(self, monkeypatch):
        monkeypatch.delenv(BLACKBOX_ENV, raising=False)
        assert resolve_flight_recorder() is NULL_FLIGHT_RECORDER
        assert SynthesisSettings().resolved_flight_recorder() is NULL_FLIGHT_RECORDER

    def test_explicit_recorder_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BLACKBOX_ENV, str(tmp_path / "env"))
        mine = FlightRecorder(tmp_path / "mine")
        assert resolve_flight_recorder(mine) is mine

    def test_env_activation_is_cached_per_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(BLACKBOX_ENV, str(tmp_path / "a"))
        first = resolve_flight_recorder()
        assert isinstance(first, FlightRecorder)
        assert first.directory == tmp_path / "a"
        assert resolve_flight_recorder() is first
        monkeypatch.setenv(BLACKBOX_ENV, str(tmp_path / "b"))
        second = resolve_flight_recorder()
        assert second is not first
        assert second.directory == tmp_path / "b"

    def test_settings_reject_recorder_without_hooks(self):
        with pytest.raises(SynthesisError, match="flight_recorder must provide"):
            SynthesisSettings(flight_recorder=object())

    def test_recorder_does_not_affect_settings_equality(self):
        assert SynthesisSettings() == SynthesisSettings(flight_recorder=FlightRecorder())


class TestDump:
    def test_anomaly_writes_schema_complete_dump(self, tmp_path):
        recorder = FlightRecorder(tmp_path, capacity=8)
        recorder.bind(settings=SynthesisSettings(max_iterations=5))
        recorder.record("iteration.started", iteration=0)
        path = recorder.anomaly("test_timeout", test="probe", attempts=2)
        assert path == tmp_path / "blackbox.json"
        assert recorder.dumps == 1
        assert recorder.last_path == path
        dump = json.loads(path.read_text())
        assert dump["schema"] == BLACKBOX_SCHEMA
        assert dump["reason"] == "test_timeout"
        assert dump["context"] == {"test": "probe", "attempts": 2}
        assert dump["settings"]["max_iterations"] == 5
        assert "flight_recorder" not in dump["settings"]
        assert dump["events"][-1]["event"] == "anomaly.recorded"
        assert dump["events"][-1]["reason"] == "test_timeout"
        assert dump["payload_digest"]
        # The file itself is the deterministic compact encoding.
        assert path.read_text() == json.dumps(
            dump, sort_keys=True, separators=(",", ":")
        ) + "\n"

    def test_label_names_the_dump_file(self, tmp_path):
        recorder = FlightRecorder(tmp_path, label="seed-12")
        assert recorder.anomaly("campaign_disagreement") == tmp_path / "blackbox-seed-12.json"

    def test_directoryless_anomaly_still_records(self):
        recorder = FlightRecorder()
        assert recorder.anomaly("probe", detail=1) is None
        assert recorder.dumps == 1
        assert recorder.events[-1]["event"] == "anomaly.recorded"
        snapshot = recorder.snapshot("probe")
        assert snapshot["schema"] == BLACKBOX_SCHEMA

    def test_environment_fingerprint_filters_and_sorts(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZETA", "1")
        monkeypatch.setenv("REPRO_ALPHA", "2")
        monkeypatch.setenv("UNRELATED", "3")
        monkeypatch.setenv("PYTHONHASHSEED", "0")
        fingerprint = environment_fingerprint()
        assert "UNRELATED" not in fingerprint
        assert fingerprint["PYTHONHASHSEED"] == "0"
        keys = [key for key in fingerprint if key.startswith("REPRO_")]
        assert keys == sorted(keys)

    def test_settings_fingerprint_skips_plumbing_fields(self):
        fingerprint = settings_fingerprint(
            SynthesisSettings(flight_recorder=FlightRecorder())
        )
        assert "flight_recorder" not in fingerprint
        assert "tracer" not in fingerprint
        assert "progress" not in fingerprint
        assert fingerprint["incremental"] is True
        assert settings_fingerprint(None) is None


class TestLoopIntegration:
    def test_clean_run_records_but_never_dumps(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        result = _synthesizer(SynthesisSettings(flight_recorder=recorder)).run()
        assert result.verdict is Verdict.PROVEN
        assert len(recorder) > 0
        assert recorder.events[-1]["event"] == "verdict.reached"
        assert recorder.dumps == 0
        assert list(tmp_path.iterdir()) == []

    def test_chaos_run_dumps_a_replayable_blackbox(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        result = _synthesizer(_chaos_settings(recorder)).run()
        assert result.verdict is Verdict.BUDGET_EXCEEDED
        assert recorder.dumps > 0
        dump = json.loads((tmp_path / "blackbox.json").read_text())
        assert dump["reason"] == "budget_exceeded"
        assert dump["fault_seed"] == 7
        assert dump["settings"]["max_iterations"] == 8
        assert dump["settings"]["retry_policy"]["max_attempts"] == 1
        # The iteration records in the dump mirror the result's.
        assert len(dump["records"]) == result.iteration_count
        assert [record["index"] for record in dump["records"]] == [
            record.index for record in result.iterations
        ]
        reasons = {
            event["reason"]
            for event in dump["events"]
            if event["event"] == "anomaly.recorded"
        }
        assert "budget_exceeded" in reasons

    def test_env_route_arms_the_loop(self, tmp_path):
        env = dict(os.environ)
        env[BLACKBOX_ENV] = str(tmp_path)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = """
from repro import railcab
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings
from repro.testing import FaultProfile, RetryPolicy

IntegrationSynthesizer(
    railcab.front_role_automaton(),
    railcab.correct_rear_shuttle(convoy_ticks=1),
    railcab.PATTERN_CONSTRAINT,
    labeler=railcab.rear_state_labeler,
    port="rearRole",
    settings=SynthesisSettings(
        max_iterations=4,
        fault_profile=FaultProfile.hostile(3),
        retry_policy=RetryPolicy(max_attempts=1, record_rounds=1),
    ),
).run()
"""
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        dump = json.loads((tmp_path / "blackbox.json").read_text())
        assert dump["reason"] == "budget_exceeded"
        assert dump["fault_seed"] == 3
        assert dump["env"][BLACKBOX_ENV] == str(tmp_path)


_REPRO_SCRIPT = """
import pathlib, sys
from repro import railcab
from repro.obs import FlightRecorder
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings
from repro.testing import FaultProfile, RetryPolicy

IntegrationSynthesizer(
    railcab.front_role_automaton(),
    railcab.correct_rear_shuttle(convoy_ticks=1),
    railcab.PATTERN_CONSTRAINT,
    labeler=railcab.rear_state_labeler,
    port="rearRole",
    settings=SynthesisSettings(
        max_iterations=6,
        fault_profile=FaultProfile.hostile(11),
        retry_policy=RetryPolicy(max_attempts=1, record_rounds=1),
        flight_recorder=FlightRecorder(sys.argv[1]),
    ),
).run()
"""


class TestBitReproducibility:
    """The acceptance property: dumps replay bit-for-bit from the seed."""

    def _dump_under(self, tmp_path, tag: str, hash_seed: str) -> dict:
        directory = tmp_path / tag
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONHASHSEED"] = hash_seed
        env.pop(BLACKBOX_ENV, None)
        subprocess.run(
            [sys.executable, "-c", _REPRO_SCRIPT, str(directory)],
            capture_output=True, text=True, env=env, check=True,
        )
        path = directory / "blackbox.json"
        return {"bytes": path.read_bytes(), "dump": json.loads(path.read_text())}

    def test_same_seed_is_byte_identical_and_hash_seed_only_moves_env(self, tmp_path):
        first = self._dump_under(tmp_path, "run-a", "0")
        again = self._dump_under(tmp_path, "run-b", "0")
        assert first["bytes"] == again["bytes"]

        runs = [first] + [
            self._dump_under(tmp_path, f"hs-{seed}", seed) for seed in ("1", "2")
        ]
        digests = {run["dump"]["payload_digest"] for run in runs}
        assert len(digests) == 1, f"dump varied across hash seeds: {digests}"
        # Belt and braces: the full payloads minus the env block match.
        stripped = [
            {key: value for key, value in run["dump"].items() if key != "env"}
            for run in runs
        ]
        assert stripped[0] == stripped[1] == stripped[2]
        # And the env block is exactly where the hash seed shows up.
        assert {run["dump"]["env"]["PYTHONHASHSEED"] for run in runs} == {"0", "1", "2"}


class TestCommandLine:
    def test_blackbox_flag_writes_dump_and_reports(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["railcab", "--shuttle", "correct", "--max-iterations", "4",
             "--blackbox", str(tmp_path), "--test-retries", "0"]
            + ["--fault-seed", "9"]
        )
        # The mild profile may or may not exhaust the budget; the flag
        # contract is: a dump appears iff an anomaly happened, and the
        # CLI says where it went when one did.
        out = capsys.readouterr().out
        dumped = (tmp_path / "blackbox.json").exists()
        assert ("blackbox dumped to" in out) == dumped
        assert code in (0, 1)

    def test_campaign_dump_blackbox_labels_per_seed(self, tmp_path):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "campaign", REPO_ROOT / "tools" / "campaign.py"
        )
        campaign = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(campaign)

        class Spec:
            seed = 42

        class Scenario:
            spec = Spec()

        class Evaluation:
            disagreements = ("incremental: proven != violation",)
            degraded = ()

        record = {
            "seed": 42,
            "fingerprint": "abc123",
            "slots": 2,
            "joint": 64,
            "plants": ["p1", "p2"],
            "truth": {"scenario": "proven"},
        }
        path = campaign.dump_blackbox(tmp_path, Scenario(), Evaluation(), record)
        assert path == tmp_path / "blackbox-seed-42.json"
        dump = json.loads(path.read_text())
        assert dump["reason"] == "campaign_disagreement"
        assert dump["context"]["fingerprint"] == "abc123"
        assert dump["context"]["disagreements"] == ["incremental: proven != violation"]
        events = {event["event"] for event in dump["events"]}
        assert {"campaign.scenario", "campaign.disagreement", "anomaly.recorded"} <= events
