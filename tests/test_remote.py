"""Out-of-process components: wire protocol, supervision, pool, parity.

Covers :mod:`repro.legacy.remote` at every layer: frame encoding over
raw pipes, the in-process :class:`ComponentHost` dispatch table, the
``hello`` interface round-trip (property-based), the real-subprocess
:class:`RemoteComponent` failure taxonomy — crash → respawn, deadline →
SIGKILL, garbage → protocol violation — host-side seed-reproducible
fault injection, the kill ``-9`` soundness guarantee (a murdered host
never manufactures a verdict), the warm :class:`InstancePool`, and the
acceptance pin: the convoy workload under ``remote=True`` is
bit-identical, record by record, to in-process execution.
"""

import dataclasses
import os
import signal
import threading

import pytest
from hypothesis import HealthCheck, given, settings as hyp_settings, strategies as st

from repro import railcab
from repro.automata import Automaton
from repro.errors import (
    ExecutionError,
    FaultInjectionError,
    RemoteComponentError,
    RemoteCrashError,
    RemoteProtocolError,
    SynthesisError,
    TestTimeoutError,
)
from repro.legacy import Instrumentation, LegacyComponent
from repro.legacy.interface import InterfaceDescription, interface_of
from repro.legacy.remote import (
    MAX_FRAME_BYTES,
    REMOTE_ENV,
    REMOTE_PROTOCOL_VERSION,
    ComponentHost,
    FrameChannel,
    InstancePool,
    RemoteComponent,
    RemotePolicy,
    _DeadlineExpired,
    interface_from_wire,
    interface_to_wire,
    rehost,
    rehost_payload,
    resolve_remote,
)
from repro.obs import PROGRESS_EVENT_NAMES, CallbackProgressSink, MetricsRegistry, Tracer
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.testing import (
    FaultKind,
    FaultProfile,
    FaultyComponent,
    RetryPolicy,
    RobustExecutor,
    TestVerdict,
)
from repro.testing import test_case_from_trace as case_from_trace
from repro.automata import Interaction

SETTINGS = hyp_settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PING = Interaction(["ping"], None)
PONG = Interaction(None, ["pong"])


def server_component() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


def happy_case():
    return case_from_trace([PING, PONG, Interaction()], name="happy")


def outcome_tuple(outcome):
    """StepOutcome has no __eq__; compare the observable fields."""
    return (outcome.period, outcome.inputs, outcome.outputs, outcome.blocked)


class EventLog:
    """Captures ``component.*`` notifications from a RemoteComponent."""

    def __init__(self):
        self.events = []

    def __call__(self, name, /, **payload):
        self.events.append((name, payload))

    def names(self):
        return [name for name, _ in self.events]


# ------------------------------------------------------------ frame channel


def pipe_pair():
    """Two connected FrameChannels over in-process pipes."""
    a_read, a_write = os.pipe()
    b_read, b_write = os.pipe()
    left = FrameChannel(a_read, b_write)
    right = FrameChannel(b_read, a_write)
    fds = (a_read, a_write, b_read, b_write)
    return left, right, fds


def close_fds(fds):
    for fd in fds:
        try:
            os.close(fd)
        except OSError:
            pass


class TestFrameChannel:
    def test_round_trip_preserves_payload(self):
        left, right, fds = pipe_pair()
        try:
            payload = {"op": "step", "inputs": ["brakeOk", "convoyProposal"], "n": 7}
            right.send(payload)
            assert left.receive(1.0) == payload
        finally:
            close_fds(fds)

    def test_back_to_back_frames_are_buffered(self):
        left, right, fds = pipe_pair()
        try:
            for index in range(5):
                right.send({"seq": index})
            assert [left.receive(1.0)["seq"] for _ in range(5)] == list(range(5))
        finally:
            close_fds(fds)

    def test_eof_raises_crash_error(self):
        left, _, fds = pipe_pair()
        try:
            os.close(fds[1])  # the peer's write end: reader sees EOF
            with pytest.raises(RemoteCrashError, match="EOF"):
                left.receive(1.0)
        finally:
            close_fds(fds)

    def test_timeout_raises_the_internal_deadline_marker(self):
        left, _, fds = pipe_pair()
        try:
            with pytest.raises(_DeadlineExpired):
                left.receive(0.05)
        finally:
            close_fds(fds)

    def test_zero_length_prefix_is_a_protocol_violation(self):
        left, _, fds = pipe_pair()
        try:
            os.write(fds[1], b"\x00\x00\x00\x00")
            with pytest.raises(RemoteProtocolError, match="length prefix"):
                left.receive(1.0)
        finally:
            close_fds(fds)

    def test_oversized_length_prefix_never_allocates(self):
        left, _, fds = pipe_pair()
        try:
            os.write(fds[1], (MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(RemoteProtocolError, match="length prefix"):
                left.receive(1.0)
        finally:
            close_fds(fds)

    def test_undecodable_body_is_a_protocol_violation(self):
        left, _, fds = pipe_pair()
        try:
            os.write(fds[1], (4).to_bytes(4, "big") + b"\xff\xfe{{")
            with pytest.raises(RemoteProtocolError, match="undecodable"):
                left.receive(1.0)
        finally:
            close_fds(fds)

    def test_non_object_body_is_a_protocol_violation(self):
        left, _, fds = pipe_pair()
        try:
            body = b"[1,2]"
            os.write(fds[1], len(body).to_bytes(4, "big") + body)
            with pytest.raises(RemoteProtocolError, match="JSON object"):
                left.receive(1.0)
        finally:
            close_fds(fds)

    def test_oversized_send_is_refused_locally(self):
        left, right, fds = pipe_pair()
        try:
            with pytest.raises(RemoteProtocolError, match="exceeds"):
                right.send({"blob": "x" * (MAX_FRAME_BYTES + 1)})
        finally:
            close_fds(fds)

    def test_send_to_dead_peer_is_a_crash(self):
        _, right, fds = pipe_pair()
        os.close(fds[0])  # reader gone
        try:
            with pytest.raises(RemoteCrashError, match="pipe closed"):
                for _ in range(64):  # fill any kernel buffering until EPIPE
                    right.send({"op": "step"})
        finally:
            close_fds(fds)


# ----------------------------------------------------- interface round trip


def _signals(prefix):
    names = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=6)
    return st.sets(names.map(lambda s: prefix + s), min_size=1, max_size=5)


INTERFACES = st.builds(
    InterfaceDescription,
    name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12),
    inputs=_signals("i_"),
    outputs=_signals("o_"),
    initial_state=st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_", min_size=1, max_size=10),
    state_bound=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
)


class TestInterfaceWire:
    @given(interface=INTERFACES)
    @SETTINGS
    def test_round_trip_reconstructs_equal_interface(self, interface):
        assert interface_from_wire(interface_to_wire(interface)) == interface

    def test_component_signature_survives_the_hello_payload(self):
        component = server_component()
        wire = interface_to_wire(interface_of(component))
        assert interface_from_wire(wire) == interface_of(component)

    def test_missing_fields_fail_fast(self):
        with pytest.raises(RemoteProtocolError, match="lacks fields"):
            interface_from_wire({"name": "x", "inputs": []})

    def test_non_object_payload_fails_fast(self):
        with pytest.raises(RemoteProtocolError, match="must be an object"):
            interface_from_wire([1, 2, 3])

    def test_malformed_payload_keeps_the_protocol_error_type(self):
        with pytest.raises(RemoteProtocolError, match="malformed"):
            interface_from_wire(
                {"name": "x", "inputs": ["a"], "outputs": ["a"], "initial_state": "s"}
            )


# ------------------------------------------------------- in-process host


class HostHarness:
    """Drive a ComponentHost over in-process pipes from the test thread."""

    def __init__(self, component=None, *, fault_profile=None, forced_version=None):
        self.host = ComponentHost(
            component, fault_profile=fault_profile, forced_version=forced_version
        )
        host_channel, self.driver, self._fds = pipe_pair()
        self._thread = threading.Thread(
            target=self.host.serve, args=(host_channel,), daemon=True
        )
        self._thread.start()

    def request(self, **payload):
        self.driver.send(payload)
        return self.driver.receive(5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        try:
            self.driver.send({"op": "shutdown"})
            self.driver.receive(1.0)
        except (RemoteComponentError, _DeadlineExpired, OSError):
            pass
        self._thread.join(timeout=2)
        close_fds(self._fds)


class TestComponentHost:
    def test_hello_reports_version_interface_and_counters(self):
        with HostHarness(server_component()) as harness:
            reply = harness.request(op="hello", version=REMOTE_PROTOCOL_VERSION)
            assert reply["ok"] and reply["version"] == REMOTE_PROTOCOL_VERSION
            assert interface_from_wire(reply["interface"]) == interface_of(server_component())
            assert reply["counters"] == [0, 0, 0]
            assert reply["fault_active"] is False

    def test_version_mismatch_is_an_error_reply(self):
        with HostHarness(server_component()) as harness:
            reply = harness.request(op="hello", version=99)
            assert reply == {
                "ok": False,
                "error": "RemoteProtocolError",
                "message": (
                    "protocol version mismatch: driver speaks 99, host speaks "
                    f"{REMOTE_PROTOCOL_VERSION}"
                ),
            }

    def test_forced_version_advertises_the_override(self):
        with HostHarness(server_component(), forced_version=3) as harness:
            reply = harness.request(op="hello", version=3)
            assert reply["ok"] and reply["version"] == 3

    def test_step_reset_observe_mirror_the_counters(self):
        with HostHarness(server_component()) as harness:
            reply = harness.request(op="step", inputs=["ping"])
            assert reply["ok"] and reply["outputs"] == [] and not reply["blocked"]
            assert reply["counters"] == [1, 0, 0]
            reply = harness.request(op="step", inputs=[])
            assert reply["outputs"] == ["pong"]
            harness.request(op="instrument", level="full", live=False)
            reply = harness.request(op="observe", probe=True)
            assert reply["state"] == "ready"
            assert reply["counters"] == [2, 0, 1]
            harness.request(op="uninstrument")
            reply = harness.request(op="reset")
            assert reply["counters"] == [2, 1, 1] and reply["period"] == 0

    def test_unknown_operation_is_a_protocol_error_reply(self):
        with HostHarness(server_component()) as harness:
            reply = harness.request(op="transmogrify")
            assert not reply["ok"] and reply["error"] == "RemoteProtocolError"
            assert "unknown operation" in reply["message"]

    def test_step_before_load_demands_a_load_frame(self):
        with HostHarness() as harness:
            reply = harness.request(op="step", inputs=[])
            assert not reply["ok"] and "load" in reply["message"]

    def test_load_installs_a_component_into_a_generic_host(self):
        with HostHarness() as harness:
            ping = harness.request(op="ping")
            assert ping["ok"] and ping["pong"] and not ping["loaded"]
            reply = harness.request(op="load", **rehost_payload(server_component()))
            assert reply["ok"] and reply["counters"] == [0, 0, 0]
            assert harness.request(op="ping")["loaded"]
            hello = harness.request(op="hello", version=REMOTE_PROTOCOL_VERSION)
            assert hello["interface"]["name"] == "server"

    def test_unbalanced_scopes_are_protocol_errors(self):
        with HostHarness(server_component()) as harness:
            for op in ("uninstrument", "disarm"):
                reply = harness.request(op=op)
                assert not reply["ok"] and reply["error"] == "RemoteProtocolError"

    def test_instrument_and_arm_track_depth(self):
        profile = FaultProfile.mild(3)
        with HostHarness(server_component(), fault_profile=profile) as harness:
            assert harness.request(op="instrument", level="full", live=True)["depth"] == 1
            assert harness.request(op="uninstrument")["depth"] == 0
            armed = harness.request(op="arm")
            assert armed["depth"] == 1 and armed["fault_active"] is True
            assert harness.request(op="disarm")["depth"] == 0


# ------------------------------------------------- subprocess supervision


def remote_policy(**overrides):
    return RemotePolicy(**{"step_deadline": 10.0, "spawn_timeout": 60.0, **overrides})


class TestRemoteComponentParity:
    def test_rehosted_component_matches_in_process_execution(self):
        local = server_component()
        with rehost(server_component(), remote_policy()) as remote:
            assert interface_of(remote) == interface_of(local)
            for inputs in (frozenset({"ping"}), frozenset(), frozenset({"ping"})):
                assert outcome_tuple(remote.step(inputs)) == outcome_tuple(local.step(inputs))
            with remote.instrumented(Instrumentation.FULL, live=False):
                with local.instrumented(Instrumentation.FULL, live=False):
                    assert remote.monitor_state() == local.monitor_state()
            assert (remote.steps_executed, remote.resets, remote.state_probes) == (
                local.steps_executed,
                local.resets,
                local.state_probes,
            )
            remote.reset(), local.reset()
            assert remote.period == local.period == 0
            assert remote.ping()
            assert remote.fault_injection_active is False

    def test_spec_served_factory_component(self):
        with RemoteComponent(
            "repro.railcab:correct_rear_shuttle", policy=remote_policy()
        ) as remote:
            assert remote.name == "rearShuttle"
            local = railcab.correct_rear_shuttle()
            assert interface_of(remote) == interface_of(local)
            assert outcome_tuple(remote.step(frozenset())) == outcome_tuple(
                local.step(frozenset())
            )

    def test_spawn_emits_event_and_span(self):
        tracer = Tracer()
        log = EventLog()
        with rehost(
            server_component(), remote_policy(), tracer=tracer, events=log
        ) as remote:
            remote.step(frozenset({"ping"}))
        assert log.names() == ["component.spawn"]
        assert "component.spawn" in {span.name for span in tracer.spans}


class TestRemoteComponentFailures:
    def test_death_between_operations_surfaces_exactly_once(self):
        log = EventLog()
        with rehost(server_component(), remote_policy(), events=log) as remote:
            remote.step(frozenset({"ping"}))
            os.kill(remote.pid, signal.SIGKILL)
            remote._process.wait(timeout=10)
            with pytest.raises(RemoteCrashError, match="died"):
                remote.step(frozenset())
            # The crash is a FaultInjectionError: the executor's bounded
            # retry path handles it like an injected fault (Lemma 6).
            assert issubclass(RemoteCrashError, FaultInjectionError)
            # The raising respawned a fresh host; the retry just works.
            outcome = remote.step(frozenset({"ping"}))
            assert not outcome.blocked
            assert remote.remote_stats["component_respawns"] == 1
        assert log.names().count("component.respawn") == 1

    def test_mid_request_death_is_reported_then_respawns_quietly(self):
        with rehost(server_component(), remote_policy()) as remote:
            os.kill(remote.pid, signal.SIGKILL)
            remote._process.wait(timeout=10)
            remote._death_reported = False  # simulate death during a request
            with pytest.raises(RemoteCrashError):
                remote.step(frozenset())
            assert remote.alive  # respawned by _ensure_alive
            assert remote.step(frozenset({"ping"})).period == 1

    def test_step_deadline_kills_the_host_for_real(self):
        profile = dataclasses.replace(
            FaultProfile.single(FaultKind.HANG, 1.0, seed=7), hang_seconds=60.0
        )
        log = EventLog()
        with rehost(
            server_component(),
            remote_policy(step_deadline=0.4),
            fault_profile=profile,
            events=log,
        ) as remote:
            assert remote.fault_injection_active
            import time

            with remote.inject_faults():
                start = time.monotonic()
                with pytest.raises(TestTimeoutError, match="deadline"):
                    remote.step(frozenset({"ping"}))
                elapsed = time.monotonic() - start
            # The 60s stall was preempted at the 0.4s deadline: the host
            # process is dead, not merely abandoned on a thread.
            assert elapsed < 10.0
            assert not remote.alive
            assert remote.remote_stats["component_kills"] == 1
            assert "component.kill" in log.names()
            # The next use respawns without a second fault report.
            remote.reset()
            assert remote.alive
            assert remote.remote_stats["component_respawns"] == 1

    def test_protocol_violation_kills_host_and_emits_event(self):
        log = EventLog()
        with rehost(server_component(), remote_policy(), events=log) as remote:
            with pytest.raises(RemoteProtocolError, match="unknown operation"):
                remote._call({"op": "transmogrify"})
            assert not remote.alive
            assert "component.violation" in log.names()
            assert "component.kill" in log.names()
            # Protocol violations are NOT retryable faults.
            assert not issubclass(RemoteProtocolError, FaultInjectionError)
            remote.reset()  # quiet respawn: the violation was surfaced
            assert remote.alive

    def test_version_mismatch_fails_construction_fast(self, monkeypatch):
        from repro.legacy import remote as remote_module

        real_popen = remote_module.subprocess.Popen

        def forced(command, **kwargs):
            return real_popen(command + ["--force-protocol-version", "99"], **kwargs)

        monkeypatch.setattr(remote_module.subprocess, "Popen", forced)
        with pytest.raises(RemoteProtocolError, match="version mismatch"):
            rehost(server_component(), remote_policy())

    def test_interrupt_preempts_from_outside_the_lock(self):
        with rehost(server_component(), remote_policy()) as remote:
            pid = remote.pid
            remote.interrupt("test-deadline")
            assert remote.remote_stats["component_kills"] == 1
            remote._process.wait(timeout=10)
            assert not remote.alive
            remote.reset()  # already reported: respawns quietly
            assert remote.alive and remote.pid != pid

    def test_closed_proxy_refuses_operations(self):
        remote = rehost(server_component(), remote_policy())
        remote.close()
        with pytest.raises(ExecutionError, match="closed"):
            remote.step(frozenset())
        remote.close()  # idempotent


class TestEventAndStatNames:
    def test_component_events_are_in_the_progress_vocabulary(self):
        assert {
            "component.spawn",
            "component.kill",
            "component.respawn",
            "component.violation",
        } <= PROGRESS_EVENT_NAMES

    def test_remote_stats_names_are_pinned(self):
        with rehost(server_component(), remote_policy()) as remote:
            assert set(remote.remote_stats) == {
                "component_spawns",
                "component_kills",
                "component_respawns",
            }

    def test_pool_stats_names_are_pinned(self):
        with InstancePool(server_component(), size=1, policy=remote_policy()) as pool:
            assert set(pool.stats) == {
                "pool_size",
                "pool_spawns",
                "pool_reuses",
                "pool_respawns",
                "pool_kills",
            }


# ------------------------------------------------- host-side chaos (S2)


def outcome_fingerprint(outcome):
    return (
        outcome.verdict,
        outcome.execution.recording.steps if outcome.execution else None,
        outcome.validated,
        outcome.attempts,
        outcome.retries,
        outcome.timeouts,
        outcome.faults,
        outcome.replays_performed,
        outcome.re_records,
    )


CHAOS_SEEDS = (1, 2, 3)


def _chaos_profile(seed):
    # Hot enough to actually fire on a three-step case; hang stays off
    # so the comparison is about schedules, not wall clocks.
    return FaultProfile(
        seed=seed,
        transient_error_rate=0.2,
        crash_reset_rate=0.15,
        dropped_output_rate=0.1,
        spurious_output_rate=0.1,
        replay_flip_rate=0.15,
    )


class TestHostSideChaos:
    def test_fault_schedule_is_bit_reproducible_across_the_wire(self):
        policy = RetryPolicy(max_attempts=8, replay_attempts=4, record_rounds=4)
        for seed in CHAOS_SEEDS:
            profile = _chaos_profile(seed)
            local = FaultyComponent.wrap(server_component(), profile)
            local_outcome = RobustExecutor(policy).execute(local, happy_case(), port="srv")
            with rehost(
                server_component(), remote_policy(), fault_profile=profile
            ) as remote:
                remote_outcome = RobustExecutor(policy).execute(
                    remote, happy_case(), port="srv"
                )
                assert outcome_fingerprint(remote_outcome) == outcome_fingerprint(
                    local_outcome
                ), seed
                # The host-side tallies match the in-process wrapper's.
                assert remote.fault_counts == local.fault_counts, seed

    def test_rehosting_a_faulty_component_moves_the_profile_host_side(self):
        profile = FaultProfile.mild(11)
        wrapped = FaultyComponent.wrap(server_component(), profile)
        payload = rehost_payload(wrapped)
        assert payload["fault"] == profile.as_wire()
        assert payload["name"] == "server"

    def test_env_armed_seed_reaches_the_spec_served_host(self, monkeypatch):
        from repro.testing.faults import FAULT_SEED_ENV

        monkeypatch.setenv(FAULT_SEED_ENV, "5")
        with RemoteComponent(
            "repro.railcab:correct_rear_shuttle", policy=remote_policy()
        ) as remote:
            assert remote.fault_injection_active
            assert remote.fault_counts == {kind.value: 0 for kind in FaultKind}


# --------------------------------------------- loop integration + soundness


def _convoy(settings=None):
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        settings=settings,
        port="rearRole",
    )


def _model_fingerprint(result):
    model = result.final_model
    return (
        frozenset(model.states),
        tuple(sorted(map(repr, model.transitions))),
        tuple(sorted(map(repr, model.refusals))),
    )


class TestLoopIntegration:
    def test_convoy_verdict_is_bit_identical_to_in_process(self):
        baseline = _convoy().run()
        result = _convoy(SynthesisSettings(remote=remote_policy())).run()
        assert result.verdict is baseline.verdict is Verdict.PROVEN
        assert result.iteration_count == baseline.iteration_count
        # The acceptance pin: record by record, not just the verdict.
        for remote_record, local_record in zip(result.iterations, baseline.iterations):
            assert remote_record == local_record
        assert _model_fingerprint(result) == _model_fingerprint(baseline)

    def test_convoy_chaos_matches_in_process_chaos(self):
        profile = FaultProfile.mild(1)
        local = _convoy(SynthesisSettings(fault_profile=profile)).run()
        remote = _convoy(
            SynthesisSettings(fault_profile=profile, remote=remote_policy())
        ).run()
        assert remote.verdict is local.verdict is Verdict.PROVEN
        assert remote.iteration_count == local.iteration_count
        assert _model_fingerprint(remote) == _model_fingerprint(local)
        assert remote.total_inconclusive == local.total_inconclusive == 0

    def test_kill_nine_never_manufactures_a_violation(self):
        # The acceptance chaos leg: SIGKILL the live host mid-run at
        # three different points; the loop must recover through the
        # crash-fault path (respawn + retry) or degrade soundly — a
        # murdered process can never produce REAL_VIOLATION.
        for kill_at in (1, 2, 3):
            state = {}

            def killer(event, _state=state, _kill_at=kill_at):
                if (
                    event.name == "iteration.started"
                    and event.payload.get("iteration") == _kill_at
                    and "done" not in _state
                ):
                    _state["done"] = True
                    pid = _state["synth"].component.pid
                    if pid is not None:
                        os.kill(pid, signal.SIGKILL)

            synthesizer = _convoy(
                SynthesisSettings(
                    remote=remote_policy(),
                    progress=CallbackProgressSink(killer),
                )
            )
            state["synth"] = synthesizer
            result = synthesizer.run()
            assert state.get("done"), kill_at
            assert result.verdict is not Verdict.REAL_VIOLATION, kill_at
            assert synthesizer.component.remote_stats["component_respawns"] >= 1, kill_at
            # The convoy component is correct: recovery converges.
            assert result.verdict is Verdict.PROVEN, kill_at


# ----------------------------------------------------------------- pool


class TestInstancePool:
    def test_prefork_reuse_and_release_cycle(self):
        with InstancePool(server_component(), size=2, policy=remote_policy()) as pool:
            assert pool.warm == 2 and pool.stats["pool_spawns"] == 2
            with pool.lease() as component:
                assert component.ping()
                component.step(frozenset({"ping"}))
                assert pool.warm == 1
            assert pool.warm == 2  # released back, reset
            with pool.lease() as component:
                # Reset on release: the run position is rewound (the
                # cumulative black-box counters keep counting).
                assert component.period == 0 and component.resets == 1
            assert pool.stats["pool_reuses"] == 2
            assert pool.stats["pool_kills"] == 0

    def test_dead_idle_instance_is_replaced(self):
        with InstancePool(server_component(), size=2, policy=remote_policy()) as pool:
            victim = pool._free[-1]  # acquired first (LIFO)
            os.kill(victim.pid, signal.SIGKILL)
            victim._process.wait(timeout=10)
            leased = pool.acquire()
            try:
                assert leased is not victim
                assert leased.ping()
            finally:
                pool.release(leased)
            stats = pool.stats
            assert stats["pool_kills"] == 1 and stats["pool_respawns"] == 1
            assert stats["pool_reuses"] == 1

    def test_exhausted_pool_spawns_and_surplus_release_kills(self):
        with InstancePool(server_component(), size=1, policy=remote_policy()) as pool:
            first = pool.acquire()
            second = pool.acquire()  # beyond the warm set: cold spawn
            assert pool.stats["pool_spawns"] == 2
            pool.release(first)
            pool.release(second)  # free list full: surplus is killed
            assert pool.warm == 1
            assert pool.stats["pool_kills"] == 1
            assert not second.alive

    def test_gauges_publish_to_a_metrics_registry(self):
        registry = MetricsRegistry()
        with InstancePool(server_component(), size=1, policy=remote_policy()) as pool:
            pool.publish_to(registry)
            assert registry.gauge("pool_size").value == 1
            assert registry.gauge("pool_spawns").value == 1
            assert registry.gauge("pool_respawns").value == 0
            assert registry.gauge("pool_kills").value == 0

    def test_closed_pool_refuses_leases(self):
        pool = InstancePool(server_component(), size=1, policy=remote_policy())
        pool.close()
        with pytest.raises(SynthesisError, match="closed"):
            pool.acquire()
        pool.close()  # idempotent

    def test_fault_profile_with_factory_spec_is_refused(self):
        with pytest.raises(SynthesisError, match="fault_profile"):
            InstancePool(
                "repro.railcab:correct_rear_shuttle",
                fault_profile=FaultProfile.mild(1),
            )

    def test_pool_size_must_be_positive(self):
        with pytest.raises(SynthesisError, match="positive"):
            InstancePool(server_component(), size=0)


# ------------------------------------------------------- knobs and refusals


class TestResolveRemote:
    def test_policy_and_booleans(self):
        policy = RemotePolicy(step_deadline=1.0)
        assert resolve_remote(policy) is policy
        assert resolve_remote(True) == RemotePolicy()
        assert resolve_remote(False) is None

    def test_environment_fallback(self, monkeypatch):
        for raw in ("", "0", "false", "no", "off"):
            monkeypatch.setenv(REMOTE_ENV, raw)
            assert resolve_remote(None) is None
        monkeypatch.setenv(REMOTE_ENV, "1")
        assert resolve_remote(None) == RemotePolicy()
        monkeypatch.delenv(REMOTE_ENV)
        assert resolve_remote(None) is None

    def test_garbage_is_refused(self):
        with pytest.raises(SynthesisError, match="remote must be"):
            resolve_remote(42)

    def test_settings_validate_the_remote_knob(self):
        with pytest.raises(SynthesisError, match="remote"):
            SynthesisSettings(remote=42)
        assert SynthesisSettings(remote=True).resolved_remote() == RemotePolicy()
        assert SynthesisSettings().resolved_remote() is None

    def test_policy_validates_its_knobs(self):
        with pytest.raises(SynthesisError, match="step_deadline"):
            RemotePolicy(step_deadline=0)
        with pytest.raises(SynthesisError, match="spawn_timeout"):
            RemotePolicy(spawn_timeout=-1)
        with pytest.raises(SynthesisError, match="pool_size"):
            RemotePolicy(pool_size=0)


class TestRehostRefusals:
    def test_components_without_a_hidden_automaton_are_refused(self):
        class Opaque:
            name = "opaque"

            def step(self, inputs):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(SynthesisError, match="not backed by a hidden automaton"):
            rehost_payload(Opaque())

    def test_non_string_states_are_refused_not_stringified(self):
        hidden = Automaton(
            inputs={"a"},
            outputs=set(),
            transitions=[((0, 0), ("a",), (), (0, 1)), ((0, 1), (), (), (0, 0))],
            initial=[(0, 0)],
            name="tuples",
        )
        with pytest.raises(SynthesisError, match="non-string states"):
            rehost_payload(LegacyComponent(hidden))

    def test_bare_automaton_is_wrapped(self):
        hidden = Automaton(
            inputs={"a"},
            outputs=set(),
            transitions=[("s", ("a",), (), "s")],
            initial=["s"],
            name="tiny",
        )
        payload = rehost_payload(hidden)
        assert payload["name"] == "tiny" and payload["fault"] is None
