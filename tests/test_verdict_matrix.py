"""Verdict-stability matrix: the outcome must not depend on tuning knobs.

The paper's verdicts are semantic facts about the composition; the
loop's configuration (refusal mode, counterexample batching, fast
conflict) only changes *how fast* they are reached.  This matrix runs
every shuttle variant under every configuration and asserts the verdict
is invariant — a cheap but wide safety net against configuration-
dependent unsoundness creeping in.
"""

import pytest

from repro import automotive, railcab
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict

SCENARIOS = {
    "railcab-correct": (
        lambda: railcab.front_role_automaton(),
        lambda: railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        railcab.rear_state_labeler,
        Verdict.PROVEN,
    ),
    "railcab-faulty": (
        lambda: railcab.front_role_automaton(),
        lambda: railcab.faulty_rear_shuttle(),
        railcab.PATTERN_CONSTRAINT,
        railcab.rear_state_labeler,
        Verdict.REAL_VIOLATION,
    ),
    "railcab-overbuilt": (
        lambda: railcab.front_role_automaton(),
        lambda: railcab.overbuilt_rear_shuttle(extra_states=5),
        railcab.PATTERN_CONSTRAINT,
        railcab.rear_state_labeler,
        Verdict.PROVEN,
    ),
    "railcab-shy": (
        lambda: railcab.front_role_automaton(),
        lambda: railcab.correct_rear_shuttle(breaks_convoy=False),
        railcab.PATTERN_CONSTRAINT,
        railcab.rear_state_labeler,
        Verdict.PROVEN,
    ),
    "acc-supplier-a": (
        lambda: automotive.coordinator_automaton(),
        lambda: automotive.supplier_a_acc(),
        automotive.BRAKE_CONSTRAINT,
        automotive.acc_state_labeler,
        Verdict.PROVEN,
    ),
    "acc-supplier-b": (
        lambda: automotive.coordinator_automaton(),
        lambda: automotive.supplier_b_acc(),
        automotive.BRAKE_CONSTRAINT,
        automotive.acc_state_labeler,
        Verdict.REAL_VIOLATION,
    ),
}

CONFIGURATIONS = {
    "default": {},
    "conservative": {"refusal_mode": "conservative"},
    "batched-3": {"counterexamples_per_iteration": 3},
    "no-fast-conflict": {"fast_conflict": False},
    "conservative-batched": {
        "refusal_mode": "conservative",
        "counterexamples_per_iteration": 2,
    },
}

#: CONFIGURATIONS keys that are SynthesisSettings fields rather than
#: direct synthesizer keywords.
_SETTINGS_KEYS = frozenset(SynthesisSettings.__dataclass_fields__)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("configuration", sorted(CONFIGURATIONS))
def test_verdict_invariant_under_configuration(scenario, configuration):
    context_factory, component_factory, constraint, labeler, expected = SCENARIOS[scenario]
    options = CONFIGURATIONS[configuration]
    settings = SynthesisSettings(
        max_iterations=800,
        **{k: v for k, v in options.items() if k in _SETTINGS_KEYS},
    )
    result = IntegrationSynthesizer(
        context_factory(),
        component_factory(),
        constraint,
        labeler=labeler,
        settings=settings,
        **{k: v for k, v in options.items() if k not in _SETTINGS_KEYS},
    ).run()
    assert result.verdict is expected, (
        f"{scenario} under {configuration}: expected {expected}, got {result.verdict} "
        f"after {result.iteration_count} iterations"
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_violation_witnesses_are_executable(scenario):
    context_factory, component_factory, constraint, labeler, expected = SCENARIOS[scenario]
    if expected is not Verdict.REAL_VIOLATION:
        pytest.skip("only violation scenarios carry witnesses")
    result = IntegrationSynthesizer(
        context_factory(), component_factory(), constraint, labeler=labeler
    ).run()
    witness = result.violation_witness
    assert witness is not None
    component = component_factory()
    component.reset()
    for interaction, _ in witness.steps:
        outcome = component.step(interaction.inputs & component.inputs)
        assert not outcome.blocked
        assert outcome.outputs == interaction.outputs & component.outputs
