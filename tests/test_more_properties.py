"""Second wave of property-based tests: persistence, minimization,
hiding, FIFO ordering, and suite soundness on random models."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    Automaton,
    Interaction,
    InteractionUniverse,
    Transition,
    compose,
    enumerate_traces,
    hide,
    minimize,
    reachable_states,
)
from repro.legacy import LegacyComponent
from repro.muml import delivered, fifo_channel
from repro.persistence import (
    automaton_from_dict,
    automaton_to_dict,
    incomplete_from_dict,
    incomplete_to_dict,
)
from repro.testing import generate_suite, run_suite

SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def string_automata(draw, max_states: int = 4, deterministic: bool = False) -> Automaton:
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"s{i}" for i in range(n_states)]
    input_sets = [frozenset(), frozenset({"a"})]
    output_sets = [frozenset(), frozenset({"b"})]
    transitions: list[Transition] = []
    used: set[tuple[str, frozenset]] = set()
    for state in states:
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            inputs = draw(st.sampled_from(input_sets))
            if deterministic and (state, inputs) in used:
                continue
            used.add((state, inputs))
            transitions.append(
                Transition(
                    state,
                    Interaction(inputs, draw(st.sampled_from(output_sets))),
                    states[draw(st.integers(min_value=0, max_value=n_states - 1))],
                )
            )
    labels = {
        state: frozenset(draw(st.sets(st.sampled_from(["p", "q"]), max_size=2)))
        for state in states
    }
    return Automaton(
        states=states,
        inputs={"a"},
        outputs={"b"},
        transitions=transitions,
        initial=[states[0]],
        labels=labels,
        name="rand",
    )


class TestPersistenceProperties:
    @SETTINGS
    @given(string_automata())
    def test_automaton_round_trip(self, automaton):
        assert automaton_from_dict(automaton_to_dict(automaton)) == automaton

    @SETTINGS
    @given(string_automata(deterministic=True), st.data())
    def test_incomplete_round_trip(self, automaton, data):
        from repro.automata import IncompleteAutomaton

        # Turn some non-transitions into refusals.
        refusals = []
        for state in sorted(automaton.states):
            for interaction in (Interaction(), Interaction(["a"], None)):
                enabled = {t.interaction for t in automaton.transitions_from(state)}
                if interaction not in enabled and data.draw(st.booleans()):
                    refusals.append((state, interaction))
        model = IncompleteAutomaton(
            states=automaton.states,
            inputs=automaton.inputs,
            outputs=automaton.outputs,
            transitions=automaton.transitions,
            refusals=refusals,
            initial=automaton.initial,
            labels=automaton.label_map,
            name="rand",
        )
        assert incomplete_from_dict(incomplete_to_dict(model)) == model

    @SETTINGS
    @given(string_automata())
    def test_document_is_stable(self, automaton):
        import json

        first = json.dumps(automaton_to_dict(automaton), sort_keys=True)
        second = json.dumps(automaton_to_dict(automaton), sort_keys=True)
        assert first == second


class TestMinimizeProperties:
    @SETTINGS
    @given(string_automata(deterministic=True))
    def test_minimize_preserves_traces(self, automaton):
        # Strong determinism implies Definition-1 determinism when each
        # (state, inputs) has one reaction; our generator guarantees it.
        minimized = minimize(automaton)
        assert enumerate_traces(minimized, 4) == enumerate_traces(automaton, 4)

    @SETTINGS
    @given(string_automata(deterministic=True))
    def test_minimize_never_grows(self, automaton):
        assert len(minimize(automaton).states) <= len(automaton.states)

    @SETTINGS
    @given(string_automata(deterministic=True))
    def test_minimize_is_idempotent(self, automaton):
        once = minimize(automaton)
        twice = minimize(once)
        assert len(once.states) == len(twice.states)


class TestHideProperties:
    @SETTINGS
    @given(string_automata())
    def test_hide_nothing_is_identity_up_to_name(self, automaton):
        hidden = hide(automaton, [])
        assert hidden.states == automaton.states
        assert hidden.transitions == automaton.transitions

    @SETTINGS
    @given(string_automata())
    def test_hide_all_signals_leaves_taus(self, automaton):
        hidden = hide(automaton, {"a", "b"})
        assert hidden.inputs == frozenset() and hidden.outputs == frozenset()
        assert all(t.interaction.is_idle for t in hidden.transitions)
        # Structure untouched:
        assert len(hidden.states) == len(automaton.states)

    @SETTINGS
    @given(string_automata())
    def test_hide_preserves_reachability(self, automaton):
        hidden = hide(automaton, {"b"})
        assert reachable_states(hidden) == reachable_states(automaton)


class TestFifoProperties:
    @SETTINGS
    @given(st.lists(st.sampled_from(["x", "y"]), min_size=0, max_size=4))
    def test_fifo_order_preserved_for_any_feed(self, feed):
        channel = fifo_channel(["x", "y"], capacity=4)
        state = "[]"

        def step(current, interaction):
            for transition in channel.transitions_from(current):
                if transition.interaction == interaction:
                    return transition.target
            return None

        for message in feed:
            state = step(state, Interaction([message], None))
            assert state is not None
        drained = []
        while True:
            moved = False
            for message in ("x", "y"):
                target = step(state, Interaction(None, [delivered(message)]))
                if target is not None:
                    drained.append(message)
                    state = target
                    moved = True
                    break
            if not moved:
                break
        assert drained == feed

    @SETTINGS
    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=2))
    def test_fifo_state_count_formula(self, capacity, n_messages):
        messages = [f"m{i}" for i in range(n_messages)]
        channel = fifo_channel(messages, capacity=capacity)
        expected = sum(n_messages ** k for k in range(capacity + 1))
        assert len(channel.states) == expected


class TestSuiteSoundnessProperty:
    @SETTINGS
    @given(string_automata(deterministic=True))
    def test_component_always_passes_its_own_suite(self, automaton):
        component = LegacyComponent(automaton.replace(name="self"), name="self")
        suite = generate_suite(automaton)
        report = run_suite(component, suite)
        assert report.ok, report.summary()

    @SETTINGS
    @given(string_automata(deterministic=True), string_automata(deterministic=True))
    def test_suite_failure_implies_behavioral_difference(self, model, other):
        component = LegacyComponent(other.replace(name="other"), name="other")
        suite = generate_suite(model)
        report = run_suite(component, suite)
        if not report.ok:
            # Some test diverged, so some trace of the model is not a
            # trace of the other machine.
            assert enumerate_traces(model, 6) - enumerate_traces(other, 6)
