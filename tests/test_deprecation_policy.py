"""The deprecation story is enforced, not aspirational.

Three guarantees, each pinned here:

1. every shim warning names the removal version (``repro 2.0``), so a
   consumer reading the warning knows exactly when the surface dies;
2. the tier-1 suite runs with the shim warnings escalated to errors
   (``filterwarnings`` in ``pyproject.toml``), so **no tier-1 test can
   trigger a shim** without failing — the suite itself is the proof
   that nothing in-repo depends on deprecated surface;
3. ``docs/api.md`` carries the generated "Deprecated surface" table, so
   the documented inventory cannot drift from the generator's.

Tests that deliberately *exercise* the shims (here and in
``tests/test_settings.py``) catch the warnings with ``pytest.warns``,
which resets the filter state — they stay green under guarantee 2.
"""

from __future__ import annotations

import pathlib
import warnings

import pytest

from repro import IntegrationSynthesizer, railcab
from repro.synthesis import IterationRecord

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The one message shape every shim shares; the pyproject filter and the
#: warning sites must agree on it verbatim.
REMOVAL_PHRASE = "deprecated and will be removed in repro 2.0"


def _synthesizer(**kwargs):
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        **kwargs,
    )


def test_legacy_keyword_shim_names_removal_version():
    with pytest.warns(DeprecationWarning, match=REMOVAL_PHRASE):
        _synthesizer(max_iterations=7)


def _record() -> IterationRecord:
    return IterationRecord(
        0, 1, 0, 0, 1, 0, 1, True, True, None, None, False, None, 0, 0, None, 0
    )


def test_renamed_counter_shim_names_removal_version():
    record = _record()
    with pytest.warns(DeprecationWarning, match=REMOVAL_PHRASE):
        assert record.shard_handoffs == record.product_shard_handoffs


def test_tier1_suite_escalates_shim_warnings_to_errors():
    """``pyproject.toml`` turns the shim warnings into errors for pytest.

    This is the no-shim guarantee: any tier-1 test that reaches a shim
    *without* catching the warning fails with the DeprecationWarning as
    the error.  We assert both the configuration and the behavior it
    produces under an equivalent filter.
    """
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "filterwarnings" in pyproject
    assert "error:.*deprecated and will be removed in repro 2" in pyproject
    assert ":DeprecationWarning" in pyproject

    record = _record()
    with warnings.catch_warnings():
        warnings.filterwarnings(
            "error", message=f".*{REMOVAL_PHRASE}", category=DeprecationWarning
        )
        with pytest.raises(DeprecationWarning):
            record.shard_merge_conflicts


def test_api_docs_list_the_deprecated_surface():
    api_md = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
    assert "## Deprecated surface" in api_md
    assert "repro 2.0" in api_md
    assert "settings=SynthesisSettings(...)" in api_md
    assert "shard_states_explored" in api_md
