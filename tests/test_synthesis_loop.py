"""Integration tests for the full verify → test → learn loop (§4)."""

import pytest

from repro import railcab
from repro.automata import Automaton, is_chaos_state
from repro.errors import NotCompositionalError, SynthesisError
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.synthesis import (
    IntegrationSynthesizer,
    SynthesisSettings,
    Verdict,
    render_counterexample_listing,
    render_iteration_table,
    summarize,
)
from repro.testing import TestVerdict


def client() -> Automaton:
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )


def good_server() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


def halting_server() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "dead"),
            # "dead" reacts to nothing: the component halts after one job.
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


RESPONSE = parse("AG (client.waiting -> AF[1,3] client.idle)")


class TestProvenIntegration:
    def test_good_server_is_proven(self):
        result = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert result.proven
        assert result.violation_witness is None
        final = result.iterations[-1]
        assert final.property_holds and final.deadlock_free

    def test_correct_shuttle_is_proven(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.verdict is Verdict.PROVEN

    def test_proof_without_learning_whole_component(self):
        component = railcab.overbuilt_rear_shuttle(extra_states=10)
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.verdict is Verdict.PROVEN
        # Claim C2: far fewer states learned than the component has.
        assert result.learned_states < component.state_bound

    def test_knowledge_grows_monotonically(self):
        result = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        sizes = [
            record.model_transitions + record.model_refusals for record in result.iterations
        ]
        assert sizes == sorted(sizes)

    def test_final_model_is_observation_conforming(self):
        result = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        hidden = good_server()._hidden
        for transition in result.final_model.transitions:
            assert transition in hidden.transitions


class TestRealViolations:
    def test_faulty_shuttle_fast_conflict_in_two_iterations(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "property"
        assert result.iteration_count == 2
        assert result.iterations[-1].fast_conflict

    def test_fast_conflict_witness_stays_in_learned_part(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        witness = result.violation_witness
        assert witness is not None
        assert not any(is_chaos_state(state[1]) for state in witness.states)

    def test_fast_conflict_needs_no_test_in_final_iteration(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.iterations[-1].tests_executed == 0

    def test_fast_conflict_disabled_still_finds_violation(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            fast_conflict=False,
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        # Without the shortcut the final counterexample is confirmed by a test.
        assert result.iterations[-1].test_verdict is TestVerdict.CONFIRMED

    def test_halting_server_yields_real_deadlock(self):
        result = IntegrationSynthesizer(
            client(), halting_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "deadlock"
        witness = result.violation_witness
        assert witness is not None

    def test_no_false_negatives_claim_c1(self):
        # Every REAL_VIOLATION verdict for a property violation comes with
        # a witness whose legacy projection the real component executes.
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        witness = result.violation_witness
        component = railcab.faulty_rear_shuttle()
        component.reset()
        for interaction, _ in witness.steps:
            outcome = component.step(interaction.inputs & component.inputs)
            assert not outcome.blocked
            assert outcome.outputs == interaction.outputs & component.outputs


class TestConfigurationVariants:
    def test_conservative_refusal_mode_also_converges(self):
        result = IntegrationSynthesizer(
            client(),
            good_server(),
            RESPONSE,
            labeler=lambda s: {f"srv.{s}"},
            refusal_mode="conservative",
        ).run()
        assert result.verdict is Verdict.PROVEN

    def test_conservative_mode_needs_more_iterations(self):
        deterministic = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        conservative = IntegrationSynthesizer(
            client(),
            good_server(),
            RESPONSE,
            labeler=lambda s: {f"srv.{s}"},
            refusal_mode="conservative",
        ).run()
        assert conservative.iteration_count >= deterministic.iteration_count

    def test_budget_exceeded(self):
        result = IntegrationSynthesizer(
            client(),
            good_server(),
            RESPONSE,
            labeler=lambda s: {f"srv.{s}"},
            settings=SynthesisSettings(max_iterations=1),
        ).run()
        assert result.verdict is Verdict.BUDGET_EXCEEDED

    def test_without_labeler_deadlock_checking_still_works(self):
        result = IntegrationSynthesizer(client(), good_server(), parse("AG not deadlock")).run()
        assert result.verdict is Verdict.PROVEN

    def test_non_compositional_property_rejected(self):
        with pytest.raises(NotCompositionalError):
            IntegrationSynthesizer(client(), good_server(), parse("EF client.idle"))

    def test_overlapping_signals_rejected(self):
        bad_context = Automaton(inputs={"ping"}, outputs=(), initial=["s"])
        with pytest.raises(SynthesisError, match="not composable"):
            IntegrationSynthesizer(bad_context, good_server(), parse("AG true"))

    def test_custom_counterexample_strategy_invoked(self):
        calls = []

        def strategy(composed, formula, checker):
            from repro.logic import counterexample

            calls.append(formula)
            return counterexample(composed, formula, checker=checker)

        result = IntegrationSynthesizer(
            client(),
            good_server(),
            RESPONSE,
            labeler=lambda s: {f"srv.{s}"},
            counterexample_strategy=strategy,
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert calls


class TestReporting:
    def test_summary_mentions_verdict(self):
        result = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        text = summarize(result)
        assert "proven" in text
        assert "iterations" in text

    def test_iteration_table_has_row_per_iteration(self):
        result = IntegrationSynthesizer(
            client(), good_server(), RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        table = render_iteration_table(result)
        assert len(table.splitlines()) == result.iteration_count + 2

    def test_listing_rendering(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        listing = render_counterexample_listing(
            result.violation_witness,
            legacy_inputs=railcab.FRONT_TO_REAR,
            legacy_outputs=railcab.REAR_TO_FRONT,
        )
        assert "shuttle2.convoyProposal!, shuttle1.convoyProposal?" in listing
        assert "shuttle2.convoy" in listing


class TestBlackBoxDiscipline:
    def test_loop_only_probes_states_during_replay(self):
        component = good_server()
        result = IntegrationSynthesizer(
            client(), component, RESPONSE, labeler=lambda s: {f"srv.{s}"}
        ).run()
        assert result.verdict is Verdict.PROVEN
        # Every state probe happened during (offline) replay: the probe
        # effect never became active on the live component.
        assert not component.probe_effect_active
        assert component.state_probes > 0
        assert component.resets >= result.total_tests
