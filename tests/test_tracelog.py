"""Tests for parsing monitored listings back into events and runs."""

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import Interaction, Run
from repro.errors import ModelError
from repro.testing import (
    MessageEvent,
    StateEvent,
    TimingEvent,
    events_for_run,
    parse_events,
    render_events,
    run_from_events,
)

LISTING_1_3 = """
[CurrentState] name="noConvoy"
[Message] name="convoyProposal", portName="rearRole", type="outgoing"
[Timing] count=1
[CurrentState] name="convoy"
[Message] name="convoyProposalRejected", portName="rearRole", type="incoming"
"""


class TestParseEvents:
    def test_parses_the_papers_listing_1_3(self):
        events = parse_events(LISTING_1_3)
        kinds = [type(event).__name__ for event in events]
        assert kinds == [
            "StateEvent",
            "MessageEvent",
            "TimingEvent",
            "StateEvent",
            "MessageEvent",
        ]
        message = events[1]
        assert message.name == "convoyProposal"
        assert message.port == "rearRole"
        assert message.direction == "outgoing"
        assert message.period == 1  # taken from the following Timing record

    def test_blank_lines_ignored(self):
        events = parse_events("\n\n[Timing] count=3\n\n")
        assert events == [TimingEvent(3)]

    def test_garbage_line_rejected(self):
        with pytest.raises(ModelError, match="not a monitor event"):
            parse_events("[Message] name=oops")

    def test_round_trip_through_renderer(self):
        events = [
            StateEvent("s0", 0),
            MessageEvent("m", "p", "outgoing", 1),
            TimingEvent(1),
            StateEvent("s1", 1),
        ]
        assert parse_events(render_events(events)) == events


class TestPeriodInference:
    """Edge cases of inferring message periods from ``[Timing]`` records."""

    def test_timing_before_first_message_advances_the_period(self):
        # A leading Timing record establishes the current count; a
        # message after it belongs to the *next* period until a later
        # Timing record confirms it.
        events = parse_events(
            '[Timing] count=2\n[Message] name="m", portName="p", type="outgoing"'
        )
        assert events == [TimingEvent(2), MessageEvent("m", "p", "outgoing", 3)]

    def test_trailing_timing_retro_patches_pending_messages(self):
        # The count *after* a message is its period (§ the docstring):
        # both pending messages are rewritten to the trailing count, even
        # when it jumps past the provisional period+1 guess.
        events = parse_events(
            '[Message] name="a", portName="p", type="outgoing"\n'
            '[Message] name="b", portName="p", type="incoming"\n'
            "[Timing] count=5"
        )
        assert events == [
            MessageEvent("a", "p", "outgoing", 5),
            MessageEvent("b", "p", "incoming", 5),
            TimingEvent(5),
        ]

    def test_message_without_any_timing_defaults_to_first_period(self):
        events = parse_events('[Message] name="m", portName="p", type="outgoing"')
        assert events == [MessageEvent("m", "p", "outgoing", 1)]

    def test_messages_straddling_a_timing_record(self):
        # One message confirmed by the Timing record, one trailing after
        # it: the trailing message is provisional (count + 1), matching
        # a blocked tail in the events_for_run shape.
        events = parse_events(
            '[CurrentState] name="s0"\n'
            '[Message] name="a", portName="p", type="outgoing"\n'
            "[Timing] count=1\n"
            '[CurrentState] name="s1"\n'
            '[Message] name="b", portName="p", type="incoming"'
        )
        assert events == [
            StateEvent("s0", 0),
            MessageEvent("a", "p", "outgoing", 1),
            TimingEvent(1),
            StateEvent("s1", 1),
            MessageEvent("b", "p", "incoming", 2),
        ]

    def test_round_trip_with_leading_and_trailing_timing(self):
        # A listing exercising both edge cases at once survives the
        # render → parse round trip unchanged.
        events = [
            TimingEvent(0),
            StateEvent("s0", 0),
            MessageEvent("m", "p", "outgoing", 1),
            MessageEvent("n", "p", "incoming", 1),
            TimingEvent(1),
            StateEvent("s1", 1),
            MessageEvent("tail", "p", "incoming", 2),
            TimingEvent(2),
        ]
        assert parse_events(render_events(events)) == events


class TestRunFromEvents:
    def test_reconstructs_simple_run(self):
        run = Run("s0").extend(Interaction(["in1"], ["out1"]), "s1")
        events = events_for_run(run, port="p")
        assert run_from_events(events) == run

    def test_reconstructs_blocked_run(self):
        run = Run("s0").block(Interaction(["in1"], None))
        events = events_for_run(run, port="p")
        assert run_from_events(events) == run

    def test_idle_steps_preserved(self):
        run = Run("s0").extend(Interaction(), "s0").extend(Interaction(None, ["m"]), "s1")
        events = events_for_run(run, port="p")
        assert run_from_events(events) == run

    def test_requires_state_observations(self):
        with pytest.raises(ModelError, match="without state observations"):
            run_from_events([MessageEvent("m", "p", "incoming", 1)])

    def test_parsed_listing_feeds_the_learner(self):
        from repro.legacy import InterfaceDescription
        from repro.synthesis import initial_model, learn_regular

        text = """
[CurrentState] name="noConvoy"
[Message] name="convoyProposal", portName="rearRole", type="outgoing"
[Timing] count=1
[CurrentState] name="convoy"
"""
        observed = run_from_events(parse_events(text))
        interface = InterfaceDescription(
            name="shuttle",
            inputs=frozenset({"convoyProposalRejected"}),
            outputs=frozenset({"convoyProposal"}),
            initial_state="noConvoy",
        )
        model = learn_regular(initial_model(interface), observed)
        assert len(model.transitions) == 1


SETTINGS = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def runs(draw) -> Run:
    signals_in = ["a", "b"]
    signals_out = ["x", "y"]
    run = Run(f"s{draw(st.integers(min_value=0, max_value=3))}")
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        inputs = draw(st.sets(st.sampled_from(signals_in), max_size=2))
        outputs = draw(st.sets(st.sampled_from(signals_out), max_size=2))
        run = run.extend(
            Interaction(inputs, outputs), f"s{draw(st.integers(min_value=0, max_value=3))}"
        )
    if draw(st.booleans()):
        inputs = draw(st.sets(st.sampled_from(signals_in), min_size=1, max_size=2))
        run = run.block(Interaction(inputs, None))
    return run


class TestRoundTripProperty:
    @SETTINGS
    @given(runs())
    def test_events_round_trip(self, run):
        events = events_for_run(run, port="p")
        assert run_from_events(parse_events(render_events(events))) == run
