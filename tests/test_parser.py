"""Unit tests for the formula parser."""

import pytest

from repro.errors import ParseError
from repro.logic import (
    AF,
    AG,
    AU,
    AX,
    And,
    DEADLOCK,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TRUE,
    parse,
)

P, Q, R = Prop("p"), Prop("q"), Prop("r")


class TestAtoms:
    def test_constants(self):
        assert parse("true") == TRUE
        assert parse("false") == FALSE
        assert parse("deadlock") == DEADLOCK

    def test_plain_proposition(self):
        assert parse("p") == P

    def test_dotted_proposition(self):
        assert parse("rearRole.convoy") == Prop("rearRole.convoy")

    def test_nested_dotted_proposition(self):
        assert parse("a.b.c") == Prop("a.b.c")

    def test_parentheses(self):
        assert parse("(p)") == P


class TestBooleans:
    def test_not(self):
        assert parse("not p") == Not(P)
        assert parse("!p") == Not(P)

    def test_and_or(self):
        assert parse("p and q") == And(P, Q)
        assert parse("p && q") == And(P, Q)
        assert parse("p or q") == Or(P, Q)
        assert parse("p || q") == Or(P, Q)

    def test_implies_right_associative(self):
        assert parse("p -> q -> r") == Implies(P, Implies(Q, R))

    def test_precedence_and_over_or(self):
        assert parse("p or q and r") == Or(P, And(Q, R))

    def test_precedence_not_tightest(self):
        assert parse("not p and q") == And(Not(P), Q)

    def test_precedence_or_over_implies(self):
        assert parse("p or q -> r") == Implies(Or(P, Q), R)


class TestTemporal:
    def test_unary_operators(self):
        assert parse("AG p") == AG(P)
        assert parse("AF p") == AF(P)
        assert parse("EG p") == EG(P)
        assert parse("EF p") == EF(P)
        assert parse("AX p") == AX(P)
        assert parse("EX p") == EX(P)

    def test_bounded_operators(self):
        assert parse("AF[1,5] p") == AF(P, Interval(1, 5))
        assert parse("AG[0,3] p") == AG(P, Interval(0, 3))

    def test_uppaal_style(self):
        assert parse("A[] p") == AG(P)
        assert parse("E<> p") == EF(P)
        assert parse("A[] not (p and q)") == AG(Not(And(P, Q)))

    def test_until(self):
        assert parse("A[p U q]") == AU(P, Q)
        assert parse("E[p U q]") == EU(P, Q)

    def test_bounded_until(self):
        assert parse("A[p U[1,4] q]") == AU(P, Q, Interval(1, 4))

    def test_nested_temporal(self):
        assert parse("AG (p -> AF[1,2] q)") == AG(Implies(P, AF(Q, Interval(1, 2))))

    def test_temporal_binds_tighter_than_and(self):
        assert parse("AG p and q") == And(AG(P), Q)


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse("")
        with pytest.raises(ParseError):
            parse("   ")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("p q")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse("(p and q")

    def test_bad_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse("p # q")

    def test_box_requires_a(self):
        with pytest.raises(ParseError, match="requires the A"):
            parse("E[] p")

    def test_diamond_requires_e(self):
        with pytest.raises(ParseError, match="requires the E"):
            parse("A<> p")

    def test_missing_until_operand(self):
        with pytest.raises(ParseError):
            parse("A[p U ]")

    def test_interval_needs_numbers(self):
        with pytest.raises(ParseError):
            parse("AF[x,2] p")

    def test_quantifier_alone(self):
        with pytest.raises(ParseError, match="expected"):
            parse("A p")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "AG (not (rearRole.convoy and frontRole.noConvoy))",
            "AG (p -> AF[1,5] q)",
            "AG (not deadlock)",
            "A[p U q]",
            "(EF (p or (q and (not r))))",
        ],
    )
    def test_str_reparses_to_same_formula(self, text):
        formula = parse(text)
        assert parse(str(formula)) == formula
