"""Differential conformance harness for the sharded checker fixpoints.

The sharded reachability/invariant solvers of
:class:`~repro.logic.checker.ModelChecker` (``parallelism=K``) claim to
be *bit-identical* to the sequential worklist fixpoints for every shard
count, execution strategy, and warm-start history — not just the same
verdicts but the same satisfaction sets and the same total amount of
fixpoint work (``checker_fixpoint_work`` counts admissions/removals,
which the round-based handoff protocol performs exactly once per state
per event regardless of K).  Hypothesis drives random learning
evolutions through the closure → product pipeline and checks exactly
that, with the sequential implementation as the specification.

A ``PYTHONHASHSEED`` fingerprint test (three seeds, fresh interpreters)
pins down the remaining scheduling-order risk: sat-sets and per-shard
counters must not depend on ``set``/``dict`` iteration order.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    CHECKER_PARALLELISM_ENV,
    compose,
    resolve_checker_parallelism,
)
from repro.automata.incremental import ClosureCache, IncrementalProduct, IncrementalVerifier
from repro.errors import CompositionError
from repro.logic import DEADLOCK_FREE, ModelChecker, parse
from tests.test_incremental import FORMULAS, UNIVERSE, _client, model_evolutions

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SHARD_COUNTS = (1, 2, 4, 8)

#: FORMULAS (test_incremental) plus bounded operators, so every solver
#: family — exists/forall reachability, both invariants, and the
#: bounded-DP layers that stay sequential under sharding — is exercised.
CHECK_FORMULAS = FORMULAS + (
    parse("AF[0,3] (q or chaos)"),
    parse("EF[1,2] (p or chaos)"),
    parse("AG[0,2] (p or chaos or q)"),
    parse("A[(p or chaos) U (q or chaos)]"),
    parse("E[(p or chaos) U (q or chaos)]"),
)


def _products(models):
    """The composed products the synthesis loop would check, oldest first."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict")
    out = []
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        out.append((step.automaton, step.dirty_states))
    return out


def _assert_conformant(reference: ModelChecker, candidate: ModelChecker, shards: int):
    """Bit-identical sat-sets/verdicts plus counter conservation."""
    for formula in CHECK_FORMULAS:
        assert candidate.sat(formula) == reference.sat(formula), formula
        assert candidate.check(formula).holds == reference.check(formula).holds
    # Work conservation: the sharded fixpoint admits/removes exactly the
    # states the sequential one does — once each — so totals are pinned.
    assert candidate.stats.fixpoint_work == reference.stats.fixpoint_work
    breakdown = candidate.stats.shard_fixpoint_work
    assert len(breakdown) == shards
    assert sum(breakdown) == candidate.stats.fixpoint_work
    assert candidate.stats.shards == shards


# ------------------------------------------------------------------ primitives


def test_resolve_checker_parallelism_validates():
    assert resolve_checker_parallelism(3) == 3
    for bad in (0, -2, True):
        with pytest.raises(CompositionError):
            resolve_checker_parallelism(bad)


def test_resolve_checker_parallelism_env_and_fallback(monkeypatch):
    monkeypatch.delenv(CHECKER_PARALLELISM_ENV, raising=False)
    assert resolve_checker_parallelism(None) == 1
    # Unset env defers to the product-parallelism fallback...
    assert resolve_checker_parallelism(None, fallback=4) == 4
    # ...but the env knob wins over the fallback when present.
    monkeypatch.setenv(CHECKER_PARALLELISM_ENV, "2")
    assert resolve_checker_parallelism(None, fallback=4) == 2
    # An explicit value beats both.
    assert resolve_checker_parallelism(8, fallback=4) == 8
    monkeypatch.setenv(CHECKER_PARALLELISM_ENV, "zero")
    with pytest.raises(CompositionError):
        resolve_checker_parallelism(None)


# ------------------------------------------------- differential: cold checkers


@SETTINGS
@given(model_evolutions())
def test_sharded_checker_equals_sequential(models):
    """K ∈ {1,2,4,8} sat-sets, verdicts, and work totals ≡ sequential."""
    for composed, _ in _products(models):
        reference = ModelChecker(composed, parallelism=1)
        for formula in CHECK_FORMULAS:
            reference.sat(formula)
            reference.check(formula)
        for shards in SHARD_COUNTS:
            _assert_conformant(reference, ModelChecker(composed, parallelism=shards), shards)


@SETTINGS
@given(model_evolutions(max_steps=3), st.sampled_from(["sequential", "thread", "process"]))
def test_forced_strategy_equals_sequential(models, strategy):
    """Every execution strategy (process clamps to thread) is identical."""
    for composed, _ in _products(models):
        reference = ModelChecker(composed, parallelism=1)
        for formula in CHECK_FORMULAS:
            reference.sat(formula)
        _assert_conformant(
            reference, ModelChecker(composed, parallelism=4, strategy=strategy), 4
        )


# ------------------------------------------------- differential: warm checkers


@SETTINGS
@given(model_evolutions(min_steps=3))
def test_warm_sharded_checker_equals_cold_sequential(models):
    """Warm-start + sharding compose: patched sat-sets stay bit-identical."""
    previous: ModelChecker | None = None
    for composed, dirty in _products(models):
        warm = ModelChecker(
            composed, warm_from=previous, dirty_states=dirty, parallelism=4
        )
        cold = ModelChecker(composed, parallelism=1)
        for formula in CHECK_FORMULAS:
            assert warm.sat(formula) == cold.sat(formula), formula
            assert warm.check(formula).holds == cold.check(formula).holds
        assert sum(warm.stats.shard_fixpoint_work) == warm.stats.fixpoint_work
        previous = warm


@SETTINGS
@given(model_evolutions(min_steps=3), st.sampled_from([2, 4]))
def test_incremental_verifier_checker_parallelism_is_invisible(models, shards):
    """The engine's ``checker_parallelism`` knob never changes sat-sets."""
    client = _client()
    sharded = IncrementalVerifier(
        context=client, universes=[UNIVERSE], checker_parallelism=shards
    )
    sequential = IncrementalVerifier(
        context=client, universes=[UNIVERSE], checker_parallelism=1
    )
    for model in models:
        left = sharded.step([model])
        right = sequential.step([model])
        assert left.composed == right.composed
        for formula in CHECK_FORMULAS:
            assert left.checker.sat(formula) == right.checker.sat(formula), formula
        assert left.checker.stats.shards == shards
        assert right.checker.stats.shards == 1


# ------------------------------------------------------------- stats namespace


def test_stats_dict_uses_checker_namespace(ping_client, pong_server):
    composed = compose(ping_client, pong_server)
    checker = ModelChecker(composed, parallelism=2)
    checker.sat(DEADLOCK_FREE)
    stats = checker.stats.as_dict()
    assert set(stats) == {
        "checker_successors_reused",
        "checker_sat_reused",
        "checker_sat_patched",
        "checker_sat_computed",
        "checker_affected_states",
        "checker_fixpoint_work",
        "checker_shards",
        "checker_shard_fixpoint_work",
        "checker_shard_handoffs",
        "checker_dense_states",
        "checker_bitset_words",
    }
    assert stats["checker_shards"] == 2
    # Dense residency gauges: populated in dense mode, zero in dict mode
    # (the suite also runs under REPRO_DENSE=0 on the differential leg).
    expected_states = len(composed.states) if checker.dense else 0
    expected_words = (expected_states + 63) // 64 if checker.dense else 0
    assert stats["checker_dense_states"] == expected_states
    assert stats["checker_bitset_words"] == expected_words
    assert stats["checker_fixpoint_work"] == sum(stats["checker_shard_fixpoint_work"])


# -------------------------------------------------------- ordering regressions


_FINGERPRINT_SCRIPT = """
import hashlib
from tests.test_incremental import FORMULAS, UNIVERSE, _client
from repro.automata import IncompleteAutomaton, compose
from repro.automata.incremental import ClosureCache
from repro.logic import ModelChecker

client = _client()
model = IncompleteAutomaton(
    states=["q0"], inputs={"ping"}, outputs={"pong"}, transitions=(),
    refusals=(), initial=["q0"], labels={"q0": {"p"}}, name="M_l^0",
)
update = ClosureCache(UNIVERSE, deterministic_implementation=True).update(model)
composed = compose(client, update.closure, semantics="strict")
checker = ModelChecker(composed, parallelism=4)
digest = hashlib.sha256()
for formula in FORMULAS:
    digest.update(str(formula).encode())
    for state in sorted(checker.sat(formula), key=repr):
        digest.update(repr(state).encode())
digest.update(repr(checker.stats.shard_fixpoint_work).encode())
digest.update(str(checker.stats.shard_handoffs).encode())
print(digest.hexdigest())
"""


def test_sharded_checker_is_hash_seed_independent():
    """Three fresh interpreters, three hash seeds, one fingerprint.

    The fingerprint covers the per-shard counters too: handoff counts
    must be a pure function of (automaton, formula, K), never of
    scheduling or hash order.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    root = os.path.dirname(src)
    fingerprints = set()
    for seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src + os.pathsep + root)
        result = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            check=True,
        )
        fingerprints.add(result.stdout.strip())
    assert len(fingerprints) == 1, fingerprints
