"""Unit tests for incomplete automata (Definitions 6 and 7)."""

import pytest

from repro.automata import (
    IDLE,
    IncompleteAutomaton,
    Interaction,
    InteractionUniverse,
    Refusal,
    Run,
)
from repro.errors import ModelError

A = Interaction(["a"], None)
B = Interaction(None, ["b"])


def model(**kwargs) -> IncompleteAutomaton:
    defaults = dict(
        inputs={"a"},
        outputs={"b"},
        transitions=[("s", A, "t")],
        refusals=[("t", B)],
        initial=["s"],
        name="M",
    )
    defaults.update(kwargs)
    return IncompleteAutomaton(**defaults)


class TestConstruction:
    def test_basic_accessors(self):
        m = model()
        assert m.states == frozenset({"s", "t"})
        assert m.inputs == frozenset({"a"})
        assert len(m.transitions) == 1
        assert m.refusals == frozenset({Refusal("t", B)})

    def test_refusal_triple_form(self):
        m = model(refusals=[("t", (), ("b",))])  # (state, inputs, outputs)
        assert Refusal("t", B) in m.refusals

    def test_consistency_definition6(self):
        with pytest.raises(ModelError, match="Definition 6"):
            model(refusals=[("s", A)])

    def test_refusal_on_unknown_state_rejected(self):
        with pytest.raises(ModelError, match="unknown state"):
            model(refusals=[("ghost", B)])

    def test_refusal_with_foreign_signals_rejected(self):
        with pytest.raises(ModelError, match="outside"):
            model(refusals=[("t", Interaction(["zzz"], None))])


class TestStatus:
    def test_known_refused_unknown(self):
        m = model()
        assert m.status("s", A) == "known"
        assert m.status("t", B) == "refused"
        assert m.status("s", B) == "unknown"

    def test_refused_lookup(self):
        m = model()
        assert m.refused("t") == frozenset({B})
        assert m.refused("s") == frozenset()

    def test_refused_unknown_state_raises(self):
        with pytest.raises(ModelError, match="no state"):
            model().refused("ghost")


class TestDeterminismAndCompleteness:
    def test_deterministic_model(self):
        assert model().is_deterministic()

    def test_conflicting_targets_nondeterministic(self):
        m = model(transitions=[("s", A, "t"), ("s", A, "u")], refusals=[])
        assert not m.is_deterministic()

    def test_incomplete_by_default(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        assert not model().is_complete(universe)

    def test_complete_when_everything_decided(self):
        universe = InteractionUniverse.explicit([A], inputs=["a"], outputs=["b"])
        m = IncompleteAutomaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", A, "s")],
            refusals=[],
            initial=["s"],
        )
        assert m.is_complete(universe)

    def test_knowledge_size(self):
        assert model().knowledge_size() == 2


class TestRuns:
    def test_regular_run_needs_known_transitions(self):
        m = model()
        assert m.is_run(Run("s").extend(A, "t"))
        assert not m.is_run(Run("s").extend(B, "t"))

    def test_deadlock_run_needs_explicit_refusal(self):
        m = model()
        assert m.is_run(Run("s").extend(A, "t").block(B))
        # Unknown interactions do NOT deadlock implicitly (Definition 7).
        assert not m.is_run(Run("s").extend(A, "t").block(IDLE))

    def test_run_must_start_initial(self):
        assert not model().is_run(Run("t"))


class TestReplace:
    def test_replace_refusals(self):
        m = model().replace(refusals=[])
        assert m.refusals == frozenset()
        assert len(m.transitions) == 1

    def test_replace_preserves_labels(self):
        m = model(labels={"s": {"p"}})
        assert m.replace(refusals=[]).labels("s") == frozenset({"p"})

    def test_equality_and_hash(self):
        assert model() == model()
        assert len({model(), model()}) == 1
        assert model() != model(refusals=[])


class TestRefusalObject:
    def test_equality_and_hash(self):
        assert Refusal("t", B) == Refusal("t", B)
        assert hash(Refusal("t", B)) == hash(Refusal("t", B))
        assert Refusal("t", B) != Refusal("s", B)
