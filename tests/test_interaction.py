"""Unit tests for interactions and interaction universes (Definition 1)."""

import pytest

from repro.automata import IDLE, Interaction, InteractionUniverse


class TestInteraction:
    def test_empty_interaction_is_idle(self):
        assert Interaction().is_idle
        assert IDLE.is_idle

    def test_non_empty_interaction_is_not_idle(self):
        assert not Interaction(["a"], None).is_idle
        assert not Interaction(None, ["b"]).is_idle

    def test_inputs_and_outputs_are_frozensets(self):
        interaction = Interaction(["a", "b"], ["c"])
        assert interaction.inputs == frozenset({"a", "b"})
        assert interaction.outputs == frozenset({"c"})

    def test_accepts_any_iterable(self):
        assert Interaction({"a"}, ("b",)) == Interaction(["a"], ["b"])

    def test_rejects_plain_string_signals(self):
        with pytest.raises(TypeError, match="iterable of signal names"):
            Interaction("ab", None)

    def test_rejects_non_string_signal(self):
        with pytest.raises(TypeError, match="non-empty strings"):
            Interaction([1], None)

    def test_rejects_empty_signal_name(self):
        with pytest.raises(TypeError, match="non-empty strings"):
            Interaction([""], None)

    def test_equality_and_hash(self):
        first = Interaction(["a"], ["b"])
        second = Interaction(["a"], ["b"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != Interaction(["a"], None)

    def test_signals_union(self):
        assert Interaction(["a"], ["b"]).signals == frozenset({"a", "b"})

    def test_union(self):
        combined = Interaction(["a"], None).union(Interaction(None, ["b"]))
        assert combined == Interaction(["a"], ["b"])

    def test_restrict(self):
        interaction = Interaction(["a", "x"], ["b", "y"])
        restricted = interaction.restrict(frozenset({"a"}), frozenset({"b"}))
        assert restricted == Interaction(["a"], ["b"])

    def test_str_rendering(self):
        assert str(Interaction(["a"], ["b"])) == "{a}/{b}"
        assert str(IDLE) == "{}/{}"

    def test_sort_key_orders_deterministically(self):
        interactions = [Interaction(None, ["b"]), Interaction(["a"], None), IDLE]
        ordered = sorted(interactions, key=Interaction.sort_key)
        assert ordered[0] == IDLE


class TestInteractionUniverse:
    def test_full_universe_is_powerset_product(self):
        universe = InteractionUniverse.full({"a", "b"}, {"c"})
        assert len(universe) == 4 * 2

    def test_full_universe_of_empty_sets_is_idle_only(self):
        universe = InteractionUniverse.full((), ())
        assert list(universe) == [IDLE]

    def test_singletons_counts(self):
        universe = InteractionUniverse.singletons({"a", "b"}, {"c"})
        # idle + 2 inputs + 1 output
        assert len(universe) == 4

    def test_singletons_with_simultaneous(self):
        universe = InteractionUniverse.singletons({"a", "b"}, {"c"}, allow_simultaneous=True)
        assert len(universe) == 4 + 2 * 1

    def test_singletons_without_idle(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"}, include_idle=False)
        assert IDLE not in universe
        assert len(universe) == 2

    def test_explicit_infers_signals(self):
        universe = InteractionUniverse.explicit([Interaction(["a"], ["b"])])
        assert universe.inputs == frozenset({"a"})
        assert universe.outputs == frozenset({"b"})

    def test_explicit_rejects_out_of_range_interaction(self):
        with pytest.raises(ValueError, match="outside the inputs"):
            InteractionUniverse.explicit([Interaction(["a"], None)], inputs=["x"], outputs=[])

    def test_membership(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        assert Interaction(["a"], None) in universe
        assert Interaction(["a"], ["b"]) not in universe

    def test_iteration_is_sorted_and_stable(self):
        universe = InteractionUniverse.singletons({"b", "a"}, {"c"})
        assert list(universe) == sorted(universe, key=Interaction.sort_key)

    def test_equality_and_hash(self):
        first = InteractionUniverse.singletons({"a"}, {"b"})
        second = InteractionUniverse.singletons({"a"}, {"b"})
        assert first == second
        assert hash(first) == hash(second)
        assert first != InteractionUniverse.full({"a"}, {"b"})

    def test_duplicate_interactions_are_deduplicated(self):
        universe = InteractionUniverse.explicit([IDLE, IDLE, Interaction(["a"], None)])
        assert len(universe) == 2

    def test_repr_mentions_sizes(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        assert "|Σ|=3" in repr(universe)
