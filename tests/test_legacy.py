"""Unit tests for the legacy component harness (black-box discipline,
instrumentation, probe effect)."""

import pytest

from repro.automata import Automaton
from repro.errors import ExecutionError, ModelError
from repro.legacy import (
    Instrumentation,
    InterfaceDescription,
    LegacyComponent,
    interface_of,
)


def hidden_server() -> Automaton:
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )


@pytest.fixture
def component() -> LegacyComponent:
    return LegacyComponent(hidden_server(), name="server")


class TestConstruction:
    def test_requires_single_initial_state(self):
        bad = Automaton(inputs=(), outputs=(), initial=["a", "b"])
        with pytest.raises(ModelError, match="exactly one initial"):
            LegacyComponent(bad)

    def test_requires_strong_determinism(self):
        bad = Automaton(
            inputs={"a"},
            outputs={"x", "y"},
            transitions=[("s", ("a",), ("x",), "s"), ("s", ("a",), ("y",), "s")],
            initial=["s"],
        )
        with pytest.raises(ModelError, match="not strongly deterministic"):
            LegacyComponent(bad)

    def test_structural_interface_exposed(self, component):
        assert component.inputs == frozenset({"ping"})
        assert component.outputs == frozenset({"pong"})
        assert component.initial_state == "ready"
        assert component.state_bound == 2


class TestExecution:
    def test_step_produces_outputs(self, component):
        outcome = component.step(["ping"])
        assert not outcome.blocked
        assert outcome.outputs == frozenset()
        outcome = component.step([])
        assert outcome.outputs == frozenset({"pong"})

    def test_blocked_step_keeps_state(self, component):
        component.step(["ping"])  # -> busy
        blocked = component.step(["ping"])  # busy has no reaction to ping
        assert blocked.blocked
        # The state did not change: the pending pong still arrives.
        assert component.step([]).outputs == frozenset({"pong"})

    def test_unknown_input_rejected(self, component):
        with pytest.raises(ExecutionError, match="no input ports"):
            component.step(["bogus"])

    def test_period_counts_executed_steps_only(self, component):
        component.step(["ping"])
        component.step(["ping"])  # blocked
        assert component.period == 1

    def test_reset(self, component):
        component.step(["ping"])
        component.reset()
        assert component.period == 0
        assert component.step(["ping"]).blocked is False

    def test_counters(self, component):
        component.step([])
        component.reset()
        assert component.steps_executed == 1
        assert component.resets == 1

    def test_step_outcome_interaction(self, component):
        component.step(["ping"])
        outcome = component.step([])
        assert outcome.interaction.outputs == frozenset({"pong"})


class TestInstrumentation:
    def test_state_probe_requires_full(self, component):
        with pytest.raises(ExecutionError, match="FULL instrumentation"):
            component.monitor_state()
        with component.instrumented(Instrumentation.MINIMAL, live=True):
            with pytest.raises(ExecutionError):
                component.monitor_state()

    def test_full_replay_probe_is_free(self, component):
        with component.instrumented(Instrumentation.FULL, live=False):
            assert component.monitor_state() == "ready"
            assert not component.probe_effect_active
            assert component.period == 0

    def test_live_full_probe_skews_timing(self, component):
        with component.instrumented(Instrumentation.FULL, live=True):
            component.monitor_state()
            assert component.probe_effect_active
            assert component.period == 1  # skew, although nothing executed

    def test_skew_invisible_after_leaving_live_full(self, component):
        with component.instrumented(Instrumentation.FULL, live=True):
            component.monitor_state()
        # Outside the live-full scope the true period is visible again.
        assert component.period == 0

    def test_reset_clears_skew(self, component):
        with component.instrumented(Instrumentation.FULL, live=True):
            component.monitor_state()
            component.reset()
            assert component.period == 0

    def test_probe_counter(self, component):
        with component.instrumented(Instrumentation.FULL, live=False):
            component.monitor_state()
            component.monitor_state()
        assert component.state_probes == 2

    def test_instrumentation_scope_restores(self, component):
        with component.instrumented(Instrumentation.FULL, live=False):
            pass
        with pytest.raises(ExecutionError):
            component.monitor_state()


class TestInterface:
    def test_interface_of(self, component):
        interface = interface_of(component)
        assert interface.name == "server"
        assert interface.inputs == frozenset({"ping"})
        assert interface.outputs == frozenset({"pong"})
        assert interface.initial_state == "ready"
        assert interface.state_bound == 2

    def test_interface_without_state_bound(self, component):
        interface = interface_of(component, with_state_bound=False)
        assert interface.state_bound is None

    def test_interface_rejects_overlapping_signals(self):
        with pytest.raises(ModelError, match="overlap"):
            InterfaceDescription(
                name="x",
                inputs=frozenset({"m"}),
                outputs=frozenset({"m"}),
                initial_state="s",
            )

    def test_universe_default_is_singletons(self, component):
        universe = interface_of(component).universe()
        assert len(universe) == 3  # idle, ping?, pong!

    def test_universe_full(self, component):
        universe = interface_of(component).universe(full=True)
        assert len(universe) == 4  # ℘({ping}) × ℘({pong})

    def test_universe_simultaneous(self, component):
        universe = interface_of(component).universe(allow_simultaneous=True)
        assert len(universe) == 4
