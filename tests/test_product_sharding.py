"""Differential conformance harness for the sharded product BFS.

The sharded exploration of :class:`IncrementalProduct` (and the
``parallelism=`` knobs of :func:`compose`/:func:`compose_all`) claims to
be *bit-identical* to the sequential path for every shard count,
execution strategy, and scheduling order.  Hypothesis drives random
automata pairs/triples through random dirty-region edit sequences and
checks exactly that, the way the compositional-testing literature pins
down concurrency-sensitive refactorings: the sequential implementation
is the specification, the sharded one the implementation under test.

The harness also covers the latent ordering-bug class proactively:
canonical transition order must never depend on ``set``/``dict``
iteration order, which a ``PYTHONHASHSEED`` fingerprint test (three
seeds, fresh interpreters) and a repr-tie regression test pin down.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    Automaton,
    Interaction,
    PARALLELISM_ENV,
    Transition,
    compose,
    compose_all,
    resolve_parallelism,
    select_strategy,
    shard_of,
)
from repro.automata.incremental import ClosureCache, IncrementalProduct
from repro.automata.sharding import (
    PROCESS_WORKLOAD_FLOOR,
    SEQUENTIAL_WORKLOAD_FLOOR,
    WorkerPool,
    partition,
)
from repro.errors import CompositionError
from tests.test_incremental import (
    TICK_UNIVERSE,
    UNIVERSE,
    _client,
    model_evolutions,
)

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SHARD_COUNTS = (1, 2, 4, 8)


def _assert_identical(reference: Automaton, candidate: Automaton) -> None:
    """Bit-identical: same states, edges, labels, *and* canonical order."""
    assert candidate == reference
    assert candidate.ordered_transitions == reference.ordered_transitions
    assert candidate.label_map == reference.label_map
    assert candidate.initial == reference.initial


# ------------------------------------------------------------------ primitives


def test_shard_of_is_stable_and_in_range():
    states = [("a", 0), ("b", 1), (("a", "b"), ("c",)), ("δ", None)]
    for shards in SHARD_COUNTS:
        for state in states:
            owner = shard_of(state, shards)
            assert 0 <= owner < shards
            assert owner == shard_of(state, shards)  # idempotent
    assert all(shard_of(state, 1) == 0 for state in states)


def test_partition_routes_by_shard_of():
    items = [("s", i) for i in range(32)]
    buckets = partition(items, 4)
    assert sorted(sum(buckets, [])) == sorted(items)
    for shard, bucket in enumerate(buckets):
        assert all(shard_of(item, 4) == shard for item in bucket)


def test_resolve_parallelism_validates():
    assert resolve_parallelism(3) == 3
    with pytest.raises(CompositionError):
        resolve_parallelism(0)
    with pytest.raises(CompositionError):
        resolve_parallelism(-2)
    with pytest.raises(CompositionError):
        resolve_parallelism(True)


def test_resolve_parallelism_reads_environment(monkeypatch):
    monkeypatch.delenv(PARALLELISM_ENV, raising=False)
    assert resolve_parallelism(None) == 1
    monkeypatch.setenv(PARALLELISM_ENV, "4")
    assert resolve_parallelism(None) == 4
    monkeypatch.setenv(PARALLELISM_ENV, "nope")
    with pytest.raises(CompositionError):
        resolve_parallelism(None)


def test_select_strategy_thresholds():
    assert select_strategy(10**9, 1) == "sequential"
    assert select_strategy(SEQUENTIAL_WORKLOAD_FLOOR - 1, 8) == "sequential"
    assert select_strategy(SEQUENTIAL_WORKLOAD_FLOOR, 8) == "thread"
    assert select_strategy(PROCESS_WORKLOAD_FLOOR, 8) in ("process", "thread")


def test_unknown_strategy_rejected():
    with pytest.raises(CompositionError):
        IncrementalProduct(strategy="fibers")


def test_worker_pool_map_preserves_order():
    pool = WorkerPool()
    try:
        tasks = list(range(20))
        assert pool.map("thread", lambda x: x * x, tasks, workers=4) == [
            x * x for x in tasks
        ]
        assert pool.map("sequential", lambda x: -x, tasks, workers=4) == [
            -x for x in tasks
        ]
    finally:
        pool.shutdown()


# -------------------------------------------------- differential: pairs (K vs 1)


@SETTINGS
@given(model_evolutions())
def test_sharded_pair_product_equals_sequential_and_scratch(models):
    """K ∈ {1,2,4,8} ≡ sequential incremental ≡ from-scratch compose."""
    client = _client()
    caches = {k: ClosureCache(UNIVERSE, deterministic_implementation=True) for k in SHARD_COUNTS}
    products = {
        k: IncrementalProduct(semantics="strict", parallelism=k) for k in SHARD_COUNTS
    }
    for model in models:
        reference = None
        sequential_counts = None
        for k in SHARD_COUNTS:
            update = caches[k].update(model)
            step = products[k].update(
                [client, update.closure], [frozenset(), update.dirty_states]
            )
            if reference is None:
                reference = compose(client, update.closure, semantics="strict")
            _assert_identical(reference, step.automaton)
            # Counter conformance: the per-shard breakdown varies with K,
            # but every scheduling-independent aggregate must not.
            assert len(step.shards) == k
            assert sum(r.states_explored for r in step.shards) == step.hits + step.misses
            assert sum(r.misses for r in step.shards) == step.misses
            assert frozenset().union(*(r.dirty_states for r in step.shards)) == step.dirty_states
            if sequential_counts is None:
                sequential_counts = (step.hits, step.misses, step.dirty_states)
            else:
                assert (step.hits, step.misses, step.dirty_states) == sequential_counts


@SETTINGS
@given(model_evolutions(), st.sampled_from([2, 4, 8]))
def test_sharded_product_with_validation_never_falls_back(models, shards):
    """The ``validate=True`` cross-check confirms every sharded update."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict", parallelism=shards, validate=True)
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        assert not step.fell_back
        assert step.automaton == compose(client, update.closure, semantics="strict")
    assert product.fallbacks == 0


@SETTINGS
@given(model_evolutions())
def test_forced_thread_strategy_equals_sequential(models):
    """Thread-pool execution is forced even below the workload floor."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    threaded = IncrementalProduct(semantics="strict", parallelism=4, strategy="thread")
    for model in models:
        update = cache.update(model)
        step = threaded.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        _assert_identical(
            compose(client, update.closure, semantics="strict"), step.automaton
        )


# ---------------------------------------------- differential: triples (n-ary)


@SETTINGS
@given(
    model_evolutions(max_steps=3),
    model_evolutions(universe=TICK_UNIVERSE, inp="tick", out="tock", max_steps=3),
    st.sampled_from([2, 4, 8]),
)
def test_sharded_nary_product_equals_compose_all(models_a, models_b, shards):
    """Triple products (client ∥ chaos(A) ∥ chaos(B)) shard identically."""
    cache_a = ClosureCache(UNIVERSE, deterministic_implementation=True)
    cache_b = ClosureCache(TICK_UNIVERSE, deterministic_implementation=True)
    sharded = IncrementalProduct(semantics="open", parallelism=shards)
    sequential = IncrementalProduct(semantics="open")
    length = max(len(models_a), len(models_b))
    for index in range(length):
        up_a = cache_a.update(models_a[min(index, len(models_a) - 1)])
        up_b = cache_b.update(models_b[min(index, len(models_b) - 1)])
        components = [up_a.closure, up_b.closure]
        dirty = [up_a.dirty_states, up_b.dirty_states]
        step = sharded.update(components, dirty)
        base = sequential.update(components, dirty)
        _assert_identical(base.automaton, step.automaton)
        _assert_identical(compose_all(components, semantics="open"), step.automaton)
        assert (step.hits, step.misses) == (base.hits, base.misses)
        assert step.dirty_states == base.dirty_states


# -------------------------------------------------------- compose-level knobs


def test_compose_knob_equals_sequential(ping_client, pong_server):
    reference = compose(ping_client, pong_server)
    for k in SHARD_COUNTS:
        _assert_identical(reference, compose(ping_client, pong_server, parallelism=k))
    assert compose(ping_client, pong_server, parallelism=4).name == reference.name


def test_compose_all_knob_equals_sequential(ping_client, pong_server):
    reference = compose_all([ping_client, pong_server], semantics="open")
    for k in SHARD_COUNTS:
        sharded = compose_all([ping_client, pong_server], semantics="open", parallelism=k)
        _assert_identical(reference, sharded)
        assert sharded.name == reference.name
    named = compose_all(
        [ping_client, pong_server], semantics="open", name="pair", parallelism=4
    )
    assert named.name == "pair"


def test_environment_knob_shards_compose(ping_client, pong_server, monkeypatch):
    reference = compose(ping_client, pong_server)
    monkeypatch.setenv(PARALLELISM_ENV, "4")
    _assert_identical(reference, compose(ping_client, pong_server))
    _assert_identical(
        compose_all([ping_client, pong_server], semantics="open", parallelism=1),
        compose_all([ping_client, pong_server], semantics="open"),
    )


def test_process_strategy_equals_sequential(ping_client, pong_server):
    """A forked process pool (forced, tiny workload) is still identical."""
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    reference = compose(ping_client, pong_server)
    product = IncrementalProduct(parallelism=4, strategy="process")
    step = product.update([ping_client, pong_server], [frozenset(), frozenset()])
    _assert_identical(reference, step.automaton)
    assert sum(r.states_explored for r in step.shards) == len(reference.states)


# -------------------------------------------------------- ordering regressions


class _TiedState:
    """Distinct hashable states that share one repr (worst-case ties)."""

    __slots__ = ("ident",)

    def __init__(self, ident: int):
        self.ident = ident

    def __repr__(self) -> str:
        return "tied"

    def __hash__(self) -> int:
        return hash(("tied", self.ident))

    def __eq__(self, other) -> bool:
        return isinstance(other, _TiedState) and self.ident == other.ident


def test_ordered_transitions_do_not_leak_dict_insertion_order():
    """Equal-repr sources must not fall back to ``by_source`` insertion order."""
    a, b = _TiedState(0), _TiedState(1)
    edges = {
        a: (
            Transition(a, Interaction((), ("x",)), b),
            Transition(a, Interaction((), ()), a),
        ),
        b: (Transition(b, Interaction(("y",), ()), a),),
    }
    edges = {
        source: tuple(sorted(slice_, key=Transition.sort_key))
        for source, slice_ in edges.items()
    }
    forward = Automaton._assemble(
        states=frozenset([a, b]),
        inputs=frozenset({"y"}),
        outputs=frozenset({"x"}),
        by_source=dict(edges),
        transition_count=3,
        initial=[a],
        labels={},
        name="tied",
    )
    backward = Automaton._assemble(
        states=frozenset([a, b]),
        inputs=frozenset({"y"}),
        outputs=frozenset({"x"}),
        by_source=dict(reversed(list(edges.items()))),
        transition_count=3,
        initial=[a],
        labels={},
        name="tied",
    )
    assert forward.ordered_transitions == backward.ordered_transitions
    rebuilt = Automaton(
        states=[a, b],
        inputs={"y"},
        outputs={"x"},
        transitions=forward.ordered_transitions,
        initial=[a],
        name="tied",
    )
    assert forward.ordered_transitions == rebuilt.ordered_transitions


_FINGERPRINT_SCRIPT = """
import hashlib
from tests.test_incremental import UNIVERSE, _client
from repro.automata import IncompleteAutomaton
from repro.automata.incremental import ClosureCache, IncrementalProduct

client = _client()
model = IncompleteAutomaton(
    states=["q0"], inputs={"ping"}, outputs={"pong"}, transitions=(),
    refusals=(), initial=["q0"], labels={"q0": {"p"}}, name="M_l^0",
)
cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
product = IncrementalProduct(semantics="strict", parallelism=4)
update = cache.update(model)
step = product.update([client, update.closure], [frozenset(), update.dirty_states])
digest = hashlib.sha256()
for t in step.automaton.ordered_transitions:
    digest.update(repr((repr(t.source), sorted(t.inputs), sorted(t.outputs), repr(t.target))).encode())
for s in sorted(step.automaton.states, key=repr):
    digest.update(repr(sorted(step.automaton.labels(s))).encode())
print(digest.hexdigest())
"""


def test_canonical_order_is_hash_seed_independent():
    """Three fresh interpreters, three hash seeds, one fingerprint."""
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    root = os.path.dirname(src)
    script = _FINGERPRINT_SCRIPT
    fingerprints = set()
    for seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src + os.pathsep + root)
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            check=True,
        )
        fingerprints.add(result.stdout.strip())
    assert len(fingerprints) == 1, fingerprints
