"""Tests for DOT export and the synthesis reports."""

import pytest

from repro import railcab
from repro.automata import (
    Automaton,
    ChaosState,
    ClosureState,
    IncompleteAutomaton,
    Interaction,
    Run,
    S_ALL,
    S_DELTA,
    to_dot,
)
from repro.synthesis import (
    IntegrationSynthesizer,
    render_counterexample_listing,
    render_iteration_table,
    render_state,
    summarize,
)


def small() -> Automaton:
    return Automaton(
        inputs={"a"},
        outputs={"b"},
        transitions=[("s", ("a",), (), "t"), ("t", (), ("b",), "s")],
        initial=["s"],
        labels={"s": {"p"}},
        name="small",
    )


class TestDot:
    def test_digraph_wrapper(self):
        text = to_dot(small())
        assert text.startswith('digraph "small"')
        assert text.rstrip().endswith("}")

    def test_nodes_and_edges_present(self):
        text = to_dot(small())
        assert text.count("->") == 2
        assert 'label="s"' in text and 'label="t"' in text

    def test_initial_state_double_bordered(self):
        assert "peripheries=2" in to_dot(small())

    def test_edge_labels_use_message_notation(self):
        text = to_dot(small())
        assert "a?" in text
        assert "b!" in text

    def test_idle_edge_rendered_as_tau(self):
        automaton = Automaton(
            inputs=(), outputs=(), transitions=[("s", (), (), "s")], initial=["s"]
        )
        assert "τ" in to_dot(automaton)

    def test_chaos_states_highlighted(self):
        from repro.automata import InteractionUniverse, chaotic_automaton

        chaos = chaotic_automaton(InteractionUniverse.singletons({"a"}, {"b"}))
        text = to_dot(chaos)
        assert "fillcolor=lightgray" in text

    def test_incomplete_automaton_refusals_dashed(self):
        model = IncompleteAutomaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", ("a",), (), "t")],
            refusals=[("t", (), ("b",))],
            initial=["s"],
            name="inc",
        )
        text = to_dot(model)
        assert "style=dashed" in text
        assert "⊘" in text

    def test_quoting_of_special_names(self):
        automaton = Automaton(
            inputs=(), outputs=(), initial=['we"ird'], name='na"me'
        )
        text = to_dot(automaton)
        assert '\\"' in text


class TestRenderState:
    def test_plain_string(self):
        assert render_state("convoy") == "convoy"

    def test_chaos_states(self):
        assert render_state(S_ALL) == "s_all"
        assert render_state(S_DELTA) == "s_delta"

    def test_closure_state_unwraps(self):
        assert render_state(ClosureState("convoy", True)) == "convoy"

    def test_tuple_state(self):
        assert render_state(("a", ClosureState("b", False))) == "(a, b)"


class TestListingRendering:
    def test_idle_step(self):
        run = Run(("c", "l")).extend(Interaction(), ("c", "l"))
        text = render_counterexample_listing(
            run, legacy_inputs=frozenset(), legacy_outputs=frozenset()
        )
        assert "(idle)" in text

    def test_legacy_output_direction(self):
        run = Run(("c0", "l0")).extend(Interaction(["m"], ["m"]), ("c1", "l1"))
        text = render_counterexample_listing(
            run,
            legacy_inputs=frozenset(),
            legacy_outputs=frozenset({"m"}),
        )
        assert "shuttle2.m!, shuttle1.m?" in text

    def test_legacy_input_direction(self):
        run = Run(("c0", "l0")).extend(Interaction(["m"], ["m"]), ("c1", "l1"))
        text = render_counterexample_listing(
            run,
            legacy_inputs=frozenset({"m"}),
            legacy_outputs=frozenset(),
        )
        assert "shuttle1.m!, shuttle2.m?" in text

    def test_custom_names(self):
        run = Run(("c", "l"))
        text = render_counterexample_listing(
            run,
            context_name="ctx",
            legacy_name="leg",
            legacy_inputs=frozenset(),
            legacy_outputs=frozenset(),
        )
        assert text == "ctx.c, leg.l"

    def test_blocked_tail_marked(self):
        run = Run(("c", "l")).block(Interaction(["m"], None))
        text = render_counterexample_listing(
            run, legacy_inputs=frozenset({"m"}), legacy_outputs=frozenset()
        )
        assert "blocked:" in text


class TestSynthesisReports:
    @pytest.fixture(scope="class")
    def result(self):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()

    def test_summary_fields(self, result):
        text = summarize(result)
        assert "verdict: proven" in text
        assert "tests executed" in text
        assert "learned model" in text

    def test_table_header(self, result):
        table = render_iteration_table(result)
        header = table.splitlines()[0]
        for column in ("it", "|T|", "φ", "violated", "gain"):
            assert column in header

    def test_table_marks_proven_row(self, result):
        last_row = render_iteration_table(result).splitlines()[-1]
        assert " True" in last_row


class TestMarkdownReport:
    def test_report_for_violation(self):
        from repro.legacy import interface_of
        from repro.synthesis import render_markdown_report

        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        text = render_markdown_report(
            result,
            universe=interface_of(railcab.faulty_rear_shuttle()).universe(),
            legacy_inputs=railcab.FRONT_TO_REAR,
            legacy_outputs=railcab.REAR_TO_FRONT,
            title="Faulty shuttle",
        )
        assert text.startswith("# Faulty shuttle")
        assert "## Iterations" in text
        assert "## Violation witness" in text
        assert "shuttle2.convoyProposal!" in text
        assert "## Learned-knowledge coverage" in text

    def test_report_for_proof_omits_witness(self):
        from repro.synthesis import render_markdown_report

        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        text = render_markdown_report(result)
        assert "verdict: proven" in text
        assert "## Violation witness" not in text
        assert "## Learned-knowledge coverage" not in text
