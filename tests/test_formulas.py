"""Unit tests for the formula AST (§2.1)."""

import pytest

from repro.errors import FormulaError
from repro.logic import (
    AF,
    AG,
    AU,
    AX,
    And,
    DEADLOCK,
    DEADLOCK_FREE,
    Deadlock,
    EF,
    EG,
    EU,
    EX,
    FALSE,
    Formula,
    Implies,
    Interval,
    Not,
    Or,
    Prop,
    TRUE,
    conjunction,
    disjunction,
)

P, Q = Prop("p"), Prop("q")


class TestConstruction:
    def test_prop_requires_name(self):
        with pytest.raises(FormulaError):
            Prop("")

    def test_interval_validation(self):
        with pytest.raises(FormulaError):
            Interval(3, 1)
        with pytest.raises(FormulaError):
            Interval(-1, 2)

    def test_unary_requires_formula(self):
        with pytest.raises(FormulaError):
            Not("p")

    def test_binary_requires_formulas(self):
        with pytest.raises(FormulaError):
            And(P, "q")

    def test_interval_from_tuple(self):
        assert AF(P, (1, 3)).interval == Interval(1, 3)


class TestEqualityAndHash:
    def test_structural_equality(self):
        assert AG(Not(And(P, Q))) == AG(Not(And(P, Q)))
        assert AF(P, Interval(1, 2)) == AF(P, (1, 2))

    def test_interval_distinguishes(self):
        assert AF(P, (1, 2)) != AF(P, (1, 3))
        assert AF(P) != AF(P, (0, 1))

    def test_operator_type_distinguishes(self):
        assert AF(P) != EF(P)
        assert AU(P, Q) != EU(P, Q)

    def test_hash_consistency(self):
        assert len({AG(P), AG(P), EF(P)}) == 2


class TestOperators:
    def test_python_operator_sugar(self):
        assert (P & Q) == And(P, Q)
        assert (P | Q) == Or(P, Q)
        assert (~P) == Not(P)
        assert P.implies(Q) == Implies(P, Q)


class TestPropositions:
    def test_collects_all_props(self):
        formula = AG(Implies(P, AF(Q, (1, 5))))
        assert formula.propositions() == frozenset({"p", "q"})

    def test_deadlock_is_not_a_proposition(self):
        assert DEADLOCK_FREE.propositions() == frozenset()

    def test_walk_visits_all_nodes(self):
        formula = AG(And(P, Not(Q)))
        kinds = [type(node).__name__ for node in formula.walk()]
        assert kinds == ["AG", "And", "Prop", "Not", "Prop"]


class TestStr:
    def test_rendering(self):
        assert str(AG(Not(And(P, Q)))) == "(AG (not (p and q)))"
        assert str(AF(P, (1, 4))) == "(AF[1,4] p)"
        assert str(AU(P, Q)) == "A[p U q]"
        assert str(DEADLOCK) == "deadlock"
        assert str(TRUE) == "true"


class TestMapAtoms:
    def identity(self, atom: Formula, negated: bool) -> Formula:
        return Not(atom) if negated else atom

    def test_pushes_negation_to_atoms(self):
        formula = Not(And(P, Q))
        assert formula.map_atoms(self.identity) == Or(Not(P), Not(Q))

    def test_double_negation_cancels(self):
        assert Not(Not(P)).map_atoms(self.identity) == P

    def test_temporal_duals(self):
        assert Not(AG(P)).map_atoms(self.identity) == EF(Not(P))
        assert Not(EF(P)).map_atoms(self.identity) == AG(Not(P))
        assert Not(AF(P)).map_atoms(self.identity) == EG(Not(P))
        assert Not(AX(P)).map_atoms(self.identity) == EX(Not(P))

    def test_interval_preserved_through_dual(self):
        assert Not(AF(P, (1, 3))).map_atoms(self.identity) == EG(Not(P), (1, 3))

    def test_implies_expanded(self):
        assert Implies(P, Q).map_atoms(self.identity) == Or(Not(P), Q)

    def test_negated_until_rejected(self):
        with pytest.raises(FormulaError, match="negated Until"):
            Not(AU(P, Q)).map_atoms(self.identity)

    def test_constants_transformable(self):
        def flip(atom, negated):
            if isinstance(atom, Deadlock):
                return FALSE
            return Not(atom) if negated else atom

        assert Not(DEADLOCK).map_atoms(flip) == FALSE


class TestCombinators:
    def test_conjunction(self):
        assert conjunction([]) == TRUE
        assert conjunction([P]) == P
        assert conjunction([P, Q]) == And(P, Q)

    def test_disjunction(self):
        assert disjunction([]) == FALSE
        assert disjunction([P]) == P
        assert disjunction([P, Q]) == Or(P, Q)
