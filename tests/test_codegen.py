"""Tests for controller code generation: the generated code must be
behaviorally equivalent to the model it came from."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import railcab
from repro.automata import Automaton, Transition, Interaction
from repro.codegen import compile_controller, generate_python
from repro.errors import ModelError
from repro.legacy import LegacyComponent
from repro.rtsc import unfold
from repro.synthesis import IntegrationSynthesizer, Verdict
from repro.testing import generate_suite, run_suite


def server_model() -> Automaton:
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )


class TestGeneration:
    def test_source_is_valid_python(self):
        source = generate_python(server_model())
        compile(source, "<test>", "exec")

    def test_source_contains_transition_table(self):
        source = generate_python(server_model())
        assert "TRANSITIONS" in source
        assert "'ready'" in source and "'busy'" in source

    def test_custom_class_name(self):
        source = generate_python(server_model(), class_name="PingServer")
        assert "class PingServer:" in source

    def test_invalid_class_name_rejected(self):
        with pytest.raises(ModelError, match="class name"):
            generate_python(server_model(), class_name="123bad")
        with pytest.raises(ModelError, match="class name"):
            generate_python(server_model(), class_name="class")

    def test_nondeterministic_model_rejected(self):
        bad = Automaton(
            inputs={"a"},
            outputs={"x", "y"},
            transitions=[("s", ("a",), ("x",), "s"), ("s", ("a",), ("y",), "s")],
            initial=["s"],
        )
        with pytest.raises(ModelError, match="strongly deterministic"):
            generate_python(bad)

    def test_multiple_initial_states_rejected(self):
        bad = Automaton(inputs=(), outputs=(), initial=["a", "b"])
        with pytest.raises(ModelError, match="exactly one initial"):
            generate_python(bad)

    def test_non_string_states_rejected(self):
        bad = Automaton(
            inputs=(), outputs=(),
            transitions=[Transition(0, Interaction(), 0)], initial=[0],
        )
        with pytest.raises(ModelError, match="string states"):
            generate_python(bad)


class TestCompiledController:
    def test_step_semantics(self):
        controller = compile_controller(server_model())()
        assert controller.step(["ping"]) == frozenset()
        assert controller.step() == frozenset({"pong"})
        assert controller.period == 2

    def test_refusal_returns_none_and_keeps_state(self):
        controller = compile_controller(server_model())()
        controller.step(["ping"])  # -> busy
        assert controller.step(["ping"]) is None  # busy refuses ping
        assert controller.step() == frozenset({"pong"})

    def test_reset(self):
        controller = compile_controller(server_model())()
        controller.step(["ping"])
        controller.reset()
        assert controller.state == controller.INITIAL
        assert controller.period == 0

    def test_unknown_input_raises(self):
        controller = compile_controller(server_model())()
        with pytest.raises(ValueError, match="unknown input"):
            controller.step(["bogus"])


class TestRoundTrip:
    def wrap(self, automaton: Automaton) -> LegacyComponent:
        """Wrap a generated controller back into the legacy harness."""
        controller_class = compile_controller(automaton)
        controller = controller_class()
        # Rebuild a hidden automaton from the controller's table — this
        # exercises the generated artifact, not the original object.
        transitions = [
            (state, tuple(sorted(inputs)), tuple(sorted(outputs)), target)
            for (state, inputs), (outputs, target) in controller.TRANSITIONS.items()
        ]
        hidden = Automaton(
            inputs=controller.INPUTS,
            outputs=controller.OUTPUTS,
            transitions=transitions,
            initial=[controller.INITIAL],
            name="generated",
        )
        return LegacyComponent(hidden, name="generated")

    def test_generated_component_passes_model_suite(self):
        model = server_model()
        component = self.wrap(model)
        report = run_suite(component, generate_suite(model))
        assert report.ok

    def test_generated_front_role_behaves_like_the_statechart(self):
        model = unfold(railcab.front_role_statechart())
        # The front role is nondeterministic (it chooses its answers), so
        # code generation must refuse it — determinism is the §4.3 line.
        with pytest.raises(ModelError, match="strongly deterministic"):
            generate_python(model)

    def test_generated_shuttle_is_proven_correct(self):
        """Close the full loop: model → generated code → harness →
        iterative synthesis → proof."""
        hidden = railcab.correct_rear_shuttle(convoy_ticks=1)._hidden
        component = self.wrap(hidden)
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.verdict is Verdict.PROVEN

    def test_learned_model_can_be_regenerated(self):
        """Learned model of a black box → generated replacement
        controller that is correct in the same context (re-hosting)."""
        cold = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        replacement = self.wrap(
            cold.final_model.automaton.replace(name="replacement")
        )
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            replacement,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.verdict is Verdict.PROVEN


SETTINGS_GEN = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def deterministic_machines(draw):
    from repro.automata import Transition
    n_states = draw(st.integers(min_value=1, max_value=4))
    states = [f"q{i}" for i in range(n_states)]
    input_sets = [frozenset(), frozenset({"ping"})]
    output_sets = [frozenset(), frozenset({"pong"})]
    transitions = []
    for state in states:
        for inputs in input_sets:
            if not draw(st.booleans()):
                continue
            transitions.append(
                Transition(
                    state,
                    Interaction(inputs, draw(st.sampled_from(output_sets))),
                    states[draw(st.integers(min_value=0, max_value=n_states - 1))],
                )
            )
    return Automaton(
        states=states, inputs={"ping"}, outputs={"pong"},
        transitions=transitions, initial=["q0"], name="gen",
    )


class TestGeneratedEquivalenceProperty:
    @SETTINGS_GEN
    @given(deterministic_machines(), st.lists(
        st.sampled_from([frozenset(), frozenset({"ping"})]), max_size=6))
    def test_controller_matches_model_on_random_input_feeds(self, machine, feed):
        controller = compile_controller(machine)()
        state = "q0"
        for inputs in feed:
            expected = machine.transitions_on(state, inputs)
            produced = controller.step(inputs)
            if expected:
                assert produced == expected[0].outputs
                state = expected[0].target
            else:
                assert produced is None
            assert controller.state == state
