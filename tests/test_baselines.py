"""Unit tests for the baselines: L*, W-method, black-box checking (§6)."""

import pytest

from repro import railcab
from repro.automata import Automaton, Interaction, InteractionUniverse, enumerate_traces
from repro.baselines import (
    BBCVerdict,
    BlackBoxChecker,
    ConformanceEquivalenceOracle,
    LStarLearner,
    MembershipOracle,
    PerfectEquivalenceOracle,
    characterization_set,
    hypothesis_to_automaton,
    transition_cover,
    vasilevskii_bound,
    w_method_suite,
)
from repro.legacy import LegacyComponent, interface_of

PING = Interaction(["ping"], None)
PONG = Interaction(None, ["pong"])
IDLE = Interaction()


def server_component() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


def universe() -> InteractionUniverse:
    return InteractionUniverse.singletons({"ping"}, {"pong"})


class TestMembershipOracle:
    def test_accepts_executable_words(self):
        oracle = MembershipOracle(server_component())
        assert oracle.query((PING, PONG))
        assert oracle.query((IDLE, PING))

    def test_rejects_unexecutable_words(self):
        oracle = MembershipOracle(server_component())
        assert not oracle.query((PONG,))  # no pong before ping
        assert not oracle.query((PING, PING))  # busy refuses ping

    def test_prefix_closure(self):
        oracle = MembershipOracle(server_component())
        word = (PING, PONG, PING)
        if oracle.query(word):
            for length in range(len(word)):
                assert oracle.query(word[:length])

    def test_caching(self):
        oracle = MembershipOracle(server_component())
        oracle.query((PING,))
        queries_before = oracle.queries
        oracle.query((PING,))
        assert oracle.queries == queries_before
        assert oracle.cache_hits == 1


class TestLStar:
    def learn(self, component):
        uni = interface_of(component).universe()
        membership = MembershipOracle(component)
        equivalence = PerfectEquivalenceOracle(component._hidden, uni)
        learner = LStarLearner(membership, uni, equivalence)
        return learner.learn(), learner, uni

    def test_learns_server_exactly(self):
        dfa, learner, uni = self.learn(server_component())
        # 2 real states + 1 reject sink.
        assert dfa.size == 3
        assert learner.statistics.equivalence_queries >= 1
        hypothesis = hypothesis_to_automaton(dfa)
        truth = server_component()._hidden
        assert enumerate_traces(hypothesis, 5) == enumerate_traces(truth, 5)

    def test_learns_rear_shuttle(self):
        dfa, _, _ = self.learn(railcab.correct_rear_shuttle(convoy_ticks=1))
        assert dfa.size == 5 + 1

    def test_accepts_matches_membership(self):
        component = server_component()
        dfa, _, uni = self.learn(component)
        oracle = MembershipOracle(server_component())
        import itertools

        symbols = list(uni)
        for length in range(3):
            for word in itertools.product(symbols, repeat=length):
                assert dfa.accepts(word) == oracle.query(word), word

    def test_statistics_counted(self):
        _, learner, _ = self.learn(server_component())
        assert learner.statistics.membership_queries > 0
        assert learner.statistics.rounds >= 1

    def test_hypothesis_to_automaton_requires_nonempty_language(self):
        from repro.baselines import LStarDFA
        from repro.errors import SynthesisError

        dfa = LStarDFA(
            states=(0,),
            alphabet=(IDLE,),
            initial=0,
            accepting=frozenset(),
            delta={(0, IDLE): 0},
            access={0: ()},
        )
        with pytest.raises(SynthesisError):
            hypothesis_to_automaton(dfa)


class TestConformance:
    def learned_dfa(self):
        component = server_component()
        uni = universe()
        learner = LStarLearner(
            MembershipOracle(component), uni, PerfectEquivalenceOracle(component._hidden, uni)
        )
        return learner.learn(), uni

    def test_transition_cover_includes_empty_word(self):
        dfa, uni = self.learned_dfa()
        cover = transition_cover(dfa, uni)
        assert () in cover
        assert len(cover) == 1 + dfa.size * len(uni)

    def test_characterization_set_distinguishes_all_pairs(self):
        dfa, uni = self.learned_dfa()
        w_set = characterization_set(dfa, uni)
        for a in dfa.states:
            for b in dfa.states:
                if a == b:
                    continue
                assert any(
                    (dfa.run_from(a, w) in dfa.accepting) != (dfa.run_from(b, w) in dfa.accepting)
                    for w in w_set
                ), (a, b)

    def test_w_method_finds_injected_fault(self):
        dfa, uni = self.learned_dfa()
        # A faulty implementation: drops the pong.
        faulty_hidden = Automaton(
            inputs={"ping"},
            outputs={"pong"},
            transitions=[
                ("ready", ("ping",), (), "busy"),
                ("ready", (), (), "ready"),
                ("busy", (), (), "ready"),  # silent instead of pong
            ],
            initial=["ready"],
            name="faulty",
        )
        oracle = ConformanceEquivalenceOracle(
            LegacyComponent(faulty_hidden, name="server"), uni, state_bound=dfa.size + 1
        )
        counterexample = oracle.find_counterexample(dfa)
        assert counterexample is not None

    def test_w_method_passes_correct_implementation(self):
        dfa, uni = self.learned_dfa()
        oracle = ConformanceEquivalenceOracle(
            server_component(), uni, state_bound=dfa.size + 1
        )
        assert oracle.find_counterexample(dfa) is None
        assert oracle.tests_executed > 0

    def test_suite_grows_with_state_bound(self):
        dfa, uni = self.learned_dfa()
        small = w_method_suite(dfa, uni, state_bound=dfa.size)
        large = w_method_suite(dfa, uni, state_bound=dfa.size + 2)
        assert len(large) > len(small)

    def test_vasilevskii_bound(self):
        assert vasilevskii_bound(3, 3, 4) == 3 * 3 * 3 * 4
        assert vasilevskii_bound(3, 5, 4) == 9 * 5 * 4 ** 3
        with pytest.raises(ValueError):
            vasilevskii_bound(5, 3, 4)


class TestBlackBoxChecking:
    def test_violated_on_faulty_shuttle(self):
        component = railcab.faulty_rear_shuttle()
        uni = interface_of(component).universe()
        checker = BlackBoxChecker(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            universe=uni,
            equivalence=PerfectEquivalenceOracle(component._hidden, uni),
            labeler=railcab.rear_state_labeler,
        )
        result = checker.run()
        assert result.verdict is BBCVerdict.VIOLATED
        assert result.witness is not None
        # The witness is executable on the real component.
        assert MembershipOracle(railcab.faulty_rear_shuttle()).query(result.witness)

    def test_satisfied_on_correct_shuttle(self):
        component = railcab.correct_rear_shuttle()
        uni = interface_of(component).universe()
        checker = BlackBoxChecker(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            universe=uni,
            equivalence=PerfectEquivalenceOracle(component._hidden, uni),
            labeler=railcab.rear_state_labeler,
        )
        result = checker.run()
        assert result.verdict is BBCVerdict.SATISFIED
        # BBC must learn the whole machine before it can conclude.
        assert result.hypothesis_sizes[-1] >= component.state_bound

    def test_bbc_counts_queries(self):
        component = railcab.faulty_rear_shuttle()
        uni = interface_of(component).universe()
        checker = BlackBoxChecker(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            universe=uni,
            equivalence=PerfectEquivalenceOracle(component._hidden, uni),
            labeler=railcab.rear_state_labeler,
        )
        result = checker.run()
        assert result.membership_queries > 0
        assert result.rounds >= 1


class TestRivestSchapire:
    def learn(self, component, mode):
        uni = interface_of(component).universe()
        learner = LStarLearner(
            MembershipOracle(component),
            uni,
            PerfectEquivalenceOracle(component._hidden, uni),
            counterexample_handling=mode,
        )
        return learner.learn(), learner.statistics

    def test_learns_the_same_machine(self):
        baseline, _ = self.learn(server_component(), "all-prefixes")
        rs, _ = self.learn(server_component(), "rivest-schapire")
        assert baseline.size == rs.size
        import itertools

        uni = universe()
        for length in range(3):
            for word in itertools.product(tuple(uni), repeat=length):
                assert baseline.accepts(word) == rs.accepts(word)

    def test_rs_uses_fewer_membership_queries_on_larger_machines(self):
        component = railcab.overbuilt_rear_shuttle(extra_states=10)
        _, ap_stats = self.learn(railcab.overbuilt_rear_shuttle(extra_states=10), "all-prefixes")
        _, rs_stats = self.learn(railcab.overbuilt_rear_shuttle(extra_states=10), "rivest-schapire")
        del component
        assert rs_stats.membership_queries < ap_stats.membership_queries
        # The classic trade: more equivalence rounds instead.
        assert rs_stats.equivalence_queries >= ap_stats.equivalence_queries

    def test_unknown_mode_rejected(self):
        from repro.errors import SynthesisError

        component = server_component()
        uni = interface_of(component).universe()
        with pytest.raises(SynthesisError, match="unknown counterexample handling"):
            LStarLearner(
                MembershipOracle(component),
                uni,
                PerfectEquivalenceOracle(component._hidden, uni),
                counterexample_handling="magic",
            )
