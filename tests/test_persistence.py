"""Tests for model persistence and warm-started synthesis."""

import pytest

from repro import railcab
from repro.automata import Automaton, IncompleteAutomaton, Interaction
from repro.errors import ModelError, SynthesisError
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.persistence import (
    automaton_from_dict,
    automaton_to_dict,
    incomplete_from_dict,
    incomplete_to_dict,
    load_model,
    save_model,
)
from repro.synthesis import IntegrationSynthesizer, Verdict


def sample_automaton() -> Automaton:
    return Automaton(
        inputs={"a"},
        outputs={"b"},
        transitions=[("s", ("a",), (), "t"), ("t", (), ("b",), "s")],
        initial=["s"],
        labels={"s": {"p", "q"}},
        name="sample",
    )


def sample_incomplete() -> IncompleteAutomaton:
    return IncompleteAutomaton(
        inputs={"a"},
        outputs={"b"},
        transitions=[("s", ("a",), (), "t")],
        refusals=[("t", ("a",), ())],
        initial=["s"],
        labels={"t": {"r"}},
        name="partial",
    )


class TestDictRoundTrip:
    def test_automaton_round_trip(self):
        original = sample_automaton()
        assert automaton_from_dict(automaton_to_dict(original)) == original

    def test_incomplete_round_trip(self):
        original = sample_incomplete()
        assert incomplete_from_dict(incomplete_to_dict(original)) == original

    def test_labels_preserved(self):
        rebuilt = automaton_from_dict(automaton_to_dict(sample_automaton()))
        assert rebuilt.labels("s") == frozenset({"p", "q"})

    def test_document_is_json_serialisable(self):
        import json

        json.dumps(incomplete_to_dict(sample_incomplete()))

    def test_document_is_deterministic(self):
        assert incomplete_to_dict(sample_incomplete()) == incomplete_to_dict(sample_incomplete())

    def test_malformed_document_rejected(self):
        with pytest.raises(ModelError, match="malformed"):
            automaton_from_dict({"inputs": ["a"]})


class TestFileRoundTrip:
    def test_save_load_automaton(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(sample_automaton(), path)
        assert load_model(path) == sample_automaton()

    def test_save_load_incomplete(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(sample_incomplete(), path)
        loaded = load_model(path)
        assert isinstance(loaded, IncompleteAutomaton)
        assert loaded == sample_incomplete()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ModelError, match="not a repro model"):
            load_model(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text('{"format": "repro/model", "version": 999, "kind": "automaton"}')
        with pytest.raises(ModelError, match="unsupported version"):
            load_model(path)

    def test_save_garbage_rejected(self, tmp_path):
        with pytest.raises(ModelError, match="not an automaton"):
            save_model("text", tmp_path / "x.json")


class TestWarmStart:
    def cold_run(self):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()

    def test_warm_start_same_property_is_immediate(self):
        cold = self.cold_run()
        warm = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=cold.final_model,
        ).run()
        assert warm.verdict is Verdict.PROVEN
        assert warm.iteration_count == 1
        assert warm.total_tests == 0

    def test_warm_start_new_property(self):
        cold = self.cold_run()
        warm = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            parse("AG (rearRole.convoy -> frontRole.convoy)"),
            labeler=railcab.rear_state_labeler,
            initial_knowledge=cold.final_model,
        ).run()
        assert warm.verdict is Verdict.PROVEN
        assert warm.total_tests == 0

    def test_warm_start_through_persistence(self, tmp_path):
        cold = self.cold_run()
        path = tmp_path / "shuttle.json"
        save_model(cold.final_model, path)
        warm = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=load_model(path),
        ).run()
        assert warm.verdict is Verdict.PROVEN

    def test_signal_mismatch_rejected(self):
        foreign = IncompleteAutomaton(
            inputs={"x"}, outputs={"y"}, initial=["s"], name="foreign"
        )
        with pytest.raises(SynthesisError, match="interface"):
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(),
                railcab.PATTERN_CONSTRAINT,
                initial_knowledge=foreign,
            )

    def test_wrong_initial_state_rejected(self):
        cold = self.cold_run()
        with pytest.raises(SynthesisError, match="initial state"):
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.faulty_rear_shuttle(),  # initial state "noConvoy"
                railcab.PATTERN_CONSTRAINT,
                initial_knowledge=cold.final_model,
            )

    def test_behaviorally_stale_knowledge_rejected(self):
        # Same state names and interface, but a transition the real
        # component does not have.
        shuttle = railcab.correct_rear_shuttle(convoy_ticks=1)
        bogus = IncompleteAutomaton(
            inputs=shuttle.inputs,
            outputs=shuttle.outputs,
            transitions=[
                ("noConvoy::default", (), ("breakConvoyProposal",), "noConvoy::wait"),
            ],
            initial=["noConvoy::default"],
            name="bogus",
        )
        with pytest.raises(SynthesisError, match="stale initial knowledge"):
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                shuttle,
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                initial_knowledge=bogus,
            )

    def test_stale_refusal_rejected(self):
        shuttle = railcab.correct_rear_shuttle(convoy_ticks=1)
        bogus = IncompleteAutomaton(
            inputs=shuttle.inputs,
            outputs=shuttle.outputs,
            # claim the component refuses to propose — it doesn't.
            refusals=[("noConvoy::default", Interaction(None, ["convoyProposal"]))],
            initial=["noConvoy::default"],
            name="bogus",
        )
        with pytest.raises(SynthesisError, match="stale initial knowledge"):
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                shuttle,
                railcab.PATTERN_CONSTRAINT,
                labeler=railcab.rear_state_labeler,
                initial_knowledge=bogus,
            )

    def test_validation_can_be_skipped(self):
        shuttle = railcab.correct_rear_shuttle(convoy_ticks=1)
        harmless = IncompleteAutomaton(
            inputs=shuttle.inputs,
            outputs=shuttle.outputs,
            initial=["noConvoy::default"],
            name="empty",
        )
        synthesizer = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            shuttle,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            initial_knowledge=harmless,
            validate_knowledge=False,
        )
        assert synthesizer.run().verdict is Verdict.PROVEN
