"""Tests for the multi-legacy extension (§7 of the paper)."""

import pytest

from repro import railcab
from repro.automata import Automaton, compose
from repro.errors import NotCompositionalError, SynthesisError
from repro.legacy import LegacyComponent
from repro.logic import ModelChecker, parse
from repro.synthesis import MultiLegacySynthesizer, SynthesisSettings, Verdict

LABELERS = {
    "frontShuttle": railcab.front_state_labeler,
    "rearShuttle": railcab.rear_state_labeler,
}


def build(front, rear, **kwargs):
    return MultiLegacySynthesizer(
        None,
        [front, rear],
        railcab.PATTERN_CONSTRAINT,
        labelers=LABELERS,
        **kwargs,
    )


class TestTwoLegacyShuttles:
    def test_two_correct_shuttles_proven(self):
        result = build(
            railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert result.proven
        # Both models were improved in parallel.
        assert result.learned_states("frontShuttle") >= 3
        assert result.learned_states("rearShuttle") >= 4

    def test_ground_truth_for_two_correct_shuttles(self):
        front = railcab.correct_front_shuttle()._hidden.with_labels(
            railcab.front_state_labeler
        )
        rear = railcab.correct_rear_shuttle(convoy_ticks=1)._hidden.with_labels(
            railcab.rear_state_labeler
        )
        truth = compose(front, rear)
        checker = ModelChecker(truth)
        assert checker.holds(railcab.PATTERN_CONSTRAINT)
        assert checker.holds(parse("AG not deadlock"))

    def test_forgetful_front_is_a_real_violation(self):
        result = build(
            railcab.forgetful_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "property"
        assert result.violation_witness is not None

    def test_forgetful_front_ground_truth(self):
        front = railcab.forgetful_front_shuttle()._hidden.with_labels(
            railcab.front_state_labeler
        )
        rear = railcab.correct_rear_shuttle(convoy_ticks=1)._hidden.with_labels(
            railcab.rear_state_labeler
        )
        truth = compose(front, rear)
        assert not ModelChecker(truth).holds(railcab.PATTERN_CONSTRAINT)

    def test_faulty_rear_against_legacy_front(self):
        result = build(
            railcab.correct_front_shuttle(), railcab.faulty_rear_shuttle()
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION

    def test_partial_learning_holds_for_both(self):
        front = railcab.correct_front_shuttle()
        rear = railcab.overbuilt_rear_shuttle(extra_states=10)
        result = build(front, rear).run()
        assert result.verdict is Verdict.PROVEN
        assert result.learned_states("rearShuttle") < rear.state_bound

    def test_knowledge_monotone_across_iterations(self):
        result = build(
            railcab.correct_front_shuttle(), railcab.correct_rear_shuttle()
        ).run()
        totals = [
            sum(states + t + tbar for states, t, tbar in record.model_sizes)
            for record in result.iterations
        ]
        assert totals == sorted(totals)


class TestWithModeledContext:
    def test_single_legacy_with_context_matches_single_loop(self):
        result = MultiLegacySynthesizer(
            railcab.front_role_automaton(),
            [railcab.faulty_rear_shuttle()],
            railcab.PATTERN_CONSTRAINT,
            labelers={"rearShuttle": railcab.rear_state_labeler},
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION

    def test_single_correct_legacy_with_context_proven(self):
        result = MultiLegacySynthesizer(
            railcab.front_role_automaton(),
            [railcab.correct_rear_shuttle()],
            railcab.PATTERN_CONSTRAINT,
            labelers={"rearShuttle": railcab.rear_state_labeler},
        ).run()
        assert result.verdict is Verdict.PROVEN


class TestValidation:
    def test_needs_components(self):
        with pytest.raises(SynthesisError, match="at least one"):
            MultiLegacySynthesizer(None, [], railcab.PATTERN_CONSTRAINT)

    def test_unique_names(self):
        with pytest.raises(SynthesisError, match="unique"):
            MultiLegacySynthesizer(
                None,
                [railcab.correct_rear_shuttle(), railcab.correct_rear_shuttle()],
                railcab.PATTERN_CONSTRAINT,
            )

    def test_composability_enforced(self):
        clashing = LegacyComponent(
            Automaton(
                inputs=railcab.FRONT_TO_REAR,
                outputs=railcab.REAR_TO_FRONT,
                transitions=[("s", (), (), "s")],
                initial=["s"],
            ),
            name="clash",
        )
        with pytest.raises(SynthesisError, match="not composable"):
            MultiLegacySynthesizer(
                None,
                [railcab.correct_rear_shuttle(), clashing],
                railcab.PATTERN_CONSTRAINT,
            )

    def test_property_must_be_compositional(self):
        with pytest.raises(NotCompositionalError):
            MultiLegacySynthesizer(
                None,
                [railcab.correct_rear_shuttle()],
                parse("EF rearRole.convoy"),
            )

    def test_budget_exceeded(self):
        result = build(
            railcab.correct_front_shuttle(),
            railcab.correct_rear_shuttle(),
            settings=SynthesisSettings(max_iterations=1),
        ).run()
        assert result.verdict is Verdict.BUDGET_EXCEEDED


class TestDeadlockAcrossComponents:
    def test_mutual_deadlock_is_real(self):
        # A front that never answers: after the proposal both shuttles
        # wait forever — but both still take idle steps, so no deadlock;
        # instead build a front that halts entirely after the proposal.
        halting_front = LegacyComponent(
            Automaton(
                inputs=railcab.REAR_TO_FRONT,
                outputs=railcab.FRONT_TO_REAR,
                transitions=[
                    ("start", (), (), "start"),
                    ("start", ("convoyProposal",), (), "halted"),
                    # "halted" reacts to nothing at all.
                ],
                initial=["start"],
                name="frontShuttle(halting)",
            ),
            name="frontShuttle",
        )
        result = build(halting_front, railcab.correct_rear_shuttle()).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "deadlock"
