"""Tests for model-based test-suite generation and the audit export."""

import json

import pytest

from repro import railcab
from repro.automata import Automaton, IncompleteAutomaton, Interaction
from repro.errors import ModelError
from repro.legacy import LegacyComponent
from repro.synthesis import IntegrationSynthesizer, Verdict, result_to_dict
from repro.testing import TestVerdict, generate_suite, run_suite


def server_model() -> Automaton:
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="serverModel",
    )


def server_component() -> LegacyComponent:
    return LegacyComponent(server_model().replace(name="server"), name="server")


def broken_component() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), (), "ready"),  # silently swallows the pong
        ],
        initial=["ready"],
        name="broken",
    )
    return LegacyComponent(hidden, name="server")


class TestGenerateSuite:
    def test_transition_coverage_covers_everything(self):
        suite = generate_suite(server_model(), coverage="transitions")
        executed = set()
        model = server_model()
        for case in suite:
            state = "ready"
            for step in case.steps:
                transition = model.transitions_on(state, step.inputs)[0]
                executed.add(transition)
                state = transition.target
        assert executed == model.transitions

    def test_state_coverage_reaches_every_state(self):
        suite = generate_suite(server_model(), coverage="states")
        assert len(suite) == 2  # ready (empty case) and busy

    def test_unknown_coverage_rejected(self):
        with pytest.raises(ModelError, match="unknown coverage"):
            generate_suite(server_model(), coverage="branches")

    def test_suite_from_incomplete_automaton(self):
        model = IncompleteAutomaton(
            inputs={"ping"},
            outputs={"pong"},
            transitions=[("ready", ("ping",), (), "busy")],
            initial=["ready"],
            name="learned",
        )
        suite = generate_suite(model)
        assert len(suite) == 1

    def test_suite_from_learned_synthesis_model(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        suite = generate_suite(result.final_model, name="shuttle")
        assert suite
        report = run_suite(railcab.correct_rear_shuttle(), suite, name="shuttle")
        assert report.ok  # learned models are observation-conforming


class TestRunSuite:
    def test_conforming_component_passes(self):
        suite = generate_suite(server_model())
        report = run_suite(server_component(), suite)
        assert report.ok
        assert report.passed == report.total
        assert "passed" in report.summary()

    def test_regression_detected(self):
        suite = generate_suite(server_model())
        report = run_suite(broken_component(), suite)
        assert not report.ok
        assert report.failed
        assert any(
            execution.verdict in (TestVerdict.DIVERGED, TestVerdict.BLOCKED)
            for execution in report.failed
        )
        assert "FAILED" in report.summary()


class TestResultExport:
    def test_export_is_json_serialisable(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        document = result_to_dict(result)
        text = json.dumps(document)
        assert "real-violation" in text

    def test_export_fields(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        document = result_to_dict(result)
        # The export shape is versioned; consumers key migrations off
        # this exact value (see SCHEMA_VERSION in repro.synthesis.report).
        from repro.synthesis.report import SCHEMA_VERSION

        assert document["schema_version"] == SCHEMA_VERSION == "1.1"
        assert list(document)[0] == "schema_version"
        assert document["verdict"] == "real-violation"
        assert document["violation_kind"] == "property"
        assert document["totals"]["iterations"] == result.iteration_count
        assert len(document["iterations"]) == result.iteration_count
        witness = document["violation_witness"]
        assert witness is not None
        assert witness["start"].startswith("(")

    def test_export_of_proven_run_has_no_witness(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        document = result_to_dict(result)
        assert document["verdict"] == "proven"
        assert document["violation_witness"] is None
