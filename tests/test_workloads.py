"""Tests for the workload generators."""

import pytest

from repro.errors import ModelError
from repro.workloads import (
    chain_server,
    mutate_component,
    ping_client,
    random_deterministic_component,
)


class TestRandomComponents:
    def test_reproducible(self):
        a = random_deterministic_component(5)
        b = random_deterministic_component(5)
        assert a._hidden == b._hidden

    def test_different_seeds_differ(self):
        machines = {random_deterministic_component(seed)._hidden for seed in range(10)}
        assert len(machines) > 1

    def test_strongly_deterministic(self):
        for seed in range(10):
            component = random_deterministic_component(seed, n_states=5)
            assert component._hidden.is_strongly_deterministic()

    def test_all_states_reachable(self):
        from repro.automata import reachable_states

        for seed in range(10):
            hidden = random_deterministic_component(seed, n_states=5)._hidden
            assert reachable_states(hidden) == hidden.states

    def test_state_count_respected(self):
        assert random_deterministic_component(0, n_states=7).state_bound == 7

    def test_invalid_state_count(self):
        with pytest.raises(ModelError):
            random_deterministic_component(0, n_states=0)

    def test_custom_interface(self):
        component = random_deterministic_component(
            1, inputs=("a", "b"), outputs=("x",)
        )
        assert component.inputs == frozenset({"a", "b"})
        assert component.outputs == frozenset({"x"})


class TestMutants:
    def test_mutation_preserves_determinism(self):
        base = chain_server(3)
        for seed in range(10):
            mutant = mutate_component(chain_server(3), seed, mutations=2)
            assert mutant._hidden.is_strongly_deterministic()
        del base

    def test_mutation_reproducible(self):
        a = mutate_component(chain_server(2), 3)._hidden
        b = mutate_component(chain_server(2), 3)._hidden
        assert a == b

    def test_some_mutants_change_behavior(self):
        base = chain_server(3)._hidden
        changed = [
            mutate_component(chain_server(3), seed)._hidden != base for seed in range(10)
        ]
        assert any(changed)

    def test_mutation_without_transitions_rejected(self):
        from repro.automata import Automaton
        from repro.legacy import LegacyComponent

        empty = LegacyComponent(
            Automaton(inputs=(), outputs=(), initial=["s"]), name="empty"
        )
        with pytest.raises(ModelError, match="without transitions"):
            mutate_component(empty, 0)


class TestProtocolFamily:
    def test_client_shape(self):
        client = ping_client()
        assert client.inputs == frozenset({"pong"})
        assert client.outputs == frozenset({"ping"})
        assert "client.waiting" in client.labels("waiting")

    def test_chain_server_size(self):
        assert chain_server(4).state_bound == 8

    def test_chain_server_cycles(self):
        server = chain_server(2)
        assert server.step(["ping"]).blocked is False
        assert server.step([]).outputs == frozenset({"pong"})
        assert server.step(["ping"]).blocked is False
        assert server.step([]).outputs == frozenset({"pong"})
        # Back at round 0.
        from repro.legacy import Instrumentation

        with server.instrumented(Instrumentation.FULL, live=False):
            assert server.monitor_state() == "ready0"

    def test_chain_length_validated(self):
        with pytest.raises(ModelError):
            chain_server(0)
