"""Smoke tests: every example script runs to completion.

The examples double as executable documentation; each carries its own
assertions, so running their ``main()`` verifies the documented
narrative end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "railcab_convoy",
    "pattern_verification",
    "learning_comparison",
    "multi_legacy_convoy",
    "incremental_integration",
    "automotive_acc",
    "legacy_rehosting",
]


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    previous = sys.modules.get(spec.name)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        if previous is not None:
            sys.modules[spec.name] = previous
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_quickstart_narrative(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "verdict: proven" in out
    assert "verdict: real-violation" in out


def test_railcab_narrative(capsys):
    load_example("railcab_convoy").main()
    out = capsys.readouterr().out
    assert "Initial behavior synthesis" in out
    assert "Listing 1.1 shape" in out
    assert "shuttle2.convoyProposal!, shuttle1.convoyProposal?" in out
    assert "Figure 7 shape" in out


def test_learning_comparison_table(capsys):
    load_example("learning_comparison").main()
    out = capsys.readouterr().out
    assert "L*: member" in out
    # The "ours" column must be flat across the sweep.
    rows = [line for line in out.splitlines() if line.strip() and line.lstrip()[0].isdigit()]
    ours_tests = {line.split("|")[1].split()[1] for line in rows}
    assert len(ours_tests) == 1
