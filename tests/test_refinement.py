"""Unit tests for simulation and refinement (Definition 4, Lemmas 1–3)."""

import pytest

from repro.automata import (
    Automaton,
    Interaction,
    chaos_tolerant_labels,
    chaotic_closure,
    CHAOS_PROPOSITION,
    IncompleteAutomaton,
    InteractionUniverse,
    refinement_counterexample,
    refines,
    simulates,
    simulation_relation,
)
from repro.errors import RefinementError

A = Interaction(["a"], None)
B = Interaction(None, ["b"])


def machine(transitions, *, initial="s", labels=None, name="M") -> Automaton:
    return Automaton(
        inputs={"a"},
        outputs={"b"},
        transitions=transitions,
        initial=[initial],
        labels=labels or {},
        name=name,
    )


class TestSimulation:
    def test_identical_machines_simulate(self):
        spec = machine([("s", A, "t"), ("t", B, "s")])
        impl = machine([("s", A, "t"), ("t", B, "s")])
        assert simulates(spec, impl)

    def test_smaller_machine_is_simulated(self):
        spec = machine([("s", A, "t"), ("t", B, "s"), ("s", B, "s")])
        impl = machine([("s", A, "t"), ("t", B, "s")])
        assert simulates(spec, impl)
        assert not simulates(impl, spec)

    def test_labels_must_match(self):
        spec = machine([("s", A, "t")], labels={"s": {"p"}})
        impl = machine([("s", A, "t")], labels={})
        assert not simulates(spec, impl)

    def test_simulation_relation_contents(self):
        spec = machine([("s", A, "t"), ("t", B, "s")])
        impl = machine([("s", A, "t"), ("t", B, "s")])
        relation = simulation_relation(impl, spec)
        assert ("s", "s") in relation
        assert ("t", "t") in relation

    def test_signal_mismatch_rejected(self):
        other = Automaton(inputs={"x"}, outputs={"b"}, initial=["s"])
        with pytest.raises(RefinementError, match="identical signal sets"):
            simulates(machine([]), other)


class TestRefinement:
    def test_reflexive(self):
        m = machine([("s", A, "t"), ("t", B, "s")])
        assert refines(m, m)

    def test_restricting_choices_is_a_refinement(self):
        # Spec allows a or b at s; impl only ever takes a.  Deadlock
        # condition: impl refuses b at s — the spec must be able to
        # refuse it too, which it cannot (b is always enabled), so this
        # is NOT a refinement in the reactivity-preserving sense.
        spec = machine([("s", A, "s"), ("s", B, "s")])
        impl = machine([("s", A, "s")])
        assert not refines(impl, spec)

    def test_nondeterministic_spec_absorbs_refusals(self):
        # Spec has two initial states: one offering a-and-b, one only a.
        # The impl refusing b is matched by the second spec state.
        spec = Automaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s1", A, "s1"), ("s1", B, "s1"), ("s2", A, "s2")],
            initial=["s1", "s2"],
            name="spec",
        )
        impl = machine([("s", A, "s")])
        assert refines(impl, spec)

    def test_extra_impl_behavior_breaks_refinement(self):
        spec = machine([("s", A, "s")])
        impl = machine([("s", A, "s"), ("s", B, "s")])
        assert not refines(impl, spec)

    def test_label_mismatch_breaks_refinement(self):
        spec = machine([("s", A, "t")], labels={"t": {"p"}})
        impl = machine([("s", A, "t")], labels={"t": {"q"}})
        assert not refines(impl, spec)

    def test_counterexample_for_extra_behavior(self):
        spec = machine([("s", A, "s")])
        impl = machine([("s", A, "s"), ("s", B, "s")])
        witness = refinement_counterexample(impl, spec)
        assert witness is not None
        assert witness.trace[-1] == B

    def test_counterexample_none_when_refining(self):
        m = machine([("s", A, "t")])
        assert refinement_counterexample(m, m) is None

    def test_deadlock_preservation_lemma1(self):
        # Lemma 1: spec deadlock-free + refinement => impl deadlock-free.
        spec = machine([("s", A, "t"), ("t", B, "s")])
        impl_with_deadlock = machine([("s", A, "t")])  # t deadlocks
        # The deadlock run of impl at t (e.g. refusing everything) cannot
        # be matched by spec state t which offers B... unless spec can
        # refuse B somewhere trace-equivalent. It cannot:
        assert not refines(impl_with_deadlock, spec)

    def test_custom_universe_limits_refusal_candidates(self):
        spec = machine([("s", A, "s"), ("s", B, "s")])
        impl = machine([("s", A, "s")])
        # If only interaction A is considered, the refusal of B is
        # invisible and the (condition-1-only) check passes.
        assert refines(impl, spec, universe=[A])


class TestChaosTolerantLabels:
    def test_closure_is_abstraction_of_any_conforming_impl(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        incomplete = IncompleteAutomaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", A, "t")],
            initial=["s"],
            labels={"s": {"p"}, "t": {"q"}},
            name="learned",
        )
        closure = chaotic_closure(incomplete, universe)
        impl = machine(
            [("s", A, "t"), ("t", B, "s")],
            labels={"s": {"p"}, "t": {"q"}},
        )
        match = chaos_tolerant_labels(CHAOS_PROPOSITION)
        assert refines(impl, closure, label_match=match, universe=universe)

    def test_exact_labels_fail_against_chaos(self):
        universe = InteractionUniverse.singletons({"a"}, {"b"})
        incomplete = IncompleteAutomaton(
            inputs={"a"}, outputs={"b"}, initial=["s"], name="learned"
        )
        closure = chaotic_closure(incomplete, universe)
        impl = machine([("s", A, "t")], labels={"t": {"q"}})
        assert not refines(impl, closure, universe=universe)

    def test_chaos_tolerant_matcher_semantics(self):
        match = chaos_tolerant_labels("chaos")
        assert match(frozenset({"x"}), frozenset({"chaos"}))
        assert match(frozenset({"x"}), frozenset({"x"}))
        assert not match(frozenset({"x"}), frozenset({"y"}))
