"""Live progress events: name contract, emitter fan-out, the sinks.

Progress-event names and payload fields are a stable contract exactly
like span names (``docs/observability.md``): a service streaming
``CallbackProgressSink`` events and the flight recorder's blackbox
dumps both key off them, so the tests pin the exact vocabulary and the
payload fields of every event kind the loop emits.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import railcab
from repro.errors import SynthesisError
from repro.obs import (
    PROGRESS_EVENT_NAMES,
    CallbackProgressSink,
    JsonlProgressSink,
    ProgressEmitter,
    ProgressEvent,
    TtyProgressSink,
)
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer


def _run_with_sink(sink, **settings_kwargs):
    result = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=SynthesisSettings(progress=sink, **settings_kwargs),
    ).run()
    return result


class TestEventContract:
    def test_vocabulary_is_pinned(self):
        # Renaming or removing an event is an API break; adding one
        # means updating docs/observability.md and this set together.
        assert PROGRESS_EVENT_NAMES == {
            "loop.started",
            "iteration.started",
            "phase.finished",
            "iteration.finished",
            "verdict.reached",
            "quarantine.admitted",
            "test.retry",
            "test.timeout",
            "test.inconclusive",
            "anomaly.recorded",
            "component.spawn",
            "component.kill",
            "component.respawn",
            "component.violation",
        }

    def test_loop_emits_only_contract_names_in_order(self):
        events: list[ProgressEvent] = []
        result = _run_with_sink(CallbackProgressSink(events.append))
        assert result.verdict is Verdict.PROVEN
        assert events, "no progress events emitted"
        assert {e.name for e in events} <= PROGRESS_EVENT_NAMES
        # A healthy proven run touches the core lifecycle events.
        assert {e.name for e in events} >= {
            "loop.started",
            "iteration.started",
            "phase.finished",
            "iteration.finished",
            "verdict.reached",
        }
        assert [e.seq for e in events] == list(range(len(events)))
        # Under REPRO_REMOTE the synthesizer re-hosts the component at
        # construction, so a component.spawn may precede loop.started.
        assert events[0].name in ("loop.started", "component.spawn")
        assert events[-1].name == "verdict.reached"

    def test_event_payloads(self):
        events: list[ProgressEvent] = []
        result = _run_with_sink(CallbackProgressSink(events.append))
        by_name = {}
        for event in events:
            by_name.setdefault(event.name, event)

        started = by_name["loop.started"].payload
        assert started["synthesizer"] == "IntegrationSynthesizer"
        assert started["incremental"] is True

        phase = by_name["phase.finished"].payload
        assert phase["phase"] == "verify"
        assert {"iteration", "property_holds", "deadlock_free", "composed_states"} <= set(phase)

        finished = by_name["iteration.finished"].payload
        assert {
            "iteration",
            "property_holds",
            "deadlock_free",
            "tests_executed",
            "knowledge_gained",
            "quarantine_size",
        } <= set(finished)

        verdict = by_name["verdict.reached"].payload
        assert verdict["verdict"] == Verdict.PROVEN.value
        assert verdict["iterations"] == result.iteration_count

        # Every payload must survive the deterministic wire encoding.
        for event in events:
            decoded = json.loads(event.encode())
            assert decoded["event"] == event.name
            assert decoded["seq"] == event.seq

    def test_multi_loop_emits_components(self):
        events: list[ProgressEvent] = []
        result = MultiLegacySynthesizer(
            None,
            [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=1)],
            railcab.PATTERN_CONSTRAINT,
            labelers={
                "frontShuttle": railcab.front_state_labeler,
                "rearShuttle": railcab.rear_state_labeler,
            },
            settings=SynthesisSettings(progress=CallbackProgressSink(events.append)),
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert {e.name for e in events} <= PROGRESS_EVENT_NAMES
        started = next(e for e in events if e.name == "loop.started")
        assert started.payload["synthesizer"] == "MultiLegacySynthesizer"
        assert started.payload["components"] == ["frontShuttle", "rearShuttle"]
        assert events[-1].name == "verdict.reached"


class TestEmitter:
    def test_empty_emitter_is_falsy_and_inert(self):
        emitter = ProgressEmitter()
        assert not emitter
        emitter.emit("iteration.started", iteration=0)  # must not raise

    def test_fan_out_shares_one_sequence(self):
        left: list[ProgressEvent] = []
        right: list[ProgressEvent] = []
        emitter = ProgressEmitter(
            CallbackProgressSink(left.append), CallbackProgressSink(right.append)
        )
        assert emitter
        emitter.emit("loop.started", synthesizer="x")
        emitter.emit("verdict.reached", verdict="proven")
        assert [e.seq for e in left] == [0, 1]
        assert left == right  # the same event objects reach every observer
        assert left[0] is right[0]

    def test_none_and_disabled_observers_are_dropped(self):
        class Disabled:
            enabled = False

            def emit(self, event):  # pragma: no cover - must never run
                raise AssertionError("disabled observer received an event")

        assert not ProgressEmitter(None, Disabled())

    def test_callback_sink_requires_callable(self):
        with pytest.raises(TypeError, match="callable"):
            CallbackProgressSink(42)

    def test_callback_exceptions_propagate(self):
        def broken(event):
            raise RuntimeError("consumer died")

        emitter = ProgressEmitter(CallbackProgressSink(broken))
        with pytest.raises(RuntimeError, match="consumer died"):
            emitter.emit("loop.started")


class TestSinks:
    def test_jsonl_sink_writes_deterministic_lines(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        sink = JsonlProgressSink(path)
        _run_with_sink(sink)
        sink.close()
        lines = path.read_text().splitlines()
        assert lines
        decoded = [json.loads(line) for line in lines]
        assert decoded[0]["event"] in ("loop.started", "component.spawn")
        assert decoded[-1]["event"] == "verdict.reached"
        assert [entry["seq"] for entry in decoded] == list(range(len(decoded)))
        # Sorted-key compact encoding: re-encoding reproduces the line.
        for line, entry in zip(lines, decoded):
            assert line == json.dumps(entry, sort_keys=True, separators=(",", ":"))

    def test_jsonl_sink_borrowed_stream_stays_open(self):
        stream = io.StringIO()
        sink = JsonlProgressSink(stream)
        sink.emit(ProgressEvent("loop.started", 0, {}))
        sink.close()
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"event": "loop.started", "seq": 0}

    def test_tty_sink_renders_status_and_verdict(self):
        stream = io.StringIO()
        result = _run_with_sink(TtyProgressSink(stream))
        output = stream.getvalue()
        assert "\r" in output
        assert "quarantine" in output
        final = output.rstrip("\n").rsplit("\r", 1)[-1]
        assert final.startswith(
            f"verdict proven after {result.iteration_count} iteration(s)"
        )
        assert output.endswith("\n")

    def test_tty_close_flushes_pending_line(self):
        stream = io.StringIO()
        sink = TtyProgressSink(stream)
        sink.emit(ProgressEvent("iteration.started", 0, {"iteration": 0}))
        assert not stream.getvalue().endswith("\n")
        sink.close()
        assert stream.getvalue().endswith("\n")
        sink.close()  # idempotent


class TestSettingsValidation:
    def test_progress_must_have_emit(self):
        with pytest.raises(SynthesisError, match="progress must provide emit"):
            SynthesisSettings(progress=42)

    def test_progress_does_not_affect_equality(self):
        plain = SynthesisSettings()
        sinked = SynthesisSettings(progress=CallbackProgressSink(lambda e: None))
        assert plain == sinked
