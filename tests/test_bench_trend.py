"""``tools/bench_trend.py``: trend points, windows, regression flags.

The acceptance property: a synthetic regression planted in a fixture
trend is flagged (exit 1 naming the metric), while the repository's own
recorded trajectory — the committed ``BENCH_loop.json`` appended
repeatedly — passes clean.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "tools" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_trend)


def _report(**overrides) -> dict:
    """A minimal healthy bench report with every tracked section."""
    report = {
        "machine": {"cpu": "test-cpu", "python": "3.12.0", "system": "Linux"},
        "headline": {"speedup_min": 3.2, "speedup_median": 3.5},
        "dense": {"dense_vs_dict_speedup_min": 9.0, "k4_vs_k1_best_paired": 1.1},
        "dense_product": {
            "dense_vs_dict_best_paired": 1.9,
            "k4_vs_k1_best_paired": 1.05,
        },
        "checker_sharded": {
            "k1_vs_sequential_best_paired": 1.2,
            "k4_vs_k1_speedup_min": 1.0,
        },
        "robust": {"robust_overhead_fraction": 0.004},
        "traced": {
            "null_tracer_overhead_fraction": 0.003,
            "jsonl_tracer_overhead_fraction": 0.04,
        },
        "flight": {
            "null_flight_overhead_fraction": 0.0002,
            "active_flight_overhead_fraction": 0.002,
        },
    }
    for dotted, value in overrides.items():
        section, key = dotted.split(".", 1)
        report[section][key] = value
    return report


def _write(tmp_path, name, report) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def _seed_history(tmp_path, trend, count=3):
    for index in range(count):
        path = _write(tmp_path, f"good-{index}.json", _report())
        code = bench_trend.main([path, "--trend", str(trend), "--rev", f"rev-{index}"])
        assert code == 0
    return trend


class TestAppend:
    def test_appends_points_keyed_by_revision(self, tmp_path):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend, count=2)
        recorded = json.loads(trend.read_text())
        assert recorded["schema"] == bench_trend.TREND_SCHEMA
        assert [p["revision"] for p in recorded["points"]] == ["rev-0", "rev-1"]
        point = recorded["points"][0]
        assert point["machine"]["cpu"] == "test-cpu"
        assert point["sections"]["dense"]["dense_vs_dict_speedup_min"] == 9.0
        assert point["sections"]["flight"]["null_flight_overhead_fraction"] == 0.0002

    def test_rerun_on_same_revision_replaces_the_point(self, tmp_path):
        trend = tmp_path / "trend.json"
        first = _write(tmp_path, "a.json", _report())
        redo = _write(tmp_path, "b.json", _report(**{"dense.dense_vs_dict_speedup_min": 9.5}))
        assert bench_trend.main([first, "--trend", str(trend), "--rev", "same"]) == 0
        assert bench_trend.main([redo, "--trend", str(trend), "--rev", "same"]) == 0
        points = json.loads(trend.read_text())["points"]
        assert len(points) == 1
        assert points[0]["sections"]["dense"]["dense_vs_dict_speedup_min"] == 9.5

    def test_unusable_report_exits_2(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        missing = str(tmp_path / "absent.json")
        assert bench_trend.main([missing, "--trend", str(trend)]) == 2
        empty = _write(tmp_path, "empty.json", {"benchmarks": {}})
        assert bench_trend.main([empty, "--trend", str(trend)]) == 2
        err = capsys.readouterr().err
        assert "no such file" in err
        assert "no tracked metrics" in err


class TestRegressionCheck:
    def test_insufficient_history_passes(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        path = _write(tmp_path, "only.json", _report())
        assert bench_trend.main([path, "--trend", str(trend), "--rev", "r0"]) == 0
        assert "regression check skipped" in capsys.readouterr().out

    def test_synthetic_speedup_regression_is_flagged(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        bad = _write(
            tmp_path, "bad.json", _report(**{"dense.dense_vs_dict_speedup_min": 4.0})
        )
        code = bench_trend.main([bad, "--trend", str(trend), "--rev", "regressed"])
        assert code == 1
        err = capsys.readouterr().err
        assert "dense.dense_vs_dict_speedup_min" in err
        assert "fell below" in err
        assert "trace_report.py --diff" in err  # the attribution pointer

    def test_synthetic_overhead_regression_is_flagged(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        bad = _write(
            tmp_path, "bad.json", _report(**{"robust.robust_overhead_fraction": 0.08})
        )
        assert bench_trend.main([bad, "--trend", str(trend), "--rev", "regressed"]) == 1
        err = capsys.readouterr().err
        assert "robust.robust_overhead_fraction" in err
        assert "climbed above" in err

    def test_fraction_noise_within_absolute_slack_passes(self, tmp_path):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        # 0.004 -> 0.008 is a 2x relative climb but only +0.004 absolute
        # — inside the FRACTION_SLACK band, so not a page.
        noisy = _write(
            tmp_path, "noisy.json", _report(**{"robust.robust_overhead_fraction": 0.008})
        )
        assert bench_trend.main([noisy, "--trend", str(trend), "--rev", "noisy"]) == 0

    def test_tolerated_drift_passes(self, tmp_path):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        drift = _write(
            tmp_path, "drift.json", _report(**{"dense.dense_vs_dict_speedup_min": 8.0})
        )
        assert bench_trend.main([drift, "--trend", str(trend), "--rev", "drift"]) == 0

    def test_different_machine_never_compares(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        other = _report(**{"dense.dense_vs_dict_speedup_min": 1.0})
        other["machine"] = {"cpu": "other-cpu", "python": "3.12.0", "system": "Linux"}
        path = _write(tmp_path, "other.json", other)
        assert bench_trend.main([path, "--trend", str(trend), "--rev", "elsewhere"]) == 0
        assert "regression check skipped" in capsys.readouterr().out

    def test_no_check_skips_and_check_only_rechecks(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend)
        bad = _write(
            tmp_path, "bad.json", _report(**{"dense.dense_vs_dict_speedup_min": 4.0})
        )
        assert bench_trend.main([bad, "--trend", str(trend), "--rev", "r", "--no-check"]) == 0
        capsys.readouterr()
        assert bench_trend.main(["--check-only", "--trend", str(trend)]) == 1
        assert "dense.dense_vs_dict_speedup_min" in capsys.readouterr().err

    def test_real_repository_trajectory_passes(self, tmp_path):
        # The committed BENCH_loop.json replayed as its own history
        # must never self-flag: identical points sit exactly on the
        # window median.
        trend = tmp_path / "trend.json"
        real = str(REPO_ROOT / "BENCH_loop.json")
        for index in range(3):
            code = bench_trend.main([real, "--trend", str(trend), "--rev", f"real-{index}"])
            assert code == 0


class TestRendering:
    def test_trend_table_lists_revisions(self, tmp_path, capsys):
        trend = tmp_path / "trend.json"
        _seed_history(tmp_path, trend, count=2)
        out = capsys.readouterr().out
        assert "revision" in out
        assert "rev-0" in out and "rev-1" in out
        assert "9.00x" in out  # the dense column

    def test_median_helper(self):
        assert bench_trend.median([3.0]) == 3.0
        assert bench_trend.median([1.0, 2.0, 9.0]) == 2.0
        assert bench_trend.median([1.0, 3.0]) == 2.0
