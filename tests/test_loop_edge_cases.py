"""Edge-case coverage for the synthesis loops (single and multi)."""

import pytest

from repro.automata import Automaton, Interaction
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.synthesis import (
    IntegrationSynthesizer,
    MultiLegacySynthesizer,
    Verdict,
)


def dispatcher() -> Automaton:
    """A context coordinating two workers with disjoint interfaces."""
    return Automaton(
        inputs={"done1", "done2"},
        outputs={"task1", "task2"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("task1",), "wait1"),
            ("wait1", ("done1",), (), "phase2"),
            ("wait1", (), (), "wait1"),
            ("phase2", (), ("task2",), "wait2"),
            ("wait2", ("done2",), (), "idle"),
            ("wait2", (), (), "wait2"),
        ],
        initial=["idle"],
        labels={
            "idle": {"disp.idle"},
            "wait1": {"disp.waiting"},
            "phase2": {"disp.phase2"},
            "wait2": {"disp.waiting"},
        },
        name="dispatcher",
    )


def worker(index: int, *, lazy: bool = False) -> LegacyComponent:
    task, done = f"task{index}", f"done{index}"
    transitions = [
        ("idle", (task,), (), "working"),
        ("idle", (), (), "idle"),
    ]
    if lazy:
        transitions.append(("working", (), (), "working"))  # never reports done
    else:
        transitions.append(("working", (), (done,), "idle"))
    hidden = Automaton(
        inputs={task},
        outputs={done},
        transitions=transitions,
        initial=["idle"],
        name=f"worker{index}",
    )
    return LegacyComponent(hidden, name=f"worker{index}")


RESPONSE = parse("AG (disp.waiting -> AF[1,4] (disp.phase2 or disp.idle))")


class TestThreePartyMulti:
    def test_context_plus_two_workers_proven(self):
        result = MultiLegacySynthesizer(
            dispatcher(),
            [worker(1), worker(2)],
            RESPONSE,
            labelers={
                "worker1": lambda s: {f"w1.{s}"},
                "worker2": lambda s: {f"w2.{s}"},
            },
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert set(result.final_models) == {"worker1", "worker2"}

    def test_lazy_second_worker_detected(self):
        result = MultiLegacySynthesizer(
            dispatcher(),
            [worker(1), worker(2, lazy=True)],
            RESPONSE,
            labelers={
                "worker1": lambda s: {f"w1.{s}"},
                "worker2": lambda s: {f"w2.{s}"},
            },
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION

    def test_only_faulty_worker_blamed_in_learning(self):
        result = MultiLegacySynthesizer(
            dispatcher(),
            [worker(1), worker(2, lazy=True)],
            RESPONSE,
            labelers={
                "worker1": lambda s: {f"w1.{s}"},
                "worker2": lambda s: {f"w2.{s}"},
            },
        ).run()
        # Both models were learned; the witness involves worker2's
        # refusal to report done2.
        witness = result.violation_witness
        assert witness is not None


class TestConservativeDeadlockProbing:
    def test_conservative_mode_converges_on_probes(self):
        # The halting server requires many probe-refusals; the literal
        # Definition 12 mode adds them one at a time yet still converges.
        hidden = Automaton(
            inputs={"ping"},
            outputs={"pong"},
            transitions=[
                ("ready", ("ping",), (), "busy"),
                ("ready", (), (), "ready"),
                ("busy", (), ("pong",), "halt"),
            ],
            initial=["ready"],
            name="server",
        )
        client = Automaton(
            inputs={"pong"},
            outputs={"ping"},
            transitions=[
                ("idle", (), (), "idle"),
                ("idle", (), ("ping",), "waiting"),
                ("waiting", ("pong",), (), "idle"),
                ("waiting", (), (), "waiting"),
            ],
            initial=["idle"],
            labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
            name="client",
        )
        result = IntegrationSynthesizer(
            client,
            LegacyComponent(hidden, name="server"),
            parse("AG (client.waiting -> AF[1,3] client.idle)"),
            labeler=lambda s: {f"server.{s}"},
            refusal_mode="conservative",
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "deadlock"


class TestContextStuck:
    def test_context_deadlock_is_real_regardless_of_component(self):
        stuck_context = Automaton(
            inputs={"pong"},
            outputs={"ping"},
            transitions=[("start", (), ("ping",), "dead")],  # dead has no moves
            initial=["start"],
            labels={"start": {"ctx.start"}},
            name="stuckContext",
        )
        server = Automaton(
            inputs={"ping"},
            outputs={"pong"},
            transitions=[
                ("ready", ("ping",), (), "busy"),
                ("ready", (), (), "ready"),
                ("busy", (), ("pong",), "ready"),
            ],
            initial=["ready"],
            name="server",
        )
        result = IntegrationSynthesizer(
            stuck_context,
            LegacyComponent(server, name="server"),
            parse("AG true"),
            labeler=lambda s: {f"server.{s}"},
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind == "deadlock"


class TestRefutedChaoticDeadlock:
    def test_s_delta_artifact_refuted_by_known_reaction(self):
        # A component that always answers: chaotic s_delta deadlocks are
        # systematically refuted and the loop ends in a proof.
        hidden = Automaton(
            inputs={"ping"},
            outputs={"pong"},
            transitions=[
                ("ready", ("ping",), ("pong",), "ready"),
                ("ready", (), (), "ready"),
            ],
            initial=["ready"],
            name="echo",
        )
        client = Automaton(
            inputs={"pong"},
            outputs={"ping"},
            transitions=[
                ("idle", (), (), "idle"),
                ("idle", (), ("ping",), "idle"),
            ],
            initial=["idle"],
            labels={"idle": {"client.idle"}},
            name="client",
        )
        # The client emits ping and expects the pong in the same period:
        # the echo component does exactly that (simultaneous interaction).
        from repro.legacy import interface_of

        component = LegacyComponent(hidden, name="echo")
        result = IntegrationSynthesizer(
            client.replace(
                transitions=[
                    ("idle", (), (), "idle"),
                    ("idle", ("pong",), ("ping",), "idle"),
                ]
            ),
            component,
            parse("AG not deadlock"),
            universe=interface_of(component).universe(allow_simultaneous=True),
            labeler=lambda s: {f"echo.{s}"},
        ).run()
        assert result.verdict is Verdict.PROVEN
