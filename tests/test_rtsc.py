"""Unit tests for Real-Time Statecharts: model, clocks, unfolding."""

import pytest

from repro.automata import IDLE, Interaction
from repro.errors import ModelError
from repro.rtsc import (
    ClockConstraint,
    Statechart,
    TRUE_CONSTRAINT,
    advance,
    default_labeler,
    reset,
    unfold,
    validate,
)


class TestClockConstraint:
    def test_trivial_constraint(self):
        assert TRUE_CONSTRAINT.is_trivial
        assert TRUE_CONSTRAINT.satisfied_by({})
        assert str(TRUE_CONSTRAINT) == "true"

    def test_bounds_satisfaction(self):
        constraint = ClockConstraint.between("c", 2, 4)
        assert not constraint.satisfied_by({"c": 1})
        assert constraint.satisfied_by({"c": 2})
        assert constraint.satisfied_by({"c": 4})
        assert not constraint.satisfied_by({"c": 5})

    def test_missing_clock_defaults_to_zero(self):
        assert ClockConstraint.at_most("c", 3).satisfied_by({})
        assert not ClockConstraint.at_least("c", 1).satisfied_by({})

    def test_at_least_unbounded_above(self):
        constraint = ClockConstraint.at_least("c", 2)
        assert constraint.satisfied_by({"c": 1000})

    def test_conjoin_tightens(self):
        combined = ClockConstraint.at_least("c", 1).conjoin(ClockConstraint.at_most("c", 3))
        assert combined.bounds["c"] == (1, 3)

    def test_conjoin_unsatisfiable_rejected(self):
        with pytest.raises(ModelError, match="unsatisfiable"):
            ClockConstraint.at_least("c", 5).conjoin(ClockConstraint.at_most("c", 2))

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ModelError):
            ClockConstraint({"c": (3, 1)})
        with pytest.raises(ModelError):
            ClockConstraint({"c": (-1, 2)})

    def test_max_constant(self):
        assert ClockConstraint.between("c", 2, 7).max_constant() == 7
        assert TRUE_CONSTRAINT.max_constant() == 0

    def test_str_forms(self):
        assert str(ClockConstraint.at_most("c", 3)) == "c <= 3"
        assert str(ClockConstraint.at_least("c", 2)) == "c >= 2"
        assert str(ClockConstraint.between("c", 2, 2)) == "c == 2"

    def test_advance_and_reset_helpers(self):
        valuation = {"c": 1, "d": 4}
        assert advance(valuation, cap=3) == {"c": 2, "d": 3}
        assert reset(valuation, ["c"]) == {"c": 0, "d": 4}


class TestStatechartModel:
    def test_duplicate_location_rejected(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        with pytest.raises(ModelError, match="already has a location"):
            chart.location("a")

    def test_two_initial_top_locations_rejected(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        with pytest.raises(ModelError, match="already has the initial"):
            chart.location("b", initial=True)

    def test_location_path(self):
        chart = Statechart("sc")
        outer = chart.location("outer", initial=True)
        inner = chart.location("inner", parent=outer, initial=True)
        assert inner.path == "outer::inner"
        assert outer.initial_leaf() is inner

    def test_invalid_location_name(self):
        chart = Statechart("sc")
        with pytest.raises(ModelError, match="invalid location name"):
            chart.location("a::b")

    def test_trigger_must_be_declared(self):
        chart = Statechart("sc", inputs={"m"})
        a = chart.location("a", initial=True)
        with pytest.raises(ModelError, match="not an input"):
            chart.transition(a, a, trigger="other")

    def test_raised_must_be_declared(self):
        chart = Statechart("sc", outputs={"m"})
        a = chart.location("a", initial=True)
        with pytest.raises(ModelError, match="not an output"):
            chart.transition(a, a, raised="other")

    def test_undeclared_clock_rejected(self):
        chart = Statechart("sc")
        a = chart.location("a", initial=True)
        with pytest.raises(ModelError, match="undeclared clock"):
            chart.transition(a, a, guard=ClockConstraint.at_least("c", 1))

    def test_foreign_location_rejected(self):
        chart_a = Statechart("a")
        chart_b = Statechart("b")
        loc_a = chart_a.location("s", initial=True)
        loc_b = chart_b.location("s", initial=True)
        with pytest.raises(ModelError, match="does not belong"):
            chart_a.transition(loc_a, loc_b)

    def test_overlapping_inputs_outputs_rejected(self):
        with pytest.raises(ModelError, match="overlap"):
            Statechart("sc", inputs={"m"}, outputs={"m"})

    def test_max_clock_constant(self):
        chart = Statechart("sc", clocks={"c"})
        a = chart.location("a", initial=True, invariant=ClockConstraint.at_most("c", 5))
        chart.transition(a, a, guard=ClockConstraint.at_least("c", 3), resets={"c"})
        assert chart.max_clock_constant() == 5


class TestUnfold:
    def test_untimed_chart_unfolds_to_leaf_states(self):
        chart = Statechart("sc", inputs={"go"}, outputs={"done"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, trigger="go")
        chart.transition(b, a, raised="done")
        automaton = unfold(chart)
        assert automaton.states == frozenset({"a", "b"})
        assert automaton.initial == frozenset({"a"})

    def test_idle_self_loops_added(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        automaton = unfold(chart)
        assert any(t.interaction == IDLE and t.target == "a" for t in automaton.transitions)

    def test_hierarchy_flattened_with_outer_transitions(self):
        chart = Statechart("sc", inputs={"abort"})
        outer = chart.location("outer", initial=True)
        inner1 = chart.location("one", parent=outer, initial=True)
        inner2 = chart.location("two", parent=outer)
        safe = chart.location("safe")
        chart.transition(inner1, inner2)
        chart.transition(outer, safe, trigger="abort")  # applies in any substate
        automaton = unfold(chart)
        for source in ("outer::one", "outer::two"):
            assert any(
                t.source == source and t.target == "safe" and t.inputs == frozenset({"abort"})
                for t in automaton.transitions
            )

    def test_entering_composite_goes_to_initial_leaf(self):
        chart = Statechart("sc", inputs={"go"})
        a = chart.location("a", initial=True)
        outer = chart.location("outer")
        chart.location("first", parent=outer, initial=True)
        chart.transition(a, outer, trigger="go")
        automaton = unfold(chart)
        assert "outer::first" in automaton.states

    def test_default_labels(self):
        chart = Statechart("role")
        outer = chart.location("mode", initial=True)
        chart.location("sub", parent=outer, initial=True)
        automaton = unfold(chart)
        assert automaton.labels("mode::sub") == frozenset({"role.mode", "role.mode::sub"})

    def test_custom_labeler(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        automaton = unfold(chart, labeler=lambda leaf: {"custom"})
        assert automaton.labels("a") == frozenset({"custom"})

    def test_clock_states_capped(self):
        chart = Statechart("sc", outputs={"t"}, clocks={"c"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="t", guard=ClockConstraint.at_least("c", 2))
        automaton = unfold(chart)
        # cap = max constant + 1 = 3: a|c=0..3 then saturates.
        a_states = {s for s in automaton.states if str(s).startswith("a|")}
        assert a_states == {"a|c=0", "a|c=1", "a|c=2", "a|c=3"}

    def test_invariant_forces_transition(self):
        chart = Statechart("sc", outputs={"fire"}, clocks={"c"})
        a = chart.location("a", initial=True, invariant=ClockConstraint.at_most("c", 1))
        b = chart.location("b")
        chart.transition(a, b, raised="fire", guard=ClockConstraint.at_least("c", 1), resets={"c"})
        automaton = unfold(chart)
        # At a|c=1 idling to c=2 violates the invariant: only fire remains.
        transitions = automaton.transitions_from("a|c=1")
        assert all(t.outputs == frozenset({"fire"}) for t in transitions)

    def test_unsatisfiable_deadline_deadlocks(self):
        # Invariant forbids staying but no transition can ever fire: the
        # configuration deadlocks (a missed deadline).
        chart = Statechart("sc", outputs={"fire"}, clocks={"c"})
        a = chart.location("a", initial=True, invariant=ClockConstraint.at_most("c", 0))
        b = chart.location("b")
        chart.transition(a, b, raised="fire", guard=ClockConstraint.at_least("c", 5))
        automaton = unfold(chart)
        assert automaton.is_deadlock("a|c=0")

    def test_guard_evaluated_before_advance(self):
        chart = Statechart("sc", outputs={"t"}, clocks={"c"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="t", guard=ClockConstraint.at_least("c", 1))
        automaton = unfold(chart)
        # From a|c=0 the guard c>=1 is not yet satisfied.
        assert all(t.interaction == IDLE for t in automaton.transitions_from("a|c=0"))

    def test_reset_applied_after_advance(self):
        chart = Statechart("sc", outputs={"t"}, clocks={"c"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="t", resets={"c"})
        automaton = unfold(chart)
        assert any(t.target == "b|c=0" for t in automaton.transitions_from("a|c=0"))


class TestValidation:
    def test_valid_chart(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        report = validate(chart)
        assert report.ok
        report.raise_on_error()

    def test_missing_initial_location(self):
        chart = Statechart("sc")
        chart.location("a")
        report = validate(chart)
        assert not report.ok
        with pytest.raises(ModelError):
            report.raise_on_error()

    def test_composite_without_initial_substate(self):
        chart = Statechart("sc")
        outer = chart.location("outer", initial=True)
        chart.location("sub", parent=outer)  # not initial
        report = validate(chart)
        assert any("no initial substate" in error for error in report.errors)

    def test_unreachable_leaf_warned(self):
        chart = Statechart("sc")
        chart.location("a", initial=True)
        chart.location("island")
        report = validate(chart)
        assert report.ok
        assert any("unreachable" in warning for warning in report.warnings)

    def test_reachable_leaves_reported(self):
        chart = Statechart("sc", inputs={"go"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, trigger="go")
        report = validate(chart)
        assert report.reachable_leaves == frozenset({"a", "b"})
