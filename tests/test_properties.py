"""Property-based tests (hypothesis) for the core invariants.

These check the paper's meta-theorems on randomly generated models:

* composition structure (Definition 3),
* the refinement preorder (Definition 4),
* Theorem 1 — chaotic closures of observation-conforming models are
  safe abstractions,
* learning preserves observation conformance and grows knowledge
  monotonically (§4.3/§4.4),
* the CCTL checker against a brute-force maximal-path semantics,
* parser/printer round trips,
* and end-to-end: the synthesis verdict always agrees with the ground
  truth obtained by model checking the context against the (secretly
  known) legacy behavior — the paper's "no false negatives, and proofs
  are real proofs" (Lemmas 5 and 6).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    Automaton,
    CHAOS_PROPOSITION,
    IncompleteAutomaton,
    Interaction,
    InteractionUniverse,
    Run,
    Transition,
    chaos_tolerant_labels,
    chaotic_closure,
    compose,
    enumerate_runs,
    refines,
)
from repro.legacy import LegacyComponent
from repro.logic import (
    AF,
    AG,
    And,
    EF,
    EG,
    Interval,
    ModelChecker,
    Not,
    Or,
    Prop,
    parse,
)
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict, learn_regular

# --------------------------------------------------------------------- strategies

# The generated servers may receive and send within the same time unit,
# so the universe must include the simultaneous interactions — Theorem 1
# presupposes that the alphabet covers the implementation's interactions.
UNIVERSE = InteractionUniverse.singletons({"ping"}, {"pong"}, allow_simultaneous=True)
INTERACTIONS = tuple(UNIVERSE)


@st.composite
def deterministic_servers(draw, max_states: int = 4) -> Automaton:
    """A strongly deterministic machine over ping/pong.

    For every state and every input set (∅ or {ping}) there is at most
    one reaction; state 0 is initial and every state is reachable by
    construction (targets are drawn from already-used states or the
    next fresh one).
    """
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    transitions: list[Transition] = []
    for state in range(n_states):
        for inputs in (frozenset(), frozenset({"ping"})):
            react = draw(st.booleans())
            if not react:
                continue
            outputs = draw(st.sampled_from([frozenset(), frozenset({"pong"})]))
            target = draw(st.integers(min_value=0, max_value=n_states - 1))
            transitions.append(
                Transition(f"q{state}", Interaction(inputs, outputs), f"q{target}")
            )
    return Automaton(
        states=[f"q{i}" for i in range(n_states)],
        inputs={"ping"},
        outputs={"pong"},
        transitions=transitions,
        initial=["q0"],
        name="random-server",
    )


def client() -> Automaton:
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )


@st.composite
def labeled_automata(draw, max_states: int = 4) -> Automaton:
    base = draw(deterministic_servers(max_states=max_states))
    labels = {
        state: frozenset(draw(st.sets(st.sampled_from(["p", "q"]), max_size=2)))
        for state in base.states
    }
    return base.replace(labels=labels)


@st.composite
def formulas(draw, depth: int = 2):
    """Formulas in the fragment the brute-force checker supports."""
    atoms = [Prop("p"), Prop("q"), parse("true"), parse("deadlock")]
    if depth == 0:
        return draw(st.sampled_from(atoms))
    kind = draw(st.sampled_from(["atom", "not", "and", "or", "AG", "AF", "EF", "EG", "bAF", "bAG"]))
    if kind == "atom":
        return draw(st.sampled_from(atoms))
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    if kind in ("and", "or"):
        left = draw(formulas(depth=depth - 1))
        right = draw(formulas(depth=depth - 1))
        return And(left, right) if kind == "and" else Or(left, right)
    operand = draw(formulas(depth=depth - 1))
    if kind == "AG":
        return AG(operand)
    if kind == "AF":
        return AF(operand)
    if kind == "EF":
        return EF(operand)
    if kind == "EG":
        return EG(operand)
    low = draw(st.integers(min_value=0, max_value=2))
    high = draw(st.integers(min_value=low, max_value=3))
    return (AF if kind == "bAF" else AG)(operand, Interval(low, high))


# ------------------------------------------------------- brute-force CTL semantics


def _maximal_paths(automaton: Automaton, state, horizon: int):
    """All maximal paths from ``state``, truncated at ``horizon``.

    A path is returned when it deadlocks or reaches the horizon; with a
    horizon beyond ``|S| * (bound+1)`` this is exact for the bounded
    fragment and for lasso detection we track visited states.
    """
    paths = []

    def extend(path):
        current = path[-1]
        successors = sorted({t.target for t in automaton.transitions_from(current)}, key=repr)
        if not successors or len(path) > horizon:
            paths.append(tuple(path))
            return
        for successor in successors:
            extend(path + [successor])

    extend([state])
    return paths


def _brute(automaton: Automaton, formula, state, horizon: int, _memo=None) -> bool:
    from repro.logic import Deadlock, FalseF, Implies, TrueF

    if _memo is None:
        _memo = {}
    key = (id(formula), state)
    if key in _memo:
        return _memo[key]
    result = _brute_eval(automaton, formula, state, horizon, _memo)
    _memo[key] = result
    return result


def _brute_eval(automaton: Automaton, formula, state, horizon: int, _memo) -> bool:
    from repro.logic import Deadlock, FalseF, Implies, TrueF

    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Prop):
        return formula.name in automaton.labels(state)
    if isinstance(formula, Deadlock):
        return automaton.is_deadlock(state)
    if isinstance(formula, Not):
        return not _brute(automaton, formula.operand, state, horizon, _memo)
    if isinstance(formula, And):
        return _brute(automaton, formula.left, state, horizon, _memo) and _brute(
            automaton, formula.right, state, horizon, _memo
        )
    if isinstance(formula, Or):
        return _brute(automaton, formula.left, state, horizon, _memo) or _brute(
            automaton, formula.right, state, horizon, _memo
        )
    if isinstance(formula, Implies):
        return (not _brute(automaton, formula.left, state, horizon, _memo)) or _brute(
            automaton, formula.right, state, horizon, _memo
        )
    paths = _maximal_paths(automaton, state, horizon)
    if isinstance(formula, (AF, AG, EF, EG)):
        if formula.interval is not None:
            low, high = formula.interval.low, formula.interval.high
            window = range(low, high + 1)
        else:
            window = None

        def positions(path):
            if window is not None:
                return [i for i in window if i < len(path)]
            return range(len(path))

        def path_has(path):
            return any(
                _brute(automaton, formula.operand, path[i], horizon, _memo)
                for i in positions(path)
            )

        def path_all(path):
            return all(
                _brute(automaton, formula.operand, path[i], horizon, _memo)
                for i in positions(path)
            )

        if isinstance(formula, AF):
            return all(path_has(p) for p in paths)
        if isinstance(formula, EF):
            return any(path_has(p) for p in paths)
        if isinstance(formula, AG):
            return all(path_all(p) for p in paths)
        return any(path_all(p) for p in paths)
    raise AssertionError(formula)


# ----------------------------------------------------------------------- the tests

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestCompositionProperties:
    @SETTINGS
    @given(deterministic_servers())
    def test_composed_transitions_project_to_component_transitions(self, server):
        composed = compose(client(), server)
        for transition in composed.transitions:
            c_src, s_src = transition.source
            c_dst, s_dst = transition.target
            assert any(
                t.target == c_dst
                and t.interaction.inputs == transition.inputs & client().inputs
                and t.interaction.outputs == transition.outputs & client().outputs
                for t in client().transitions_from(c_src)
            )
            assert any(
                t.target == s_dst
                and t.interaction.inputs == transition.inputs & server.inputs
                and t.interaction.outputs == transition.outputs & server.outputs
                for t in server.transitions_from(s_src)
            )

    @SETTINGS
    @given(deterministic_servers())
    def test_composed_labels_are_unions(self, server):
        composed = compose(client(), server)
        for state in composed.states:
            assert composed.labels(state) == client().labels(state[0]) | server.labels(state[1])

    @SETTINGS
    @given(deterministic_servers())
    def test_all_composed_states_reachable(self, server):
        from repro.automata import reachable_states

        composed = compose(client(), server)
        assert reachable_states(composed) == composed.states


class TestRefinementProperties:
    @SETTINGS
    @given(labeled_automata())
    def test_refinement_is_reflexive(self, automaton):
        assert refines(automaton, automaton)

    @SETTINGS
    @given(labeled_automata(), st.data())
    def test_removing_one_state_keeps_condition_one(self, automaton, data):
        # Simulation half: a sub-automaton (fewer transitions from a
        # removed state) is simulated; full refinement may fail on
        # refusals, so check via the chaos-tolerant... here: simulates.
        from repro.automata import simulates

        keep = data.draw(st.sampled_from(sorted(automaton.states, key=repr)))
        reduced = automaton.replace(
            transitions=[t for t in automaton.transitions if t.target != keep or t.source == keep],
        )
        assert simulates(automaton, reduced)


class TestTheorem1:
    @SETTINGS
    @given(deterministic_servers(), st.integers(min_value=0, max_value=6), st.booleans())
    def test_closure_of_learned_model_abstracts_implementation(
        self, server, run_steps, deterministic_closure
    ):
        # Learn a random run of the real machine, then check Theorem 1:
        # M_r ⊑ chaos(learn(M_l, π)).
        model = IncompleteAutomaton(
            states=server.initial,
            inputs=server.inputs,
            outputs=server.outputs,
            initial=server.initial,
            name="learned",
        )
        run = Run(next(iter(server.initial)))
        current = run.start
        for _ in range(run_steps):
            transitions = server.transitions_from(current)
            if not transitions:
                break
            transition = transitions[0]
            run = run.extend(transition.interaction, transition.target)
            current = transition.target
        model = learn_regular(model, run)
        closure = chaotic_closure(
            model, UNIVERSE, deterministic_implementation=deterministic_closure
        )
        assert refines(
            server,
            closure,
            label_match=chaos_tolerant_labels(CHAOS_PROPOSITION),
            universe=UNIVERSE,
        )

    @SETTINGS
    @given(deterministic_servers())
    def test_every_real_run_is_a_closure_run_modulo_tags(self, server):
        model = IncompleteAutomaton(
            states=server.initial,
            inputs=server.inputs,
            outputs=server.outputs,
            initial=server.initial,
            name="empty",
        )
        closure = chaotic_closure(model, UNIVERSE)
        for run in enumerate_runs(server, 3, include_deadlock_runs=False):
            # The closure must offer the same trace from some initial state.
            state_sets = set(closure.initial)
            for interaction in run.trace:
                state_sets = {
                    t.target
                    for s in state_sets
                    for t in closure.transitions_from(s)
                    if t.interaction == interaction
                }
            assert state_sets, f"trace {run.trace} not matched"


class TestLearningProperties:
    @SETTINGS
    @given(deterministic_servers(), st.integers(min_value=0, max_value=5))
    def test_learning_preserves_observation_conformance(self, server, run_steps):
        model = IncompleteAutomaton(
            states=server.initial,
            inputs=server.inputs,
            outputs=server.outputs,
            initial=server.initial,
            name="learned",
        )
        runs = [
            run
            for run in enumerate_runs(server, run_steps, include_deadlock_runs=False)
        ]
        sizes = [model.knowledge_size()]
        for run in runs[:10]:
            model = learn_regular(model, run)
            sizes.append(model.knowledge_size())
            # Observation conformance: every learned transition is real.
            for transition in model.transitions:
                assert transition in server.transitions
        assert sizes == sorted(sizes)


class TestCheckerAgainstBruteForce:
    @SETTINGS
    @given(labeled_automata(max_states=3), formulas())
    def test_checker_matches_brute_force(self, automaton, formula):
        horizon = 2 * len(automaton.states) + 6
        checker = ModelChecker(automaton)
        for state in automaton.initial:
            expected = _brute(automaton, formula, state, horizon)
            assert (state in checker.sat(formula)) == expected, (
                f"{formula} at {state}: checker={state in checker.sat(formula)}, "
                f"brute={expected}"
            )


class TestParserRoundTrip:
    @SETTINGS
    @given(formulas(depth=3))
    def test_str_reparses(self, formula):
        assert parse(str(formula)) == formula


class TestEndToEndSoundness:
    @SETTINGS
    @given(deterministic_servers(max_states=3))
    def test_synthesis_verdict_matches_ground_truth(self, server):
        """Claim C1 both ways: PROVEN ⇔ the real system satisfies φ ∧ ¬δ."""
        property = parse("AG (client.waiting -> AF[1,3] client.idle)")
        component = LegacyComponent(server, name="server")
        result = IntegrationSynthesizer(
            client(),
            component,
            property,
            universe=UNIVERSE,
            labeler=lambda s: {f"server.{s}"},
            settings=SynthesisSettings(max_iterations=200),
        ).run()

        truth = compose(client(), server)
        truth_checker = ModelChecker(truth)
        ground_truth = truth_checker.holds(property) and truth_checker.holds(
            parse("AG not deadlock")
        )
        assert result.verdict in (Verdict.PROVEN, Verdict.REAL_VIOLATION)
        assert (result.verdict is Verdict.PROVEN) == ground_truth


class TestMultiLegacySoundness:
    @SETTINGS
    @given(deterministic_servers(max_states=3), st.data())
    def test_two_random_components_verdict_matches_ground_truth(self, server, data):
        """The §7 multi-legacy loop is sound on random component pairs."""
        from repro.synthesis import MultiLegacySynthesizer

        # A mirrored random partner over the inverse alphabet.
        n_states = data.draw(st.integers(min_value=1, max_value=3))
        transitions = []
        for index in range(n_states):
            for inputs in (frozenset(), frozenset({"pong"})):
                if not data.draw(st.booleans()):
                    continue
                outputs = data.draw(st.sampled_from([frozenset(), frozenset({"ping"})]))
                target = data.draw(st.integers(min_value=0, max_value=n_states - 1))
                transitions.append(
                    Transition(f"p{index}", Interaction(inputs, outputs), f"p{target}")
                )
        partner = Automaton(
            states=[f"p{i}" for i in range(n_states)],
            inputs={"pong"},
            outputs={"ping"},
            transitions=transitions,
            initial=["p0"],
            name="random-client",
        )
        left = LegacyComponent(partner, name="left")
        right = LegacyComponent(server, name="right")
        result = MultiLegacySynthesizer(
            None,
            [left, right],
            parse("AG not deadlock"),
            universes={
                "left": InteractionUniverse.singletons(
                    {"pong"}, {"ping"}, allow_simultaneous=True
                ),
                "right": UNIVERSE,
            },
            settings=SynthesisSettings(max_iterations=300),
        ).run()
        truth = compose(partner, server, semantics="open")
        ground = ModelChecker(truth).holds(parse("AG not deadlock"))
        assert result.verdict in (Verdict.PROVEN, Verdict.REAL_VIOLATION)
        assert (result.verdict is Verdict.PROVEN) == ground
