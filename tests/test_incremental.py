"""Equivalence of the incremental verification engine with from-scratch.

The engine of :mod:`repro.automata.incremental` must be *invisible*:
for any sequence of learning steps, the incrementally maintained
chaotic closure, product, and warm-started checker have to be equal —
as automata, verdicts, and satisfaction sets — to rebuilding everything
from scratch each iteration.  Hypothesis drives random deterministic
servers through random observation/learning sequences and checks
exactly that; the end-to-end tests assert that ``incremental=True``
(the default) and ``incremental=False`` reach identical synthesis
results on the RailCab workloads.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import railcab
from repro.errors import LearningError
from repro.automata import (
    Automaton,
    IncompleteAutomaton,
    Interaction,
    InteractionUniverse,
    Run,
    Transition,
    chaotic_closure,
    compose,
    compose_all,
)
from repro.automata.incremental import ClosureCache, IncrementalProduct, IncrementalVerifier
from repro.logic import DEADLOCK_FREE, ModelChecker, parse
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict, learn
from repro.synthesis.multi import MultiLegacySynthesizer

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# --------------------------------------------------------------------- strategies

UNIVERSE = InteractionUniverse.singletons({"ping"}, {"pong"}, allow_simultaneous=True)
TICK_UNIVERSE = InteractionUniverse.singletons({"tick"}, {"tock"}, allow_simultaneous=True)


def _labeler(state) -> frozenset[str]:
    return frozenset({"p"}) if str(state) in ("q0", "q2") else frozenset({"q"})


@st.composite
def deterministic_servers(draw, *, inp: str = "ping", out: str = "pong", max_states: int = 4):
    """A strongly deterministic hidden machine (cf. test_properties)."""
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    transitions: list[Transition] = []
    for state in range(n_states):
        for inputs in (frozenset(), frozenset({inp})):
            if not draw(st.booleans()):
                continue
            outputs = draw(st.sampled_from([frozenset(), frozenset({out})]))
            target = draw(st.integers(min_value=0, max_value=n_states - 1))
            transitions.append(
                Transition(f"q{state}", Interaction(inputs, outputs), f"q{target}")
            )
    return Automaton(
        states=[f"q{i}" for i in range(n_states)],
        inputs={inp},
        outputs={out},
        transitions=transitions,
        initial=["q0"],
        name="hidden-server",
    )


def _empty_model(server: Automaton) -> IncompleteAutomaton:
    return IncompleteAutomaton(
        states=["q0"],
        inputs=server.inputs,
        outputs=server.outputs,
        transitions=(),
        refusals=(),
        initial=["q0"],
        labels={"q0": _labeler("q0")},
        name="M_l^0",
    )


@st.composite
def model_evolutions(
    draw,
    *,
    universe: InteractionUniverse = UNIVERSE,
    inp: str = "ping",
    out: str = "pong",
    min_steps: int = 1,
    max_steps: int = 5,
):
    """Successive models of one learning process, oldest first.

    Every observed run is walked on a hidden deterministic server, so
    the observations are mutually consistent (as §4.3 presupposes) and
    the evolution mirrors what the synthesis loop feeds the engine:
    regular runs grow ``T``, blocked runs grow ``T̄``.
    """
    server = draw(deterministic_servers(inp=inp, out=out))
    model = _empty_model(server)
    models = [model]
    for _ in range(draw(st.integers(min_value=min_steps, max_value=max_steps))):
        state = "q0"
        steps: list[tuple[Interaction, object]] = []
        blocked = None
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            inputs = draw(st.sampled_from([frozenset(), frozenset({inp})]))
            matching = server.transitions_on(state, inputs)
            if not matching:
                expected = draw(st.sampled_from([frozenset(), frozenset({out})]))
                blocked = Interaction(inputs, expected)
                break
            transition = matching[0]
            steps.append((transition.interaction, transition.target))
            state = transition.target
        run = Run("q0", tuple(steps), blocked=blocked)
        try:
            model = learn(model, run, labeler=_labeler, universe=universe)
        except LearningError:
            # A re-drawn observation may add nothing new; the loop
            # itself never replays such runs, so skip it here too.
            continue
        models.append(model)
    return models


def _client() -> Automaton:
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )


FORMULAS = (
    parse("AG (p or chaos)"),
    parse("AF (q or chaos)"),
    parse("EF deadlock"),
    parse("EG (p or chaos)"),
    parse("AG ((p or chaos) -> AF (q or chaos))"),
    DEADLOCK_FREE,
)


# ------------------------------------------------------------ closure and product


@SETTINGS
@given(model_evolutions())
def test_closure_cache_equals_from_scratch_closure(models):
    """Delta-maintained ``chaos(M)`` is the Definition 9 closure, always."""
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    for model in models:
        update = cache.update(model)
        assert update.closure == chaotic_closure(
            model, UNIVERSE, deterministic_implementation=True
        )
        assert update.reused_groups + update.rebuilt_groups == len(model.states)


@SETTINGS
@given(model_evolutions())
def test_incremental_product_equals_compose(models):
    """Dirty-region product re-exploration equals a full binary compose."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict")
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        assert step.automaton == compose(client, update.closure, semantics="strict")


@SETTINGS
@given(model_evolutions(), model_evolutions(universe=TICK_UNIVERSE, inp="tick", out="tock"))
def test_incremental_nary_product_equals_compose_all(models_a, models_b):
    """The n-ary (multi-legacy) product path equals ``compose_all``."""
    cache_a = ClosureCache(UNIVERSE, deterministic_implementation=True)
    cache_b = ClosureCache(TICK_UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="open")
    # Interleave the two evolutions the way the parallel loop does.
    length = max(len(models_a), len(models_b))
    for index in range(length):
        up_a = cache_a.update(models_a[min(index, len(models_a) - 1)])
        up_b = cache_b.update(models_b[min(index, len(models_b) - 1)])
        step = product.update(
            [up_a.closure, up_b.closure], [up_a.dirty_states, up_b.dirty_states]
        )
        assert step.automaton == compose_all(
            [up_a.closure, up_b.closure], semantics="open"
        )


# ------------------------------------------------------------------ warm checker


@SETTINGS
@given(model_evolutions(min_steps=3))
def test_warm_checker_equals_cold_checker(models):
    """Warm-started verdicts and sat-sets equal cold ones, step by step."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict")
    previous: ModelChecker | None = None
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        warm = ModelChecker(step.automaton, warm_from=previous, dirty_states=step.dirty_states)
        cold = ModelChecker(step.automaton)
        for formula in FORMULAS:
            assert warm.sat(formula) == cold.sat(formula), formula
            assert warm.check(formula).holds == cold.check(formula).holds
        previous = warm


@SETTINGS
@given(model_evolutions(min_steps=3))
def test_verifier_step_equals_scratch_pipeline(models):
    """The bundled engine (closure+product+checker) mirrors the loop's cold path."""
    client = _client()
    engine = IncrementalVerifier(context=client, universes=[UNIVERSE])
    for model in models:
        step = engine.step([model])
        closure = chaotic_closure(model, UNIVERSE, deterministic_implementation=True)
        composed = compose(client, closure, semantics="strict")
        assert step.closures[0] == closure
        assert step.composed == composed
        cold = ModelChecker(composed)
        for formula in FORMULAS:
            assert step.checker.sat(formula) == cold.sat(formula), formula


# -------------------------------------------------------------------- end to end


def _convoy(incremental: bool, component) -> IntegrationSynthesizer:
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        component,
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=SynthesisSettings(incremental=incremental),
    )


def test_end_to_end_correct_shuttle_matches_full():
    incr = _convoy(True, railcab.correct_rear_shuttle(convoy_ticks=3)).run()
    full = _convoy(False, railcab.correct_rear_shuttle(convoy_ticks=3)).run()
    assert incr.verdict is full.verdict is Verdict.PROVEN
    assert incr.iteration_count == full.iteration_count
    assert incr.final_model == full.final_model
    assert incr.final_closure == full.final_closure
    # The warm path must actually have been warm.
    assert sum(r.closure_groups_reused for r in incr.iterations) > 0
    assert sum(r.product_hits for r in incr.iterations) > 0
    # AG-shaped formulas are solved globally on both paths, so warm
    # fixpoint work can at best tie on this workload — never exceed.
    assert sum(r.checker_fixpoint_work for r in incr.iterations) <= sum(
        r.checker_fixpoint_work for r in full.iterations
    )


def test_end_to_end_faulty_shuttle_matches_full():
    incr = _convoy(True, railcab.faulty_rear_shuttle()).run()
    full = _convoy(False, railcab.faulty_rear_shuttle()).run()
    assert incr.verdict is full.verdict is Verdict.REAL_VIOLATION
    assert incr.iteration_count == full.iteration_count
    assert incr.final_model == full.final_model
    assert incr.violation_kind == full.violation_kind


def test_end_to_end_multi_legacy_matches_full():
    def build(incremental: bool) -> MultiLegacySynthesizer:
        return MultiLegacySynthesizer(
            None,
            [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle(convoy_ticks=2)],
            railcab.PATTERN_CONSTRAINT,
            labelers={
                "frontShuttle": railcab.front_state_labeler,
                "rearShuttle": railcab.rear_state_labeler,
            },
            settings=SynthesisSettings(incremental=incremental),
        )

    incr = build(True).run()
    full = build(False).run()
    assert incr.verdict is full.verdict is Verdict.PROVEN
    assert incr.iteration_count == full.iteration_count
    assert incr.final_models == full.final_models
