"""The scenario factory, its known-answer oracle, and the shrinker.

Covers the conformance-campaign machinery itself: generation is
deterministic and hash-seed independent, every generated scenario's
certified expectation matches independently re-derived full-composition
truth, specs survive the JSON round-trip, the config matrix agrees on a
sweep of scenarios, and the delta-debugging shrinker minimizes failing
specs while re-certifying their known answer.  The committed regression
fixtures under ``tests/fixtures/scenarios/`` are exercised in
``test_scenario_fixtures.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.testing import (
    ScenarioSpec,
    baseline_verdicts,
    build_scenario,
    ddmin,
    default_matrix,
    evaluate_scenario,
    full_matrix,
    generate_scenario,
    ground_truth,
    run_scenario,
    shrink_scenario,
    spec_fingerprint,
)

SWEEP = range(1, 25)


# ------------------------------------------------------------- generation


def test_generation_is_deterministic():
    for seed in (1, 2, 12, 17):
        first = generate_scenario(seed, profile="tiny").spec
        second = generate_scenario(seed, profile="tiny").spec
        assert first == second
        assert spec_fingerprint(first) == spec_fingerprint(second)


def test_generation_fingerprints_pinned():
    """Accidental generator drift invalidates every recorded seed (and
    any fixture's ``found.generator_seed`` provenance) — pin two."""
    assert spec_fingerprint(generate_scenario(1, profile="tiny").spec) == "41b77adc3956"
    assert spec_fingerprint(generate_scenario(12, profile="tiny").spec) == "548292da57a3"


def test_sweep_covers_the_scenario_space():
    plants, families, slot_counts, joints = set(), set(), set(), set()
    for seed in range(1, 61):
        spec = generate_scenario(seed, profile="tiny").spec
        slot_counts.add(len(spec.slots))
        joints.add(spec.joint)
        for slot in spec.slots:
            plants.add(slot.plant)
            families.add(slot.family)
    assert plants == {"conform", "overbuilt", "slow-round", "refusal", "mutant"}
    assert families == {"response", "until", "safety"}
    assert slot_counts == {1, 2, 3}
    assert joints == {False, True}


def test_certified_expectations_match_derived_truth():
    for seed in SWEEP:
        scenario = generate_scenario(seed, profile="tiny")
        truth = ground_truth(scenario)
        assert truth["scenario"] == scenario.spec.expectation, seed
        if not scenario.spec.joint:
            for slot in scenario.spec.slots:
                assert truth[slot.name] == slot.expectation, (seed, slot.name)


def test_both_answers_are_represented():
    expectations = {generate_scenario(s, profile="tiny").spec.expectation for s in SWEEP}
    assert expectations == {"proven", "violation"}


def test_spec_round_trip_rebuilds_identically():
    for seed in (3, 7, 11):
        spec = generate_scenario(seed, profile="tiny").spec
        reloaded = ScenarioSpec.from_dict(spec.to_dict())
        assert reloaded == spec
        rebuilt = build_scenario(reloaded)
        assert ground_truth(rebuilt)["scenario"] == spec.expectation


# ------------------------------------------------------ verdict agreement


def test_baseline_config_tracks_truth_on_sweep():
    for seed in SWEEP:
        scenario = generate_scenario(seed, profile="tiny")
        verdicts = run_scenario(scenario)
        assert verdicts["scenario"] == scenario.spec.expectation, seed


def test_matrix_agreement_on_slice():
    for seed in (1, 3, 5, 8, 13):
        evaluation = evaluate_scenario(generate_scenario(seed, profile="tiny"))
        assert evaluation.ok, (seed, evaluation.disagreements)
        assert {outcome.config for outcome in evaluation.outcomes} == {
            "baseline",
            "non-incremental",
            "dense-on",
            "dense-off",
            "sharded-k4",
            "chaos-mild",
        }


def test_full_matrix_is_the_sixteen_cell_cross():
    configs = full_matrix(0)
    assert len(configs) == 16
    assert len({config.name for config in configs}) == 16
    evaluation = evaluate_scenario(generate_scenario(4, profile="tiny"), configs)
    assert evaluation.ok, evaluation.disagreements


def test_joint_scenario_takes_the_joint_path():
    for seed in SWEEP:
        scenario = generate_scenario(seed, profile="tiny")
        if scenario.spec.joint and len(scenario.spec.slots) > 1:
            assert scenario.verdict_keys == ("joint",)
            verdicts = run_scenario(scenario)
            assert "joint" in verdicts
            assert verdicts["scenario"] == scenario.spec.expectation
            return
    pytest.fail("no joint scenario in sweep")


def test_bbc_cross_check_is_one_sided():
    """BBC may false-alarm (quiescence blind spot) but the campaign only
    fails on *missed* violations; L* with a perfect oracle must always
    reproduce the truth."""
    saw_false_alarm = False
    for seed in (1, 3, 12, 16):
        scenario = generate_scenario(seed, profile="tiny")
        truth = ground_truth(scenario)
        for name, row in baseline_verdicts(scenario).items():
            assert row["lstar"] == truth[name], (seed, name)
            if row["bbc_false_alarm"] == "yes":
                saw_false_alarm = True
            else:
                assert row["bbc"] == row["bbc_expected"], (seed, name)
    assert saw_false_alarm  # seed 12 exhibits it (committed as a fixture)


# --------------------------------------------------------------- shrinking


def test_ddmin_finds_minimal_failing_subset():
    items = list(range(20))
    failing = lambda subset: 3 in subset and 17 in subset
    assert sorted(ddmin(items, failing)) == [3, 17]
    # Single-element cause.
    assert ddmin(items, lambda subset: 11 in subset) == [11]
    # The whole list can be the minimum.
    assert ddmin([1, 2], lambda subset: len(subset) == 2) == [1, 2]


def test_shrink_rejects_passing_scenario():
    spec = generate_scenario(1, profile="tiny").spec
    with pytest.raises(ModelError):
        shrink_scenario(spec, lambda candidate: False)


def test_shrink_minimizes_and_recertifies():
    """Chase the seed-12 BBC false alarm down to its minimal core."""

    def bbc_false_alarm(spec):
        try:
            rows = baseline_verdicts(build_scenario(spec))
        except ModelError:
            return False
        return any(row["bbc_false_alarm"] == "yes" for row in rows.values())

    original = generate_scenario(12, profile="tiny").spec
    shrunk = shrink_scenario(original, bbc_false_alarm)
    assert bbc_false_alarm(shrunk)
    assert len(shrunk.slots) == 1
    slot = shrunk.slots[0]
    assert len(slot.hidden["transitions"]) <= len(original.slots[0].hidden["transitions"])
    assert len(slot.client["transitions"]) <= len(original.slots[0].client["transitions"])
    # Re-certified: the stamped expectation equals freshly derived truth.
    assert ground_truth(build_scenario(shrunk))["scenario"] == shrunk.expectation
    # 1-minimality: dropping any single hidden transition kills the failure.
    for index in range(len(slot.hidden["transitions"])):
        reduced = [
            transition
            for position, transition in enumerate(slot.hidden["transitions"])
            if position != index
        ]
        candidate = ScenarioSpec.from_dict(shrunk.to_dict())
        payload = dict(slot.hidden, transitions=reduced)
        candidate = ScenarioSpec.from_dict(
            {
                **shrunk.to_dict(),
                "slots": [{**slot.to_dict(), "hidden": payload}],
            }
        )
        assert not bbc_false_alarm(candidate), index


# --------------------------------------------------------- chaos soundness


def test_chaos_configs_never_give_wrong_definite_verdicts():
    """Fault-injected runs may degrade to budget-exceeded (recorded as
    ``degraded``), but a definite verdict must match the truth."""
    for seed in (2, 6, 9, 14):
        scenario = generate_scenario(seed, profile="tiny")
        evaluation = evaluate_scenario(scenario, default_matrix(seed))
        assert evaluation.ok, (seed, evaluation.disagreements)
        for entry in evaluation.degraded:
            assert "chaos" in entry, entry
