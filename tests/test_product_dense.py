"""Differential conformance harness for the dense (id-space) product BFS.

The dense regime of :class:`IncrementalProduct` — interned joint
states, flat ``array('I')`` shard frontiers, ``id % K`` ownership, and
the per-update :class:`~repro.automata.sharding.ShardCrew` — claims to
be *bit-identical* to both the legacy dict-cache exploration and
from-scratch :func:`compose` for every shard count, execution strategy,
and hash seed.  This file pins that claim the same way
``tests/test_product_sharding.py`` pins the legacy sharding: the
sequential/legacy implementation is the specification, the dense one
the implementation under test, and hypothesis drives random model
evolutions through both.

On top of bit-identical automata, the dense regime exposes two new
scheduling-independent counters — ``dense_states`` (interner size) and
``bitset_words`` — which must agree across every K: the interner's
*content* is the union of initial states and the targets of the
(K-independent) miss set, so its size cannot depend on sharding.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    Automaton,
    compose,
    compose_all,
    resolve_dense_product,
)
from repro.automata.incremental import ClosureCache, IncrementalProduct
from repro.automata.interning import DENSE_PRODUCT_ENV, DENSE_STATE_FLOOR
from repro.automata.sharding import WorkerPool
from tests.test_incremental import (
    TICK_UNIVERSE,
    UNIVERSE,
    _client,
    model_evolutions,
)

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SHARD_COUNTS = (1, 2, 4, 8)


def _assert_identical(reference: Automaton, candidate: Automaton) -> None:
    """Bit-identical: same states, edges, labels, *and* canonical order."""
    assert candidate == reference
    assert candidate.ordered_transitions == reference.ordered_transitions
    assert candidate.label_map == reference.label_map
    assert candidate.initial == reference.initial


# ------------------------------------------------------------------ resolution


def test_resolve_dense_product_explicit_wins(monkeypatch):
    monkeypatch.setenv(DENSE_PRODUCT_ENV, "0")
    assert resolve_dense_product(True, state_count=1) is True
    monkeypatch.setenv(DENSE_PRODUCT_ENV, "1")
    assert resolve_dense_product(False, state_count=10**9) is False


def test_resolve_dense_product_env_fallback(monkeypatch):
    monkeypatch.delenv(DENSE_PRODUCT_ENV, raising=False)
    assert resolve_dense_product(None, state_count=DENSE_STATE_FLOOR) is True
    assert resolve_dense_product(None, state_count=DENSE_STATE_FLOOR - 1) is False
    assert resolve_dense_product(None, state_count=None) is True  # dense default
    monkeypatch.setenv(DENSE_PRODUCT_ENV, "off")
    assert resolve_dense_product(None, state_count=10**9) is False
    monkeypatch.setenv(DENSE_PRODUCT_ENV, "1")
    assert resolve_dense_product(None, state_count=1) is True


# ----------------------------------------------- differential: dense vs legacy


@SETTINGS
@given(model_evolutions())
def test_dense_pair_product_equals_legacy_and_scratch(models):
    """Dense K ∈ {1,2,4,8} ≡ legacy sequential ≡ from-scratch compose.

    Also pins the scheduling-independent aggregates — hits, misses,
    dirty set, ``dense_states``, ``bitset_words`` — across every K, and
    the counter conservation law per K.
    """
    client = _client()
    legacy_cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    legacy = IncrementalProduct(semantics="strict", dense=False)
    caches = {
        k: ClosureCache(UNIVERSE, deterministic_implementation=True)
        for k in SHARD_COUNTS
    }
    products = {
        k: IncrementalProduct(semantics="strict", parallelism=k, dense=True)
        for k in SHARD_COUNTS
    }
    for model in models:
        oracle_update = legacy_cache.update(model)
        oracle = legacy.update(
            [client, oracle_update.closure], [frozenset(), oracle_update.dirty_states]
        )
        assert not oracle.dense
        reference = compose(client, oracle_update.closure, semantics="strict")
        _assert_identical(reference, oracle.automaton)
        aggregates = None
        for k in SHARD_COUNTS:
            update = caches[k].update(model)
            step = products[k].update(
                [client, update.closure], [frozenset(), update.dirty_states]
            )
            assert step.dense
            _assert_identical(reference, step.automaton)
            # Conservation per K: shard work sums to the hit/miss split.
            assert len(step.shards) == k
            assert (
                sum(r.states_explored for r in step.shards)
                == step.hits + step.misses
            )
            assert sum(r.misses for r in step.shards) == step.misses
            assert (
                frozenset().union(*(r.dirty_states for r in step.shards))
                == step.dirty_states
            )
            # The dense counters are sizes of K-independent content.
            assert step.dense_states == products[k].dense_states
            assert step.bitset_words == (step.dense_states + 63) // 64
            current = (
                step.hits,
                step.misses,
                step.dirty_states,
                step.dense_states,
                step.bitset_words,
            )
            if aggregates is None:
                aggregates = current
            else:
                assert current == aggregates
        # Dense and legacy agree on the dict-level aggregates too.
        assert aggregates[:3] == (oracle.hits, oracle.misses, oracle.dirty_states)


@SETTINGS
@given(model_evolutions())
def test_dense_warm_update_is_all_hits(models):
    """Re-running an unchanged model re-explores without a single miss."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict", parallelism=4, dense=True)
    update = None
    for model in models:
        update = cache.update(model)
        product.update([client, update.closure], [frozenset(), update.dirty_states])
    warm = product.update([client, update.closure], [frozenset(), frozenset()])
    assert warm.misses == 0
    assert warm.hits == len(warm.automaton.states)
    _assert_identical(compose(client, update.closure, semantics="strict"), warm.automaton)


@SETTINGS
@given(model_evolutions(), st.sampled_from(["thread", "process"]))
def test_dense_forced_strategy_equals_compose(models, strategy):
    """Thread and forked-process crews are forced below every floor."""
    if strategy == "process" and "fork" not in __import__(
        "multiprocessing"
    ).get_all_start_methods():
        pytest.skip("fork start method unavailable")
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(
        semantics="strict", parallelism=4, dense=True, strategy=strategy
    )
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        _assert_identical(
            compose(client, update.closure, semantics="strict"), step.automaton
        )


@SETTINGS
@given(
    model_evolutions(max_steps=3),
    model_evolutions(universe=TICK_UNIVERSE, inp="tick", out="tock", max_steps=3),
    st.sampled_from([2, 4, 8]),
)
def test_dense_nary_product_equals_compose_all(models_a, models_b, shards):
    """Triple products (client ∥ chaos(A) ∥ chaos(B)) run dense identically."""
    cache_a = ClosureCache(UNIVERSE, deterministic_implementation=True)
    cache_b = ClosureCache(TICK_UNIVERSE, deterministic_implementation=True)
    dense = IncrementalProduct(semantics="open", parallelism=shards, dense=True)
    legacy = IncrementalProduct(semantics="open", dense=False)
    length = max(len(models_a), len(models_b))
    for index in range(length):
        up_a = cache_a.update(models_a[min(index, len(models_a) - 1)])
        up_b = cache_b.update(models_b[min(index, len(models_b) - 1)])
        components = [up_a.closure, up_b.closure]
        dirty = [up_a.dirty_states, up_b.dirty_states]
        step = dense.update(components, dirty)
        base = legacy.update(components, dirty)
        _assert_identical(base.automaton, step.automaton)
        _assert_identical(compose_all(components, semantics="open"), step.automaton)
        assert (step.hits, step.misses) == (base.hits, base.misses)
        assert step.dirty_states == base.dirty_states


@SETTINGS
@given(model_evolutions(), st.sampled_from([2, 4, 8]))
def test_dense_product_with_validation_never_falls_back(models, shards):
    """The ``validate=True`` cross-check confirms every dense update."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(
        semantics="strict", parallelism=shards, dense=True, validate=True
    )
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        assert not step.fell_back
    assert product.fallbacks == 0


# --------------------------------------------------------- regime migration


@SETTINGS
@given(model_evolutions())
def test_mode_flip_round_trip_preserves_cache_and_results(models):
    """dense → legacy → dense migrates the warm cache both ways.

    One product instance, the toggle flipped via the environment between
    updates (``dense=None`` re-resolves per update): results stay
    bit-identical throughout, the interner outlives the legacy interval
    (ids are never reassigned, so ``dense_states`` never shrinks), and
    the migrated entries still count as cache *hits*.
    """
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict", parallelism=2, dense=None)
    regimes = ["1", "0", "1", "0"]
    saved = os.environ.get(DENSE_PRODUCT_ENV)
    peak_dense_states = 0
    try:
        for index, model in enumerate(models):
            os.environ[DENSE_PRODUCT_ENV] = regimes[index % len(regimes)]
            update = cache.update(model)
            step = product.update(
                [client, update.closure], [frozenset(), update.dirty_states]
            )
            _assert_identical(
                compose(client, update.closure, semantics="strict"), step.automaton
            )
            assert step.dense == (regimes[index % len(regimes)] == "1")
            if step.dense:
                assert step.dense_states >= peak_dense_states
                peak_dense_states = step.dense_states
            else:
                assert step.dense_states == 0
        # A warm re-run after the flips is all hits in either regime.
        for regime in ("0", "1"):
            os.environ[DENSE_PRODUCT_ENV] = regime
            warm = product.update(
                [client, update.closure], [frozenset(), frozenset()]
            )
            assert warm.misses == 0
            _assert_identical(
                compose(client, update.closure, semantics="strict"), warm.automaton
            )
    finally:
        if saved is None:
            os.environ.pop(DENSE_PRODUCT_ENV, None)
        else:
            os.environ[DENSE_PRODUCT_ENV] = saved


# ------------------------------------------------------------------ the crew


def test_crew_map_preserves_order_and_runs_inline_when_trivial():
    pool = WorkerPool()
    try:
        with pool.crew("thread", 4) as crew:
            tasks = list(range(16))
            assert crew.map(lambda x: x * x, tasks) == [x * x for x in tasks]
            inline_before = pool.stats["pool_inline_calls"]
            assert crew.map(lambda x: -x, [7]) == [-7]  # single task: inline
            assert pool.stats["pool_inline_calls"] == inline_before + 1
        assert pool.stats["pool_crew_entries"] >= 1
    finally:
        pool.shutdown()


def test_crew_process_strategy_falls_back_without_fork(monkeypatch):
    from repro.automata import sharding

    monkeypatch.setattr(sharding, "_fork_available", lambda: False)
    pool = WorkerPool()
    try:
        with pool.crew("process", 4) as crew:
            assert crew.requested == "process"
            assert crew.strategy == "thread"
            assert crew.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool.stats["pool_crew_fallbacks"] == 1
        assert pool.stats["pool_crew_forks"] == 0
    finally:
        pool.shutdown()


def test_crew_forked_pool_is_lazy_and_closed(monkeypatch):
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    pool = WorkerPool()
    try:
        with pool.crew("process", 2) as crew:
            assert pool.stats["pool_crew_forks"] == 0  # nothing forked yet
            assert crew.map(len, [[1], [1, 2]]) == [1, 2]
            assert pool.stats["pool_crew_forks"] == 1
            assert crew.map(len, [[], [1], [1, 2]]) == [0, 1, 2]
            assert pool.stats["pool_crew_forks"] == 1  # reused, not re-forked
        assert crew._mp_pool is None  # closed on exit
    finally:
        pool.shutdown()


# ------------------------------------------------------- hash-seed stability


_FINGERPRINT_SCRIPT = """
import hashlib
from tests.test_incremental import UNIVERSE, _client
from repro.automata import IncompleteAutomaton
from repro.automata.incremental import ClosureCache, IncrementalProduct

client = _client()
model = IncompleteAutomaton(
    states=["q0"], inputs={"ping"}, outputs={"pong"}, transitions=(),
    refusals=(), initial=["q0"], labels={"q0": {"p"}}, name="M_l^0",
)
cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
product = IncrementalProduct(semantics="strict", parallelism=4, dense=True)
update = cache.update(model)
step = product.update([client, update.closure], [frozenset(), update.dirty_states])
assert step.dense
digest = hashlib.sha256()
for t in step.automaton.ordered_transitions:
    digest.update(repr((repr(t.source), sorted(t.inputs), sorted(t.outputs), repr(t.target))).encode())
for s in sorted(step.automaton.states, key=repr):
    digest.update(repr(sorted(step.automaton.labels(s))).encode())
# The joint-id assignment itself must be seed-independent: same state
# behind every id, in id order, on every interpreter.
resolve = product._interner.resolve
for sid in range(step.dense_states):
    digest.update(repr(resolve(sid)).encode())
print(digest.hexdigest())
"""


def test_dense_joint_ids_are_hash_seed_independent():
    """Three fresh interpreters, three hash seeds, one id fingerprint."""
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    root = os.path.dirname(src)
    fingerprints = set()
    for seed in ("0", "1", "2"):
        env = dict(
            os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src + os.pathsep + root
        )
        result = subprocess.run(
            [sys.executable, "-c", _FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            check=True,
        )
        fingerprints.add(result.stdout.strip())
    assert len(fingerprints) == 1, fingerprints
