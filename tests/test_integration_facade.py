"""Tests for the top-level ``integrate`` façade."""

import pytest

from repro import railcab
from repro.errors import SynthesisError
from repro.integration import IntegrationReport, integrate
from repro.muml import Architecture, Component, Port
from repro.synthesis import SynthesisSettings, Verdict


def convoy_architecture() -> Architecture:
    pattern = railcab.distance_coordination_pattern()
    front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
    architecture = Architecture("convoy")
    architecture.add_component(Component("leader", [front_port]))
    architecture.add_legacy("follower")
    architecture.instantiate(
        pattern,
        {"frontRole": ("leader", "front"), "rearRole": ("follower", None)},
    )
    return architecture


def two_legacy_architecture() -> Architecture:
    pattern = railcab.distance_coordination_pattern()
    architecture = Architecture("convoy2")
    architecture.add_legacy("leader")
    architecture.add_legacy("follower")
    architecture.instantiate(
        pattern,
        {"frontRole": ("leader", None), "rearRole": ("follower", None)},
    )
    return architecture


class TestSingleLegacyIntegration:
    def test_correct_component_passes(self):
        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
            labelers={"follower": railcab.rear_state_labeler},
        )
        assert isinstance(report, IntegrationReport)
        assert report.ok
        assert report.findings() == []
        assert report.placements["follower"].verdict is Verdict.PROVEN

    def test_faulty_component_fails_with_finding(self):
        report = integrate(
            convoy_architecture(),
            {"follower": railcab.faulty_rear_shuttle()},
            labelers={"follower": railcab.rear_state_labeler},
        )
        assert not report.ok
        assert any("follower" in finding for finding in report.findings())
        assert report.placements["follower"].verdict is Verdict.REAL_VIOLATION

    def test_architecture_check_included(self):
        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle()},
            labelers={"follower": railcab.rear_state_labeler},
        )
        assert report.architecture.pattern_results["DistanceCoordination"].ok
        assert "leader.front" in report.architecture.port_results

    def test_missing_component_reported(self):
        report = integrate(convoy_architecture(), {})
        assert not report.ok
        assert report.skipped_placements == ("follower",)
        assert any("no executable component" in finding for finding in report.findings())

    def test_interface_mismatch_rejected(self):
        from repro.automata import Automaton
        from repro.legacy import LegacyComponent

        wrong = LegacyComponent(
            Automaton(inputs={"x"}, outputs={"y"},
                      transitions=[("s", (), (), "s")], initial=["s"]),
            name="wrong",
        )
        with pytest.raises(SynthesisError, match="interface"):
            integrate(convoy_architecture(), {"follower": wrong})

    def test_extra_properties_checked(self):
        from repro.logic import parse

        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
            labelers={"follower": railcab.rear_state_labeler},
            extra_properties={
                "follower": [parse("AG (rearRole.convoy -> frontRole.convoy)")]
            },
        )
        assert report.ok

    def test_violated_extra_property_detected(self):
        from repro.logic import parse

        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
            labelers={"follower": railcab.rear_state_labeler},
            extra_properties={"follower": [parse("AG not rearRole.convoy")]},
        )
        assert not report.ok


class TestMultiLegacyIntegration:
    def test_two_correct_legacy_components(self):
        report = integrate(
            two_legacy_architecture(),
            {
                "leader": railcab.correct_front_shuttle(),
                "follower": railcab.correct_rear_shuttle(convoy_ticks=1),
            },
            labelers={
                "leader": railcab.front_state_labeler,
                "follower": railcab.rear_state_labeler,
            },
        )
        assert report.joint is not None
        assert report.joint.verdict is Verdict.PROVEN
        assert report.ok

    def test_faulty_pair_detected(self):
        report = integrate(
            two_legacy_architecture(),
            {
                "leader": railcab.forgetful_front_shuttle(),
                "follower": railcab.correct_rear_shuttle(convoy_ticks=1),
            },
            labelers={
                "leader": railcab.front_state_labeler,
                "follower": railcab.rear_state_labeler,
            },
        )
        assert report.joint is not None
        assert report.joint.verdict is Verdict.REAL_VIOLATION
        assert not report.ok
        assert any("joint" in finding for finding in report.findings())

    def test_missing_component_in_multi_mode(self):
        report = integrate(
            two_legacy_architecture(),
            {"leader": railcab.correct_front_shuttle()},
            labelers={"leader": railcab.front_state_labeler},
        )
        assert not report.ok
        assert "follower" in report.skipped_placements


class TestRequireHelpers:
    def test_require_proven_passes_through(self):
        from repro.synthesis import IntegrationSynthesizer

        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.require_proven() is result

    def test_require_proven_raises_on_violation(self):
        from repro.synthesis import IntegrationSynthesizer

        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        with pytest.raises(SynthesisError, match="violates the requirements"):
            result.require_proven()

    def test_require_proven_raises_budget_error(self):
        from repro.errors import BudgetExceededError
        from repro.synthesis import IntegrationSynthesizer

        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            settings=SynthesisSettings(max_iterations=1),
        ).run()
        with pytest.raises(BudgetExceededError):
            result.require_proven()

    def test_multi_require_proven(self):
        from repro.synthesis import MultiLegacySynthesizer

        result = MultiLegacySynthesizer(
            None,
            [railcab.forgetful_front_shuttle(), railcab.correct_rear_shuttle()],
            railcab.PATTERN_CONSTRAINT,
            labelers={
                "frontShuttle": railcab.front_state_labeler,
                "rearShuttle": railcab.rear_state_labeler,
            },
        ).run()
        with pytest.raises(SynthesisError):
            result.require_proven()

    def test_report_require_ok(self):
        report = integrate(
            convoy_architecture(),
            {"follower": railcab.correct_rear_shuttle(convoy_ticks=1)},
            labelers={"follower": railcab.rear_state_labeler},
        )
        assert report.require_ok() is report
        failing = integrate(
            convoy_architecture(),
            {"follower": railcab.faulty_rear_shuttle()},
            labelers={"follower": railcab.rear_state_labeler},
        )
        with pytest.raises(SynthesisError, match="integration failed"):
            failing.require_ok()


class TestStableFacade:
    """The package root re-exports the stable surface (and says so)."""

    STABLE = (
        "integrate",
        "IntegrationReport",
        "SynthesisSettings",
        "IntegrationSynthesizer",
        "SynthesisResult",
        "IterationRecord",
        "Verdict",
        "MultiLegacySynthesizer",
        "MultiSynthesisResult",
        "MultiIterationRecord",
        "result_to_dict",
        "ReproError",
        "SynthesisError",
        "CompositionError",
    )

    def test_stable_names_are_in_all_and_resolve(self):
        import repro

        for name in self.STABLE:
            assert name in repro.__all__, name
            assert getattr(repro, name) is not None, name

    def test_facade_objects_are_the_deep_objects(self):
        import repro
        import repro.synthesis as synthesis

        assert repro.SynthesisSettings is synthesis.SynthesisSettings
        assert repro.IntegrationSynthesizer is synthesis.IntegrationSynthesizer
        assert repro.result_to_dict is synthesis.result_to_dict
