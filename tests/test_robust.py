"""Fault-tolerant test execution: injection, retries, Lemma 6 soundness.

Covers :mod:`repro.testing.faults` and :mod:`repro.testing.robust` in
isolation, the executor/replay reset regression, and the synthesis
loop's degraded-verdict handling: a seeded fault matrix (every fault
kind × three seeds) must complete the RailCab convoy loop bit-identical
to the fault-free run, and no amount of chaos may ever manufacture a
``REAL_VIOLATION`` (Lemma 6: CONFIRMED needs a validated fault-free
run).
"""

import dataclasses

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro import railcab
from repro.automata import Automaton, Interaction, Run
from repro.errors import (
    FaultInjectionError,
    ModelError,
    ReplayError,
    SynthesisError,
)
from repro.legacy import LegacyComponent
from repro.obs import Tracer
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict
from repro.synthesis.multi import MultiLegacySynthesizer
from repro.testing import (
    FaultKind,
    FaultProfile,
    FaultyComponent,
    Quarantine,
    Recording,
    RetryPolicy,
    RobustExecutor,
    TestVerdict,
    execute_test,
    replay,
)
from repro.testing import test_case_from_trace as case_from_trace
from repro.testing.faults import FAULT_SEED_ENV
from repro.testing.robust import TEST_RETRIES_ENV

PING = Interaction(["ping"], None)
PONG = Interaction(None, ["pong"])


def server_component() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


def happy_case():
    return case_from_trace([PING, PONG, Interaction()], name="happy")


def outcome_fingerprint(outcome):
    """Everything observable about a supervised execution, hashably."""
    return (
        outcome.verdict,
        outcome.execution.recording.steps if outcome.execution else None,
        outcome.validated,
        outcome.attempts,
        outcome.retries,
        outcome.timeouts,
        outcome.faults,
        outcome.replays_performed,
        outcome.re_records,
        outcome.reason,
    )


# ------------------------------------------------------------ retry policy


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.validate is None
        assert policy.delay("t", 0) == 0.0  # no backoff_base, no sleeping

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": True},
            {"replay_attempts": 0},
            {"record_rounds": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_jitter": -1.0},
            {"step_timeout": 0.0},
            {"test_timeout": -2.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(SynthesisError):
            RetryPolicy(**kwargs)

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv(TEST_RETRIES_ENV, raising=False)
        assert RetryPolicy.from_env() == RetryPolicy()

    def test_from_env_sets_attempts(self, monkeypatch):
        monkeypatch.setenv(TEST_RETRIES_ENV, "4")
        assert RetryPolicy.from_env().max_attempts == 5  # retries + first try

    @pytest.mark.parametrize("raw", ["x", "-1", "1.5"])
    def test_from_env_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv(TEST_RETRIES_ENV, raw)
        with pytest.raises(SynthesisError):
            RetryPolicy.from_env()

    @given(
        key=st.text(max_size=20),
        attempt=st.integers(min_value=0, max_value=8),
        base=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @hyp_settings(max_examples=50, deadline=None)
    def test_delay_is_deterministic_and_bounded(self, key, attempt, base, jitter):
        policy = RetryPolicy(backoff_base=base, backoff_jitter=jitter)
        delay = policy.delay(key, attempt)
        assert delay == policy.delay(key, attempt)  # no RNG state anywhere
        if base <= 0:
            assert delay == 0.0
        else:
            raw = base * policy.backoff_factor**attempt
            assert raw <= delay <= raw * (1.0 + jitter)


# ------------------------------------------------------------ fault profile


class TestFaultProfile:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": "x"},
            {"seed": True},
            {"transient_error_rate": 1.5},
            {"replay_flip_rate": -0.1},
            {"hang_seconds": -1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ModelError):
            FaultProfile(**kwargs)

    def test_default_is_inactive(self):
        assert not FaultProfile(seed=7).active

    def test_presets_are_active(self):
        assert FaultProfile.mild(1).active
        assert FaultProfile.hostile(1).active

    def test_single_sets_exactly_one_rate(self):
        profile = FaultProfile.single(FaultKind.DROPPED_OUTPUT, 0.5, seed=3)
        assert profile.rate_of(FaultKind.DROPPED_OUTPUT) == 0.5
        assert profile.seed == 3
        for kind in FaultKind:
            if kind is not FaultKind.DROPPED_OUTPUT:
                assert profile.rate_of(kind) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        assert FaultProfile.from_env() is None
        monkeypatch.setenv(FAULT_SEED_ENV, "9")
        assert FaultProfile.from_env() == FaultProfile.mild(9)
        monkeypatch.setenv(FAULT_SEED_ENV, "soon")
        with pytest.raises(ModelError):
            FaultProfile.from_env()


# --------------------------------------------------------- faulty component


class TestFaultyComponent:
    def test_wrap_is_idempotent(self):
        wrapped = FaultyComponent.wrap(server_component(), FaultProfile.mild(1))
        assert FaultyComponent.wrap(wrapped, FaultProfile.mild(2)) is wrapped

    def test_unarmed_wrapper_is_transparent(self):
        plain = server_component()
        wrapped = FaultyComponent(server_component(), FaultProfile.hostile(1))
        for inputs in (["ping"], [], ["ping"], []):
            ours, theirs = wrapped.step(inputs), plain.step(inputs)
            assert (ours.period, ours.outputs, ours.blocked) == (
                theirs.period,
                theirs.outputs,
                theirs.blocked,
            )
        assert wrapped.faults_injected == 0

    def test_counters_accrue_on_the_inner_component(self):
        wrapped = FaultyComponent(server_component(), FaultProfile.mild(1))
        wrapped.step(["ping"])
        wrapped.reset()
        assert wrapped.inner.steps_executed == 1
        assert wrapped.inner.resets == 1
        assert wrapped.steps_executed == 1  # delegated read

    def test_same_seed_same_fault_schedule(self):
        def chaos_trace(seed):
            wrapped = FaultyComponent(server_component(), FaultProfile.hostile(seed))
            observed = []
            with wrapped.inject_faults():
                for _ in range(20):
                    try:
                        observed.append(wrapped.step([]).outputs)
                    except FaultInjectionError as error:
                        observed.append(str(error))
            return observed, dict(wrapped.fault_counts)

        assert chaos_trace(5) == chaos_trace(5)
        assert chaos_trace(5) != chaos_trace(6)

    def test_crash_reset_loses_component_state(self):
        wrapped = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.CRASH_RESET, 1.0)
        )
        wrapped.step(["ping"])  # unarmed: ready -> busy
        with wrapped.inject_faults():
            with pytest.raises(FaultInjectionError):
                wrapped.step([])
        assert wrapped.fault_counts["crash_reset"] == 1
        # Restarted in the initial state: ping is accepted again.
        assert not wrapped.step(["ping"]).blocked

    def test_dropped_output_corrupts_the_observation(self):
        wrapped = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.DROPPED_OUTPUT, 1.0)
        )
        wrapped.step(["ping"])  # unarmed: the reaction is due next period
        with wrapped.inject_faults():
            outcome = wrapped.step([])
        assert outcome.outputs == frozenset()  # pong was produced, then lost
        assert wrapped.fault_counts["dropped_output"] == 1

    def test_spurious_output_adds_a_phantom_message(self):
        wrapped = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.SPURIOUS_OUTPUT, 1.0)
        )
        with wrapped.inject_faults():
            outcome = wrapped.step([])  # idle step really produces nothing
        assert outcome.outputs == frozenset({"pong"})
        assert wrapped.fault_counts["spurious_output"] == 1

    def test_replay_flip_breaks_a_good_recording(self):
        component = server_component()
        execution = execute_test(component, happy_case(), port="srv")
        assert execution.verdict is TestVerdict.CONFIRMED
        wrapped = FaultyComponent(
            component, FaultProfile.single(FaultKind.REPLAY_FLIP, 1.0)
        )
        with wrapped.inject_faults():
            with pytest.raises(ReplayError):
                replay(wrapped, execution.recording, port="srv")
        assert wrapped.fault_counts["replay_flip"] >= 1


# ---------------------------------------------- reset regression (executor)


class TestResetRegression:
    """A raising step must never leave the component mid-run."""

    def test_execute_test_resets_when_a_step_raises(self):
        wrapped = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.TRANSIENT_ERROR, 1.0)
        )
        before = wrapped.inner.resets
        with wrapped.inject_faults():
            with pytest.raises(FaultInjectionError):
                execute_test(wrapped, happy_case(), port="srv")
        assert wrapped.inner.resets == before + 2  # on entry and in finally
        assert wrapped.period == 0
        # The very same component object is immediately reusable.
        assert execute_test(wrapped, happy_case(), port="srv").confirmed

    def test_replay_resets_on_divergence(self):
        component = server_component()
        execution = execute_test(component, happy_case(), port="srv")
        corrupted = Recording(
            component=execution.recording.component,
            steps=tuple(
                dataclasses.replace(step, observed_outputs=frozenset({"pong"}))
                for step in execution.recording.steps
            ),
        )
        before = component.resets
        with pytest.raises(ReplayError):
            replay(component, corrupted, port="srv")
        assert component.resets == before + 2
        assert component.period == 0
        assert execute_test(component, happy_case(), port="srv").confirmed


# ---------------------------------------------------------- robust executor


class TestRobustExecutor:
    def test_fault_free_path_matches_raw_executor(self):
        outcome = RobustExecutor().execute(server_component(), happy_case(), port="srv")
        raw = execute_test(server_component(), happy_case(), port="srv")
        assert outcome.verdict is TestVerdict.CONFIRMED
        assert outcome.execution.recording == raw.recording
        assert (outcome.attempts, outcome.retries, outcome.timeouts) == (1, 0, 0)
        assert not outcome.validated and outcome.replay is None  # fast path

    def test_validate_true_forces_a_validation_replay(self):
        executor = RobustExecutor(RetryPolicy(validate=True))
        outcome = executor.execute(server_component(), happy_case(), port="srv")
        assert outcome.validated
        assert outcome.replay is not None
        assert outcome.replays_performed == 1

    def test_transient_faults_are_retried_to_a_validated_verdict(self):
        baseline = execute_test(server_component(), happy_case(), port="srv")
        recovered = None
        for seed in range(40):
            component = FaultyComponent(
                server_component(),
                FaultProfile.single(FaultKind.TRANSIENT_ERROR, 0.5, seed=seed),
            )
            outcome = RobustExecutor().execute(component, happy_case(), port="srv")
            if outcome.retries and outcome.verdict is TestVerdict.CONFIRMED:
                recovered = outcome
                break
        assert recovered is not None, "no seed recovered within the search range"
        assert recovered.faults >= 1
        assert recovered.validated
        assert recovered.execution.recording == baseline.recording

    def test_exhausted_live_budget_is_inconclusive(self):
        component = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.TRANSIENT_ERROR, 1.0)
        )
        outcome = RobustExecutor().execute(component, happy_case(), port="srv")
        assert outcome.inconclusive
        assert outcome.verdict is TestVerdict.INCONCLUSIVE
        assert outcome.execution is None and outcome.replay is None
        assert outcome.attempts == RetryPolicy().max_attempts
        assert outcome.faults == outcome.attempts
        assert "injected" in outcome.reason

    def test_step_deadline_converts_hangs_into_timeouts(self):
        component = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.HANG, 1.0)
        )
        executor = RobustExecutor(RetryPolicy(max_attempts=2, step_timeout=0.001))
        outcome = executor.execute(component, happy_case(), port="srv")
        assert outcome.inconclusive
        assert outcome.timeouts == 2
        assert component.fault_counts["hang"] >= 2
        assert "deadline" in outcome.reason

    def test_per_test_deadline_enforced_via_worker_pool(self):
        profile = dataclasses.replace(
            FaultProfile.single(FaultKind.HANG, 1.0), hang_seconds=0.05
        )
        component = FaultyComponent(server_component(), profile)
        executor = RobustExecutor(RetryPolicy(max_attempts=2, test_timeout=0.02))
        outcome = executor.execute(component, happy_case(), port="srv")
        assert outcome.inconclusive
        assert outcome.timeouts >= 1
        assert "deadline" in outcome.reason

    def test_backoff_sleeps_follow_the_deterministic_schedule(self):
        component = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.TRANSIENT_ERROR, 1.0)
        )
        policy = RetryPolicy(backoff_base=0.01)
        pauses = []
        executor = RobustExecutor(policy, sleep=pauses.append)
        executor.execute(component, happy_case(), port="srv")
        expected = [policy.delay(happy_case().name, attempt) for attempt in range(2)]
        assert pauses == expected
        assert all(pause > 0 for pause in pauses)
        assert expected[1] > expected[0]  # exponential growth survives jitter

    def test_corrupted_recording_never_validates(self):
        # Dropped outputs silently corrupt the recording; validation
        # replays it against the (deterministic) component, catches the
        # divergence, and re-records until the budget dies.
        component = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.DROPPED_OUTPUT, 1.0)
        )
        outcome = RobustExecutor().execute(component, happy_case(), port="srv")
        policy = RetryPolicy()
        assert outcome.inconclusive
        assert outcome.re_records == policy.record_rounds
        assert "diverged" in outcome.reason

    def test_replay_flips_trigger_re_records(self):
        component = FaultyComponent(
            server_component(), FaultProfile.single(FaultKind.REPLAY_FLIP, 1.0)
        )
        outcome = RobustExecutor().execute(component, happy_case(), port="srv")
        policy = RetryPolicy()
        assert outcome.inconclusive
        assert outcome.re_records == policy.record_rounds
        assert outcome.replays_performed == policy.record_rounds * policy.replay_attempts

    def test_replay_validated_exhausts_its_budget(self):
        component = server_component()
        execution = execute_test(component, happy_case(), port="srv")
        flipping = FaultyComponent(
            component, FaultProfile.single(FaultKind.REPLAY_FLIP, 1.0)
        )
        with pytest.raises(ReplayError):
            RobustExecutor().replay_validated(flipping, execution.recording, port="srv")
        clean = RobustExecutor().replay_validated(component, execution.recording, port="srv")
        assert not clean.blocked

    def test_retry_spans_are_emitted(self):
        tracer = Tracer()
        component = FaultyComponent(
            server_component(),
            FaultProfile.single(FaultKind.TRANSIENT_ERROR, 1.0),
            tracer=tracer,
        )
        RobustExecutor(tracer=tracer).execute(component, happy_case(), port="srv")
        names = {span.name for span in tracer.spans}
        assert "test.retry" in names
        assert "fault.inject" in names


# ---------------------------------------------------------------- quarantine


class TestQuarantine:
    def run(self, tag="r"):
        return Run((tag, "l0"))

    def test_push_drain_round_trip_keeps_probe_flags(self):
        quarantine = Quarantine()
        a, b = self.run("a"), self.run("b")
        assert quarantine.push(a, probe=True)
        assert quarantine.push(b, probe=False)
        assert len(quarantine) == 2
        assert quarantine.drain() == [(a, True), (b, False)]
        assert len(quarantine) == 0

    def test_duplicate_pushes_are_ignored_while_queued(self):
        quarantine = Quarantine()
        assert quarantine.push(self.run("a"))
        assert not quarantine.push(self.run("a"))
        assert len(quarantine) == 1

    def test_capacity_overflow_is_counted(self):
        quarantine = Quarantine(capacity=2)
        for tag in "abc":
            quarantine.push(self.run(tag))
        assert len(quarantine) == 2
        assert quarantine.dropped == 1

    def test_retry_budget_expires_into_the_report(self):
        quarantine = Quarantine(max_retries=2)
        run = self.run("a")
        for _ in range(2):
            assert quarantine.push(run)
            quarantine.drain()
        assert not quarantine.push(run)  # budget spent
        assert run in quarantine.expired
        assert quarantine.unresolved() == (run,)

    def test_rejects_bad_bounds(self):
        with pytest.raises(SynthesisError):
            Quarantine(capacity=0)
        with pytest.raises(SynthesisError):
            Quarantine(max_retries=0)


# ----------------------------------------------------- Lemma 6 (hypothesis)


RATES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

#: Arbitrary fault profiles (hangs excluded: they only slow steps down
#: unless a step deadline is configured, which the deterministic tests
#: above cover — sleeping inside hypothesis would dominate the suite).
PROFILES = st.builds(
    FaultProfile,
    seed=st.integers(min_value=0, max_value=10_000),
    transient_error_rate=RATES,
    crash_reset_rate=RATES,
    dropped_output_rate=RATES,
    spurious_output_rate=RATES,
    replay_flip_rate=RATES,
)


class TestLemma6Soundness:
    """CONFIRMED needs a validated fault-free run — under EVERY profile."""

    @given(profile=PROFILES)
    @hyp_settings(max_examples=40, deadline=None, derandomize=True)
    def test_supervised_outcomes_are_sound_and_reproducible(self, profile):
        policy = RetryPolicy()
        fingerprints = []
        for _ in range(2):
            component = FaultyComponent(server_component(), profile)
            outcome = RobustExecutor(policy).execute(component, happy_case(), port="srv")
            if outcome.inconclusive:
                # Degraded, never wrong: no verdict, no recording, a reason.
                assert outcome.verdict is TestVerdict.INCONCLUSIVE
                assert outcome.execution is None and outcome.replay is None
                assert outcome.reason
            elif component.fault_injection_active:
                # A conclusive verdict under possible faults was validated.
                assert outcome.validated
                assert outcome.replay is not None
                assert outcome.replays_performed >= 1
            assert outcome.attempts <= policy.record_rounds * policy.max_attempts
            assert outcome.retries < outcome.attempts or outcome.attempts == 0
            # The component is never left mid-run.
            assert component.period == 0
            fingerprints.append(outcome_fingerprint(outcome))
        assert fingerprints[0] == fingerprints[1]  # seed-reproducible

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @hyp_settings(max_examples=20, deadline=None, derandomize=True)
    def test_inactive_profiles_are_transparent(self, seed):
        component = FaultyComponent(server_component(), FaultProfile(seed=seed))
        outcome = RobustExecutor().execute(component, happy_case(), port="srv")
        raw = execute_test(server_component(), happy_case(), port="srv")
        assert not component.fault_injection_active
        assert outcome.execution.recording == raw.recording
        assert outcome.attempts == 1 and not outcome.validated


# ------------------------------------------------------- the loop under chaos


MATRIX_SEEDS = (1, 2, 3)


def _railcab_run(settings=None):
    return IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=1),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        settings=settings,
        port="rearRole",
    ).run()


def _loop_fingerprint(result):
    model = result.final_model
    return (
        result.verdict,
        result.iteration_count,
        tuple(record.knowledge_gained for record in result.iterations),
        frozenset(model.states),
        tuple(sorted(map(repr, model.transitions))),
        tuple(sorted(map(repr, model.refusals))),
        repr(result.violation_witness),
    )


def _chaos_settings(kind, seed):
    profile = FaultProfile.single(kind, 0.05, seed=seed)
    policy = RetryPolicy(max_attempts=6, replay_attempts=4, record_rounds=4)
    if kind is FaultKind.HANG:
        # Hangs need a step deadline to become observable faults; keep
        # the injected stall well above the deadline so the conversion
        # is deterministic, and the rate low so the suite stays fast.
        profile = dataclasses.replace(profile, hang_rate=0.02, hang_seconds=0.05)
        policy = dataclasses.replace(policy, step_timeout=0.02)
    return SynthesisSettings(retry_policy=policy, fault_profile=profile)


class TestLoopUnderChaos:
    def test_seeded_fault_matrix_is_bit_identical_to_fault_free(self):
        baseline = _loop_fingerprint(_railcab_run())
        for kind in FaultKind:
            for seed in MATRIX_SEEDS:
                result = _railcab_run(_chaos_settings(kind, seed))
                assert result.quarantined == (), (kind, seed)
                assert result.total_inconclusive == 0, (kind, seed)
                assert _loop_fingerprint(result) == baseline, (kind, seed)

    def test_hostile_chaos_never_reports_a_false_violation(self):
        for seed in MATRIX_SEEDS:
            settings = SynthesisSettings(
                max_iterations=8,
                retry_policy=RetryPolicy(),
                fault_profile=FaultProfile.hostile(seed),
            )
            result = _railcab_run(settings)
            assert result.verdict is not Verdict.REAL_VIOLATION, seed
            if result.verdict is not Verdict.PROVEN:
                # Degraded honestly: the unresolved counterexamples are
                # reported, not silently dropped (Lemma 6).
                assert result.total_inconclusive > 0, seed

    def test_real_faults_are_still_caught_under_chaos(self):
        fault_free = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
        ).run()
        assert fault_free.verdict is Verdict.REAL_VIOLATION
        chaotic = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            settings=SynthesisSettings(fault_profile=FaultProfile.mild(5)),
            port="rearRole",
        ).run()
        assert chaotic.verdict is Verdict.REAL_VIOLATION
        assert repr(chaotic.violation_witness) == repr(fault_free.violation_witness)

    def test_robustness_counters_are_surfaced(self):
        tracer = Tracer()
        settings = SynthesisSettings(
            fault_profile=FaultProfile.mild(2), tracer=tracer
        )
        result = _railcab_run(settings)
        assert result.verdict is Verdict.PROVEN
        records = result.iterations
        assert result.total_test_retries == sum(r.test_retries for r in records)
        assert result.total_test_timeouts == sum(r.test_timeouts for r in records)
        assert result.total_inconclusive == sum(r.tests_inconclusive for r in records)
        assert all(r.quarantine_size >= 0 for r in records)
        snapshot = tracer.metrics.as_dict()
        assert "quarantine_size" in snapshot["gauges"]
        if result.total_test_retries:
            assert any(
                name.startswith("fault_injected_") for name in snapshot["gauges"]
            )

    def test_multi_loop_proves_under_mild_chaos(self):
        def multi_run(settings=None):
            return MultiLegacySynthesizer(
                None,
                [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle()],
                railcab.PATTERN_CONSTRAINT,
                labelers={
                    "frontShuttle": railcab.front_state_labeler,
                    "rearShuttle": railcab.rear_state_labeler,
                },
                settings=settings,
            ).run()

        baseline = multi_run()
        chaotic = multi_run(
            SynthesisSettings(
                retry_policy=RetryPolicy(max_attempts=6, record_rounds=4),
                fault_profile=FaultProfile.mild(1),
            )
        )
        assert baseline.verdict is Verdict.PROVEN
        assert chaotic.verdict is Verdict.PROVEN
        assert chaotic.quarantined == ()
        for name, model in baseline.final_models.items():
            other = chaotic.final_models[name]
            assert frozenset(model.states) == frozenset(other.states)
            assert sorted(map(repr, model.transitions)) == sorted(
                map(repr, other.transitions)
            )

    def test_env_knobs_reach_the_settings(self, monkeypatch):
        monkeypatch.setenv(TEST_RETRIES_ENV, "3")
        monkeypatch.setenv(FAULT_SEED_ENV, "7")
        settings = SynthesisSettings()
        assert settings.resolved_retry_policy().max_attempts == 4
        assert settings.resolved_fault_profile() == FaultProfile.mild(7)

    def test_settings_reject_wrong_types(self):
        with pytest.raises(SynthesisError):
            SynthesisSettings(retry_policy="twice")
        with pytest.raises(SynthesisError):
            SynthesisSettings(fault_profile="mild")


# ------------------------------------------- real deadlines need a process


class TestRealDeadlinePreemption:
    """S1 regression: only the subprocess adapter can *preempt* a stall.

    The in-process ``RetryPolicy.step_timeout`` is cooperative — it
    observes a stall only after the step returns, so a truly blocking
    ``step()`` would hang the worker thread forever (the per-test
    deadline can abandon the thread, never reclaim it).  Out of
    process, the same stall is SIGKILL-ed at the configured deadline.
    """

    def test_blocking_step_is_killed_within_the_deadline(self):
        import time

        from repro.legacy.remote import RemotePolicy, rehost

        # hang_rate=1.0: every armed live step blocks for 60 seconds —
        # genuinely, inside the host process, not via a checked flag.
        profile = dataclasses.replace(
            FaultProfile.single(FaultKind.HANG, 1.0, seed=7), hang_seconds=60.0
        )
        deadline = 0.4
        policy = RetryPolicy(max_attempts=2, replay_attempts=1, record_rounds=1)
        with rehost(
            server_component(),
            RemotePolicy(step_deadline=deadline, spawn_timeout=60.0),
            fault_profile=profile,
        ) as component:
            start = time.monotonic()
            outcome = RobustExecutor(policy).execute(component, happy_case(), port="srv")
            elapsed = time.monotonic() - start
            # Every attempt stalled and was preempted: without the kill
            # this test would sit for 60 seconds per attempt.
            assert outcome.verdict is TestVerdict.INCONCLUSIVE
            assert outcome.timeouts >= 1
            assert component.remote_stats["component_kills"] >= 1
            assert component.remote_stats["component_respawns"] >= 1
            budget = policy.max_attempts * policy.record_rounds + 2
            assert elapsed < profile.hang_seconds
            assert elapsed < budget * (deadline + 5.0)
