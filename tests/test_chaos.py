"""Unit tests for the chaotic automaton and closure (Definitions 8/9)."""

import pytest

from repro.automata import (
    CHAOS_PROPOSITION,
    ChaosState,
    ClosureState,
    IDLE,
    IncompleteAutomaton,
    Interaction,
    InteractionUniverse,
    Run,
    S_ALL,
    S_DELTA,
    chaotic_automaton,
    chaotic_closure,
    closure_base_state,
    is_chaos_state,
    run_stays_in_learned_part,
)
from repro.errors import ModelError

A = Interaction(["a"], None)
B = Interaction(None, ["b"])
UNIVERSE = InteractionUniverse.singletons({"a"}, {"b"})


class TestChaoticAutomaton:
    def test_structure_matches_definition8(self):
        chaos = chaotic_automaton(UNIVERSE)
        assert chaos.states == frozenset({S_ALL, S_DELTA})
        assert chaos.initial == frozenset({S_ALL, S_DELTA})
        # s_all has two transitions per interaction, s_delta none.
        assert len(chaos.transitions) == 2 * len(UNIVERSE)
        assert chaos.is_deadlock(S_DELTA)
        assert not chaos.is_deadlock(S_ALL)

    def test_chaos_states_carry_the_fresh_proposition(self):
        chaos = chaotic_automaton(UNIVERSE)
        assert chaos.labels(S_ALL) == frozenset({CHAOS_PROPOSITION})
        assert chaos.labels(S_DELTA) == frozenset({CHAOS_PROPOSITION})

    def test_s_all_accepts_every_interaction(self):
        chaos = chaotic_automaton(UNIVERSE)
        assert chaos.enabled(S_ALL) == frozenset(UNIVERSE)


class TestClosureStructure:
    def make(self, **kwargs):
        defaults = dict(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", A, "t")],
            refusals=[("t", B)],
            initial=["s"],
            labels={"s": {"p"}},
            name="M",
        )
        defaults.update(kwargs)
        return IncompleteAutomaton(**defaults)

    def test_states_are_doubled_plus_chaos(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        expected = {
            ClosureState("s", False),
            ClosureState("s", True),
            ClosureState("t", False),
            ClosureState("t", True),
            S_ALL,
            S_DELTA,
        }
        assert closure.states == frozenset(expected)

    def test_initial_states_are_both_tags(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        assert closure.initial == frozenset({ClosureState("s", False), ClosureState("s", True)})

    def test_known_transitions_doubled_four_ways(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        doubled = [
            t
            for t in closure.transitions
            if isinstance(t.source, ClosureState)
            and isinstance(t.target, ClosureState)
            and t.interaction == A
        ]
        assert len(doubled) == 4

    def test_zero_tag_states_have_no_escapes(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        from_zero = closure.transitions_from(ClosureState("s", False))
        assert all(isinstance(t.target, ClosureState) for t in from_zero)

    def test_one_tag_states_escape_for_unrefused_interactions(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        escapes = [
            t for t in closure.transitions_from(ClosureState("t", True)) if is_chaos_state(t.target)
        ]
        # |universe| = 3; B is refused at t, so 2 interactions escape,
        # each to both s_all and s_delta.
        assert len(escapes) == (len(UNIVERSE) - 1) * 2
        assert all(t.interaction != B for t in escapes)

    def test_deterministic_variant_omits_escapes_for_known_interactions(self):
        closure = chaotic_closure(self.make(), UNIVERSE, deterministic_implementation=True)
        escapes = {
            t.interaction
            for t in closure.transitions_from(ClosureState("s", True))
            if is_chaos_state(t.target)
        }
        assert A not in escapes  # known at s
        assert IDLE in escapes

    def test_literal_variant_escapes_even_for_known(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        escapes = {
            t.interaction
            for t in closure.transitions_from(ClosureState("s", True))
            if is_chaos_state(t.target)
        }
        assert A in escapes

    def test_labels_inherited_and_chaos_labeled(self):
        closure = chaotic_closure(self.make(), UNIVERSE)
        assert closure.labels(ClosureState("s", False)) == frozenset({"p"})
        assert closure.labels(S_ALL) == frozenset({CHAOS_PROPOSITION})

    def test_universe_signal_mismatch_rejected(self):
        with pytest.raises(ModelError, match="do not match"):
            chaotic_closure(self.make(), InteractionUniverse.singletons({"x"}, {"b"}))

    def test_name_defaults_to_chaos_of(self):
        assert chaotic_closure(self.make(), UNIVERSE).name == "chaos(M)"


class TestHelpers:
    def test_is_chaos_state(self):
        assert is_chaos_state(S_ALL)
        assert is_chaos_state(S_DELTA)
        assert not is_chaos_state(ClosureState("s", True))
        assert not is_chaos_state("plain")

    def test_closure_base_state(self):
        assert closure_base_state(ClosureState("s", True)) == "s"
        assert closure_base_state(S_DELTA) is None
        with pytest.raises(ModelError):
            closure_base_state("plain")

    def test_run_stays_in_learned_part(self):
        stay = Run(ClosureState("s", False)).extend(A, ClosureState("t", True))
        escape = Run(ClosureState("s", True)).extend(A, S_ALL)
        assert run_stays_in_learned_part(stay)
        assert not run_stays_in_learned_part(escape)

    def test_chaos_state_repr(self):
        assert repr(S_ALL) == "s_all"
        assert repr(S_DELTA) == "s_delta"
        assert repr(ClosureState("s", True)) == "('s',1)"
