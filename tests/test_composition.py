"""Unit tests for synchronous parallel composition (Definition 3)."""

import pytest

from repro.automata import (
    Automaton,
    Interaction,
    composable,
    compose,
    compose_all,
    orthogonal,
    reachable_states,
)
from repro.errors import CompositionError


def client() -> Automaton:
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
        ],
        initial=["idle"],
        labels={"idle": {"c.idle"}, "waiting": {"c.waiting"}},
        name="client",
    )


def server() -> Automaton:
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        labels={"ready": {"s.ready"}},
        name="server",
    )


class TestComposability:
    def test_client_server_composable(self):
        assert composable(client(), server())

    def test_not_orthogonal_when_communicating(self):
        assert not orthogonal(client(), server())

    def test_orthogonal_disjoint_machines(self):
        left = Automaton(inputs={"a"}, outputs={"b"}, initial=["s"])
        right = Automaton(inputs={"c"}, outputs={"d"}, initial=["t"])
        assert orthogonal(left, right)

    def test_shared_inputs_not_composable(self):
        left = Automaton(inputs={"a"}, outputs=(), initial=["s"])
        right = Automaton(inputs={"a"}, outputs=(), initial=["t"])
        assert not composable(left, right)
        with pytest.raises(CompositionError, match="not composable"):
            compose(left, right)

    def test_unknown_semantics_rejected(self):
        with pytest.raises(CompositionError, match="unknown composition semantics"):
            compose(client(), server(), semantics="weird")


class TestStrictComposition:
    def test_lock_step_protocol(self):
        composed = compose(client(), server())
        assert composed.states == frozenset({("idle", "ready"), ("waiting", "busy")})
        assert len(composed.transitions) == 2

    def test_interactions_are_unions(self):
        composed = compose(client(), server())
        send = next(t for t in composed.transitions if t.source == ("idle", "ready"))
        assert send.interaction == Interaction(["ping"], ["ping"])

    def test_labels_are_unions(self):
        composed = compose(client(), server())
        assert composed.labels(("idle", "ready")) == frozenset({"c.idle", "s.ready"})

    def test_signal_sets_are_unions(self):
        composed = compose(client(), server())
        assert composed.inputs == frozenset({"ping", "pong"})
        assert composed.outputs == frozenset({"ping", "pong"})

    def test_initial_states_are_products(self):
        left = Automaton(inputs=(), outputs=(), initial=["a", "b"],
                         transitions=[("a", (), (), "a"), ("b", (), (), "b")])
        right = Automaton(inputs=(), outputs=(), initial=["x"],
                          transitions=[("x", (), (), "x")])
        composed = compose(left, right)
        assert composed.initial == frozenset({("a", "x"), ("b", "x")})

    def test_unreachable_combinations_pruned(self):
        composed = compose(client(), server())
        assert ("idle", "busy") not in composed.states

    def test_strict_requires_all_outputs_consumed(self):
        # The server emits pong but this client never listens: strict
        # matching yields no synchronized step for the emission.
        deaf = Automaton(
            inputs={"pong"},
            outputs={"ping"},
            transitions=[("idle", (), ("ping",), "gone"), ("gone", (), (), "gone")],
            initial=["idle"],
            name="deaf",
        )
        composed = compose(deaf, server())
        assert composed.is_deadlock(("gone", "busy"))

    def test_unconsumed_output_blocks_strict(self):
        chatty = Automaton(
            inputs=(),
            outputs={"noise"},
            transitions=[("s", (), ("noise",), "s")],
            initial=["s"],
            name="chatty",
        )
        silent = Automaton(inputs=(), outputs=(), initial=["t"],
                           transitions=[("t", (), (), "t")])
        # Definition 3 literally: every output must be matched by the
        # peer's inputs, so the unconsumed emission cannot synchronize.
        composed = compose(chatty, silent)
        assert composed.transitions == frozenset()
        assert composed.is_deadlock(("s", "t"))
        # Open matching lets the unshared output pass through.
        open_composed = compose(chatty, silent, semantics="open")
        assert len(open_composed.transitions) == 1

    def test_default_name(self):
        assert compose(client(), server()).name == "(client || server)"

    def test_explicit_name(self):
        assert compose(client(), server(), name="sys").name == "sys"


class TestOpenComposition:
    def test_open_vs_strict_on_forwarding_relay(self):
        # The relay consumes the producer's message and forwards it to a
        # third party that is not part of the pair.  Open matching keeps
        # the joint step; Definition 3's strict matching rejects it
        # because the forwarded output is not consumed within the pair.
        producer = Automaton(
            inputs=(), outputs={"m"},
            transitions=[("p", (), ("m",), "p2"), ("p2", (), (), "p2")],
            initial=["p"], name="producer",
        )
        relay = Automaton(
            inputs={"m"}, outputs={"fwd"},
            transitions=[("r", ("m",), ("fwd",), "r")],
            initial=["r"], name="relay",
        )
        open_composed = compose(producer, relay, semantics="open")
        assert ("p2", "r") in reachable_states(open_composed)
        strict_composed = compose(producer, relay, semantics="strict")
        assert strict_composed.transitions == frozenset()


class TestComposeAll:
    def test_three_way_states_are_flat_tuples(self):
        third = Automaton(inputs=(), outputs=(), initial=["z"],
                          transitions=[("z", (), (), "z")])
        composed = compose_all([client(), server(), third])
        state = next(iter(composed.initial))
        assert len(state) == 3
        assert state == ("idle", "ready", "z")

    def test_single_automaton_passthrough(self):
        assert compose_all([client()]) is client() or compose_all([client()]) == client()

    def test_empty_sequence_rejected(self):
        with pytest.raises(CompositionError, match="at least one"):
            compose_all([])

    def test_name_override(self):
        composed = compose_all([client(), server()], name="pair")
        assert composed.name == "pair"
