"""Tests for the automotive case study (AUTOSAR-style integration)."""

import pytest

from repro import automotive
from repro.automata import compose
from repro.integration import integrate
from repro.logic import ModelChecker, parse
from repro.muml import Port
from repro.synthesis import IntegrationSynthesizer, Verdict


class TestModels:
    def test_pattern_verifies(self):
        result = automotive.brake_coordination_pattern().verify()
        assert result.ok

    def test_coordinator_is_deadlock_free_alone(self):
        checker = ModelChecker(automotive.coordinator_automaton())
        assert checker.holds(parse("AG not deadlock"))

    def test_supplier_a_refines_the_role(self):
        pattern = automotive.brake_coordination_pattern()
        port = Port(
            "acc",
            pattern.role("accUnit"),
            automotive.supplier_a_acc()._hidden.with_labels(automotive.acc_state_labeler),
        )
        check = port.check_conformance(
            contract_propositions=automotive.BRAKE_CONSTRAINT.propositions()
        )
        assert check.refines_role

    def test_supplier_b_does_not_refine_the_role(self):
        pattern = automotive.brake_coordination_pattern()
        port = Port(
            "acc",
            pattern.role("accUnit"),
            automotive.supplier_b_acc()._hidden.with_labels(automotive.acc_state_labeler),
        )
        check = port.check_conformance(
            contract_propositions=automotive.BRAKE_CONSTRAINT.propositions()
        )
        assert not check.refines_role

    def test_ground_truths(self):
        truth_a = compose(
            automotive.coordinator_automaton(), automotive.supplier_a_acc()._hidden
        )
        checker = ModelChecker(truth_a)
        assert checker.holds(automotive.BRAKE_CONSTRAINT)
        assert checker.holds(parse("AG not deadlock"))
        truth_b = compose(
            automotive.coordinator_automaton(), automotive.supplier_b_acc()._hidden
        )
        checker_b = ModelChecker(truth_b)
        assert not (
            checker_b.holds(automotive.BRAKE_CONSTRAINT)
            and checker_b.holds(parse("AG not deadlock"))
        )


class TestSynthesis:
    def test_supplier_a_proven(self):
        result = IntegrationSynthesizer(
            automotive.coordinator_automaton(),
            automotive.supplier_a_acc(),
            automotive.BRAKE_CONSTRAINT,
            labeler=automotive.acc_state_labeler,
        ).run()
        assert result.verdict is Verdict.PROVEN

    def test_supplier_b_rejected(self):
        result = IntegrationSynthesizer(
            automotive.coordinator_automaton(),
            automotive.supplier_b_acc(),
            automotive.BRAKE_CONSTRAINT,
            labeler=automotive.acc_state_labeler,
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION


class TestArchitectureWorkflow:
    def test_integrate_supplier_a(self):
        report = integrate(
            automotive.acc_architecture(),
            {"acc": automotive.supplier_a_acc()},
            labelers={"acc": automotive.acc_state_labeler},
        )
        assert report.ok

    def test_integrate_supplier_b(self):
        report = integrate(
            automotive.acc_architecture(),
            {"acc": automotive.supplier_b_acc()},
            labelers={"acc": automotive.acc_state_labeler},
        )
        assert not report.ok
        assert report.placements["acc"].verdict is Verdict.REAL_VIOLATION

    def test_architecture_context_matches_coordinator(self):
        extraction = automotive.acc_architecture().context_for("acc")
        assert extraction.legacy_inputs == automotive.ACC_INPUTS
        assert extraction.legacy_outputs == automotive.ACC_OUTPUTS
        assert extraction.constraints == (automotive.BRAKE_CONSTRAINT,)
