"""Property-based checks of the paper's lemmas (§2.4–§2.5).

* Lemma 1: refinement preserves deadlock freedom downwards.
* Lemma 2: parallel composition preserves refinement (precongruence).
* Definition 5 / §2.4: ACTL constraints survive composition with
  disjoint labeling (unless a deadlock is introduced) and refinement.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import (
    Automaton,
    Interaction,
    Transition,
    compose,
    deadlock_witness,
    refines,
)
from repro.logic import AG, AF, Interval, ModelChecker, Not, Or, Prop, parse

SETTINGS = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@st.composite
def machines(draw, prefix: str, inputs=("a",), outputs=("b",), max_states: int = 4) -> Automaton:
    """Small labeled machines over a fixed alphabet."""
    n_states = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"{prefix}{i}" for i in range(n_states)]
    input_sets = [frozenset()] + [frozenset({i}) for i in inputs]
    output_sets = [frozenset()] + [frozenset({o}) for o in outputs]
    transitions = []
    for state_index, state in enumerate(states):
        n_moves = draw(st.integers(min_value=0, max_value=2))
        for _ in range(n_moves):
            interaction = Interaction(
                draw(st.sampled_from(input_sets)), draw(st.sampled_from(output_sets))
            )
            target = states[draw(st.integers(min_value=0, max_value=n_states - 1))]
            transitions.append(Transition(state, interaction, target))
        del state_index
    labels = {
        state: frozenset(draw(st.sets(st.sampled_from([f"{prefix}.p", f"{prefix}.q"]), max_size=2)))
        for state in states
    }
    return Automaton(
        states=states,
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=[states[0]],
        labels=labels,
        name=prefix,
    )


def sub_automaton(automaton: Automaton, keep_fraction_seed: int) -> Automaton:
    """Drop some transitions — the result trivially satisfies condition 1
    of Definition 4 (every run is still a run of the original)."""
    transitions = sorted(
        automaton.transitions, key=lambda t: (repr(t.source), t.interaction.sort_key(), repr(t.target))
    )
    kept = [t for index, t in enumerate(transitions) if (index + keep_fraction_seed) % 3 != 0]
    return automaton.replace(transitions=kept)


class TestLemma1:
    @SETTINGS
    @given(machines("m"), st.integers(min_value=0, max_value=2))
    def test_refinement_preserves_deadlock_freedom(self, spec, seed):
        impl = sub_automaton(spec, seed)
        if not refines(impl, spec):
            return  # Lemma 1 only speaks about refinements
        if deadlock_witness(spec) is None:
            assert deadlock_witness(impl) is None


class TestLemma2:
    @SETTINGS
    @given(machines("m"), st.integers(min_value=0, max_value=2))
    def test_composition_preserves_refinement(self, spec, seed):
        impl = sub_automaton(spec, seed)
        if not refines(impl, spec):
            return
        # A fixed partner over the mirrored alphabet.
        partner = Automaton(
            inputs={"b"},
            outputs={"a"},
            transitions=[
                ("x", (), (), "x"),
                ("x", (), ("a",), "y"),
                ("y", ("b",), (), "x"),
                ("y", (), (), "y"),
            ],
            initial=["x"],
            name="partner",
        )
        composed_impl = compose(partner, impl)
        composed_spec = compose(partner, spec)
        # Lemma 2: M₁ ∥ M₂ ⊑ M₁ ∥ M₂′.  The composed machines may have
        # different reachable state spaces; compare on equal signatures.
        assert refines(
            composed_impl.replace(name="ci"),
            composed_spec.replace(name="cs"),
        )


class TestDefinition5:
    @SETTINGS
    @given(machines("m"))
    def test_actl_survives_composition_with_disjoint_labels(self, machine):
        formula = parse("AG (m.p or not m.p)")  # tautology sanity
        assert ModelChecker(machine).holds(formula)

    @SETTINGS
    @given(machines("m"), st.sampled_from([
        "AG not m.p",
        "AG (m.p -> AF[0,3] m.q)",
        "AG (not (m.p and m.q))",
    ]))
    def test_condition_3_composition(self, machine, text):
        """Definition 5 condition 3: M₁ ⊨ φ ⇒ M₁∥M₂ ⊨ φ ∨ M₁∥M₂ ⊨ δ."""
        formula = parse(text)
        if not ModelChecker(machine).holds(formula):
            return
        partner = Automaton(
            inputs={"b"},
            outputs={"a"},
            transitions=[
                ("x", (), ("a",), "y"),
                ("y", ("b",), (), "x"),
                ("x", (), (), "x"),
                ("y", (), (), "y"),
            ],
            initial=["x"],
            labels={"x": {"n.r"}},  # disjoint from 𝓛(φ)
            name="partner",
        )
        composed = compose(partner, machine)
        checker = ModelChecker(composed)
        has_deadlock = deadlock_witness(composed) is not None
        assert checker.holds(formula) or has_deadlock

    @SETTINGS
    @given(machines("m"), st.integers(min_value=0, max_value=2), st.sampled_from([
        "AG not m.p",
        "AG (not (m.p and m.q))",
    ]))
    def test_condition_4_refinement(self, spec, seed, text):
        """Definition 5 condition 4: M₁ ⊑ M₁′ ∧ M₁′ ⊨ φ ⇒ M₁ ⊨ φ."""
        formula = parse(text)
        impl = sub_automaton(spec, seed)
        if not refines(impl, spec):
            return
        if ModelChecker(spec).holds(formula):
            assert ModelChecker(impl).holds(formula)


class TestBoundedUntilBruteForce:
    @SETTINGS
    @given(machines("m"), st.integers(min_value=0, max_value=2), st.integers(min_value=0, max_value=3))
    def test_bounded_af_monotone_in_window(self, machine, low, extra):
        """Widening the window can only help AF (monotonicity)."""
        checker = ModelChecker(machine)
        narrow = AF(Prop("m.p"), Interval(low, low + extra))
        wide = AF(Prop("m.p"), Interval(low, low + extra + 2))
        assert checker.sat(narrow) <= checker.sat(wide)

    @SETTINGS
    @given(machines("m"), st.integers(min_value=0, max_value=3))
    def test_bounded_ag_antitone_in_window(self, machine, high):
        """Widening the window can only hurt AG (antitonicity)."""
        checker = ModelChecker(machine)
        narrow = AG(Prop("m.p"), Interval(0, high))
        wide = AG(Prop("m.p"), Interval(0, high + 2))
        assert checker.sat(wide) <= checker.sat(narrow)

    @SETTINGS
    @given(machines("m"))
    def test_ag_equals_not_ef_not(self, machine):
        checker = ModelChecker(machine)
        via_ag = checker.sat(parse("AG m.p"))
        via_ef = machine.states - checker.sat(parse("EF not m.p"))
        assert via_ag == via_ef
