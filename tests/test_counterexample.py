"""Unit tests for counterexample extraction (§4.1)."""

import pytest

from repro.automata import Automaton
from repro.errors import CounterexampleError
from repro.logic import ModelChecker, counterexample, deadlock_counterexample, parse


def build(transitions, labels=None, initial=("s0",)):
    return Automaton(
        inputs=(),
        outputs={"o"},
        transitions=transitions,
        initial=list(initial),
        labels=labels or {},
    )


@pytest.fixture
def path_to_bad():
    return build(
        [
            ("s0", (), ("o",), "s1"),
            ("s1", (), ("o",), "bad"),
            ("bad", (), ("o",), "bad"),
        ],
        labels={"bad": {"bad"}},
    )


class TestAGCounterexamples:
    def test_none_when_holds(self, path_to_bad):
        assert counterexample(path_to_bad, parse("AG true")) is None

    def test_shortest_path_to_violation(self, path_to_bad):
        run = counterexample(path_to_bad, parse("AG not bad"))
        assert run is not None
        assert run.states == ("s0", "s1", "bad")

    def test_run_is_valid(self, path_to_bad):
        run = counterexample(path_to_bad, parse("AG not bad"))
        assert run.is_run_of(path_to_bad)

    def test_conjunction_explains_violated_conjunct(self, path_to_bad):
        run = counterexample(path_to_bad, parse("AG true and AG not bad"))
        assert run is not None
        assert run.last_state == "bad"

    def test_boolean_top_level(self, path_to_bad):
        run = counterexample(path_to_bad, parse("bad"))
        assert run is not None
        assert run.states == ("s0",)


class TestDeadlockCounterexamples:
    def test_witness_ends_in_deadlock(self):
        automaton = build([("s0", (), ("o",), "stuck")])
        run = counterexample(automaton, parse("AG not deadlock"))
        assert run is not None
        assert run.last_state == "stuck"
        assert automaton.is_deadlock(run.last_state)

    def test_deadlock_counterexample_helper(self):
        automaton = build([("s0", (), ("o",), "stuck")])
        run = deadlock_counterexample(automaton)
        assert run is not None and run.last_state == "stuck"

    def test_helper_none_without_deadlock(self):
        automaton = build([("s0", (), ("o",), "s0")])
        assert deadlock_counterexample(automaton) is None


class TestBoundedResponseCounterexamples:
    def test_failing_bounded_af_extension(self):
        # req at s0; resp only after 3 steps but window is [1,2].
        automaton = build(
            [
                ("s0", (), ("o",), "s1"),
                ("s1", (), ("o",), "s2"),
                ("s2", (), ("o",), "s3"),
                ("s3", (), ("o",), "s0"),
            ],
            labels={"s0": {"req"}, "s3": {"resp"}},
        )
        formula = parse("AG (req -> AF[1,2] resp)")
        run = counterexample(automaton, formula)
        assert run is not None
        # The witness starts at the trigger and shows the window elapsing
        # without a response.
        assert run.states[0] == "s0"
        assert len(run.steps) >= 2
        assert "resp" not in automaton.labels(run.states[1])
        assert "resp" not in automaton.labels(run.states[2])

    def test_top_level_bounded_af(self):
        automaton = build([("s0", (), ("o",), "s0")])
        run = counterexample(automaton, parse("AF[1,3] never"))
        assert run is not None
        assert len(run.steps) == 3  # the exhausted window

    def test_unbounded_af_lasso(self):
        automaton = build(
            [("s0", (), ("o",), "s1"), ("s1", (), ("o",), "s0")],
            labels={},
        )
        run = counterexample(automaton, parse("AF goal"))
        assert run is not None
        # A lasso: some state repeats, goal never reached.
        assert len(set(run.states)) < len(run.states) or len(run.steps) == 0

    def test_af_deadlock_failure(self):
        automaton = build([("s0", (), ("o",), "end")])
        run = counterexample(automaton, parse("AF goal"))
        assert run is not None


class TestUnsupportedShapes:
    def test_existential_raises(self):
        automaton = build([("s0", (), ("o",), "s0")], labels={})
        with pytest.raises(CounterexampleError, match="only AG/AF/AU"):
            counterexample(automaton, parse("EF goal"))

    def test_reuses_checker(self, path_to_bad):
        checker = ModelChecker(path_to_bad)
        run = counterexample(path_to_bad, parse("AG not bad"), checker=checker)
        assert run is not None
