"""Regression tests over the committed shrunk scenario fixtures.

Every JSON file under ``tests/fixtures/scenarios/`` is a disagreement
the conformance campaign found and minimized (see
``docs/conformance.md``).  Each fixture's spec is rebuilt and re-judged
here so the original phenomenon stays pinned:

* its stored expectation must still match freshly derived
  full-composition ground truth (specs are self-certifying);
* the behavior recorded in the fixture's ``expect`` block must still
  hold (a BBC false alarm stays a *detected and explained* false alarm;
  a chaos degradation stays sound — never a crash, never a wrong
  definite verdict).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.synthesis.settings import SynthesisSettings
from repro.testing import (
    CampaignConfig,
    ScenarioSpec,
    baseline_verdicts,
    build_scenario,
    evaluate_scenario,
    ground_truth,
    run_scenario,
)
from repro.testing.faults import FaultProfile

FIXTURES = sorted(
    (pathlib.Path(__file__).parent / "fixtures" / "scenarios").glob("*.json")
)


def load(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    assert payload["format"] == 1
    return payload


def test_fixture_directory_is_populated():
    assert FIXTURES, "shrunk scenario fixtures are missing"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_spec_is_self_certifying(path):
    payload = load(path)
    scenario = build_scenario(ScenarioSpec.from_dict(payload["spec"]))
    assert ground_truth(scenario)["scenario"] == scenario.spec.expectation


def test_bbc_false_alarm_fixture_stays_explained():
    payload = load(
        pathlib.Path(__file__).parent
        / "fixtures"
        / "scenarios"
        / "bbc-false-alarm-until.json"
    )
    scenario = build_scenario(ScenarioSpec.from_dict(payload["spec"]))
    # The synthesis loop proves the conformant component across the
    # default matrix...
    evaluation = evaluate_scenario(scenario, with_baselines=True)
    assert evaluation.ok, evaluation.disagreements
    # ...while BBC still raises its (explained) false violation on the
    # very slots the fixture recorded.
    rows = baseline_verdicts(scenario)
    for slot_name in payload["expect"]["bbc_false_alarm"]:
        assert rows[slot_name]["bbc_false_alarm"] == "yes"
        assert rows[slot_name]["bbc_expected"] == "proven"
        assert rows[slot_name]["lstar"] == "proven"


def test_chaos_silent_reset_fixture_degrades_soundly():
    payload = load(
        pathlib.Path(__file__).parent
        / "fixtures"
        / "scenarios"
        / "chaos-silent-reset-degradation.json"
    )
    scenario = build_scenario(ScenarioSpec.from_dict(payload["spec"]))
    allowed = set(payload["expect"]["chaos_mild_verdict"])
    # Before the fix this crashed with SynthesisError ("no learning
    # progress ... contradicts §4.4"); a silent crash-reset inside the
    # 200-step output-free idle trace must instead degrade soundly.
    fault_seed = payload["expect"]["fault_seeds"][0]
    config = CampaignConfig(
        "chaos-mild",
        SynthesisSettings(fault_profile=FaultProfile.mild(fault_seed)),
    )
    verdicts = run_scenario(scenario, config.settings)
    assert verdicts["slot0"] in allowed, verdicts
    evaluation = evaluate_scenario(scenario, (config,))
    assert evaluation.ok, evaluation.disagreements
