"""White-box tests for the multi-legacy loop's internals."""

import pytest

from repro import railcab
from repro.automata import Automaton, Interaction
from repro.legacy import LegacyComponent
from repro.logic import parse
from repro.synthesis import MultiLegacySynthesizer
from repro.synthesis.multi import _MultiScratch
from repro.testing import TestCase


def make_synthesizer(context=None, components=None, property_text="AG not deadlock"):
    if components is None:
        components = [
            railcab.correct_front_shuttle(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
        ]
    return MultiLegacySynthesizer(
        context,
        components,
        parse(property_text)
        if property_text != "pattern"
        else railcab.PATTERN_CONSTRAINT,
        labelers={
            "frontShuttle": railcab.front_state_labeler,
            "rearShuttle": railcab.rear_state_labeler,
        },
    )


class TestComposition:
    def test_slots_have_increasing_indices(self):
        synthesizer = make_synthesizer()
        assert [slot.index for slot in synthesizer.slots] == [0, 1]

    def test_context_shifts_indices(self):
        synthesizer = MultiLegacySynthesizer(
            railcab.front_role_automaton(),
            [railcab.correct_rear_shuttle()],
            railcab.PATTERN_CONSTRAINT,
            labelers={"rearShuttle": railcab.rear_state_labeler},
        )
        assert [slot.index for slot in synthesizer.slots] == [1]

    def test_compose_without_context_is_pairwise(self):
        synthesizer = make_synthesizer()
        composed = synthesizer._compose()
        state = next(iter(composed.initial))
        assert isinstance(state, tuple) and len(state) == 2

    def test_compose_with_context_is_three_way(self):
        worker1 = LegacyComponent(
            Automaton(inputs={"t1"}, outputs={"d1"},
                      transitions=[("i", (), (), "i"), ("i", ("t1",), ("d1",), "i")],
                      initial=["i"]),
            name="w1",
        )
        worker2 = LegacyComponent(
            Automaton(inputs={"t2"}, outputs={"d2"},
                      transitions=[("i", (), (), "i"), ("i", ("t2",), ("d2",), "i")],
                      initial=["i"]),
            name="w2",
        )
        context = Automaton(
            inputs={"d1", "d2"}, outputs={"t1", "t2"},
            transitions=[("c", (), (), "c")], initial=["c"],
        )
        synthesizer = MultiLegacySynthesizer(
            context, [worker1, worker2], parse("AG true"),
        )
        composed = synthesizer._compose()
        state = next(iter(composed.initial))
        assert len(state) == 3


class TestJointStepMatcher:
    def make(self):
        return make_synthesizer()

    def test_served_pair_found(self):
        synthesizer = self.make()
        # Front reacts to ∅ by... idle; rear reacts to ∅ by proposing:
        # the proposal must be consumed by the front — table entries where
        # front consumes the proposal exist → a joint step exists.
        tables = [
            {  # frontShuttle reactions at noConvoy::default
                frozenset(): frozenset(),  # idle
                frozenset({"convoyProposal"}): frozenset(),
                frozenset({"breakConvoyProposal"}): None,
            },
            {  # rearShuttle reactions at noConvoy::default
                frozenset(): frozenset({"convoyProposal"}),
                frozenset({"startConvoy"}): None,
            },
        ]
        assert synthesizer._joint_step_exists(None, tables)

    def test_no_joint_step_when_outputs_unconsumed(self):
        synthesizer = self.make()
        tables = [
            {frozenset({"convoyProposal"}): None},  # front deaf
            {frozenset(): frozenset({"convoyProposal"})},  # rear insists
        ]
        assert not synthesizer._joint_step_exists(None, tables)

    def test_idle_idle_counts_as_a_step(self):
        synthesizer = self.make()
        tables = [
            {frozenset(): frozenset()},
            {frozenset(): frozenset()},
        ]
        assert synthesizer._joint_step_exists(None, tables)

    def test_all_blocked_means_deadlock(self):
        synthesizer = self.make()
        tables = [
            {frozenset(): None},
            {frozenset(): None},
        ]
        assert not synthesizer._joint_step_exists(None, tables)

    def test_context_offer_participates(self):
        worker = LegacyComponent(
            Automaton(inputs={"task"}, outputs={"done"},
                      transitions=[("i", ("task",), (), "busy"),
                                   ("i", (), (), "i"),
                                   ("busy", (), ("done",), "i")],
                      initial=["i"]),
            name="w",
        )
        context = Automaton(
            inputs={"done"}, outputs={"task"},
            transitions=[("c", (), ("task",), "w"), ("w", ("done",), (), "c")],
            initial=["c"],
        )
        synthesizer = MultiLegacySynthesizer(context, [worker], parse("AG true"))
        # Context in state "c" offers (∅, task); worker consumes task.
        tables = [{frozenset({"task"}): frozenset(), frozenset(): frozenset()}]
        assert synthesizer._joint_step_exists("c", tables)
        # Context in "w" offers only (done, ∅): the worker must produce
        # done; with these reactions it cannot.
        assert not synthesizer._joint_step_exists("w", tables)

    def test_stuck_context_never_steps(self):
        context = Automaton(
            inputs={"done"}, outputs={"task"},
            transitions=[("c", (), ("task",), "dead")],
            initial=["c"],
        )
        worker = LegacyComponent(
            Automaton(inputs={"task"}, outputs={"done"},
                      transitions=[("i", (), (), "i"), ("i", ("task",), ("done",), "i")],
                      initial=["i"]),
            name="w",
        )
        synthesizer = MultiLegacySynthesizer(context, [worker], parse("AG true"))
        tables = [{frozenset(): frozenset()}]
        assert not synthesizer._joint_step_exists("dead", tables)


class TestReactionTable:
    def test_table_probes_every_input_set(self):
        synthesizer = make_synthesizer(
            components=[
                railcab.correct_front_shuttle(),
                railcab.correct_rear_shuttle(convoy_ticks=1),
            ]
        )
        slot = synthesizer.slots[1]  # the rear shuttle
        scratch = _MultiScratch()
        prefix = TestCase(name="empty", steps=())
        table = synthesizer._reaction_table(slot, prefix, scratch)
        expected_inputs = {interaction.inputs for interaction in slot.universe}
        assert set(table) == expected_inputs
        assert scratch.tests == len(expected_inputs)
        # The rear shuttle at its initial state proposes on no input:
        assert table[frozenset()] == frozenset({"convoyProposal"})
        # …and refuses a rejection it never asked about:
        assert table[frozenset({"convoyProposalRejected"})] is None

    def test_table_learns_into_the_model(self):
        synthesizer = make_synthesizer()
        slot = synthesizer.slots[1]
        before = slot.model.knowledge_size()
        synthesizer._reaction_table(slot, TestCase(name="empty", steps=()), _MultiScratch())
        assert slot.model.knowledge_size() > before
