"""Unit tests for runs and traces (Definitions 2 and 7)."""

import pytest

from repro.automata import (
    Automaton,
    IDLE,
    Interaction,
    Run,
    Transition,
    enumerate_runs,
    enumerate_traces,
    run_of_transitions,
)
from repro.errors import ModelError

PING = Interaction(["ping"], None)
PONG = Interaction(None, ["pong"])


@pytest.fixture
def server() -> Automaton:
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[("r", PING, "b"), ("b", PONG, "r")],
        initial=["r"],
        name="server",
    )


class TestRunBasics:
    def test_empty_run(self):
        run = Run("s")
        assert run.states == ("s",)
        assert run.trace == ()
        assert run.last_state == "s"
        assert len(run) == 0
        assert not run.is_deadlock_run

    def test_extend(self):
        run = Run("r").extend(PING, "b").extend(PONG, "r")
        assert run.states == ("r", "b", "r")
        assert run.trace == (PING, PONG)
        assert len(run) == 2

    def test_block_creates_deadlock_run(self):
        run = Run("r").block(PING)
        assert run.is_deadlock_run
        assert run.trace == (PING,)
        assert len(run) == 1
        assert run.last_state == "r"

    def test_cannot_extend_deadlock_run(self):
        with pytest.raises(ModelError, match="cannot extend"):
            Run("r").block(PING).extend(PONG, "x")

    def test_cannot_block_twice(self):
        with pytest.raises(ModelError, match="already ends"):
            Run("r").block(PING).block(PONG)

    def test_prefix(self):
        run = Run("r").extend(PING, "b").extend(PONG, "r")
        assert run.prefix(1).states == ("r", "b")
        assert run.prefix(0).states == ("r",)

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            Run("r").prefix(1)

    def test_transitions(self):
        run = Run("r").extend(PING, "b")
        assert run.transitions() == (Transition("r", PING, "b"),)

    def test_str_contains_arrow(self):
        assert "->" in str(Run("r").extend(PING, "b"))
        assert "⊥" in str(Run("r").block(PING))


class TestRunValidity:
    def test_valid_regular_run(self, server):
        run = Run("r").extend(PING, "b").extend(PONG, "r")
        assert run.is_run_of(server)

    def test_wrong_start_state(self, server):
        assert not Run("b").is_run_of(server)

    def test_wrong_step(self, server):
        assert not Run("r").extend(PONG, "b").is_run_of(server)

    def test_valid_deadlock_run(self, server):
        run = Run("r").block(PONG)  # r cannot emit pong
        assert run.is_run_of(server)

    def test_blocked_interaction_must_be_disabled(self, server):
        run = Run("r").block(PING)  # but r CAN take ping
        assert not run.is_run_of(server)


class TestProjection:
    def test_project_composed_run(self):
        run = Run(("c0", "l0")).extend(Interaction(["m"], ["m"]), ("c1", "l1"))
        projected = run.project(1, frozenset(), frozenset({"m"}))
        assert projected.states == ("l0", "l1")
        assert projected.trace == (Interaction(None, ["m"]),)

    def test_project_keeps_blocked_tail(self):
        run = Run(("c", "l")).block(Interaction(["m"], None))
        projected = run.project(1, frozenset({"m"}), frozenset())
        assert projected.blocked == Interaction(["m"], None)

    def test_project_requires_tuple_states(self):
        with pytest.raises(ModelError, match="not a composed"):
            Run("plain").extend(IDLE, "other").project(0, frozenset(), frozenset())


class TestRunOfTransitions:
    def test_builds_connected_run(self):
        run = run_of_transitions([Transition("r", PING, "b"), Transition("b", PONG, "r")])
        assert run.states == ("r", "b", "r")

    def test_rejects_disconnected_sequence(self):
        with pytest.raises(ModelError, match="not connected"):
            run_of_transitions([Transition("r", PING, "b"), Transition("x", PONG, "r")])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ModelError, match="empty"):
            run_of_transitions([])

    def test_with_blocked_tail(self):
        run = run_of_transitions([Transition("r", PING, "b")], blocked=PONG)
        assert run.is_deadlock_run


class TestEnumeration:
    def test_enumerate_regular_runs(self, server):
        runs = list(enumerate_runs(server, 2, include_deadlock_runs=False))
        assert Run("r") in runs
        assert Run("r").extend(PING, "b") in runs
        assert Run("r").extend(PING, "b").extend(PONG, "r") in runs
        assert all(len(run.steps) <= 2 for run in runs)

    def test_enumerate_includes_deadlock_runs(self, server):
        runs = list(enumerate_runs(server, 1))
        assert Run("r").block(PONG) in runs

    def test_deadlock_runs_respect_custom_universe(self, server):
        extra = Interaction(["ping"], ["pong"])
        runs = list(enumerate_runs(server, 0, blocked_universe=[extra]))
        assert Run("r").block(extra) in runs

    def test_negative_bound_rejected(self, server):
        with pytest.raises(ValueError):
            list(enumerate_runs(server, -1))

    def test_enumerate_traces(self, server):
        traces = enumerate_traces(server, 2)
        assert () in traces
        assert (PING,) in traces
        assert (PING, PONG) in traces
        assert len(traces) == 3

    def test_all_enumerated_runs_are_valid(self, server):
        for run in enumerate_runs(server, 3):
            assert run.is_run_of(server), run
