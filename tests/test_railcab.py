"""Tests for the RailCab models and the paper's concrete artifacts."""

import pytest

from repro import railcab
from repro.automata import Automaton, Interaction, Run, compose
from repro.logic import check, parse
from repro.rtsc import validate


class TestRoleModels:
    def test_front_role_shape_matches_figure_5(self):
        automaton = railcab.front_role_automaton()
        assert automaton.states == frozenset(
            {"noConvoy::default", "noConvoy::answer", "convoy::default", "convoy::break"}
        )
        # noConvoy states carry the noConvoy proposition of the constraint.
        assert "frontRole.noConvoy" in automaton.labels("noConvoy::answer")
        assert "frontRole.convoy" in automaton.labels("convoy::break")

    def test_front_role_answers_nondeterministically(self):
        automaton = railcab.front_role_automaton()
        answers = {
            frozenset(t.outputs)
            for t in automaton.transitions_from("noConvoy::answer")
            if t.outputs
        }
        assert frozenset({"convoyProposalRejected"}) in answers
        assert frozenset({"startConvoy"}) in answers

    def test_rear_role_shape(self):
        automaton = railcab.rear_role_automaton()
        assert "noConvoy::wait" in automaton.states
        assert "convoy::wait" in automaton.states

    def test_statecharts_validate(self):
        assert validate(railcab.front_role_statechart()).ok
        assert validate(railcab.rear_role_statechart()).ok

    def test_braking_labels(self):
        automaton = railcab.front_role_automaton()
        assert "frontRole.reducedBraking" in automaton.labels("convoy::default")
        assert "frontRole.fullBraking" in automaton.labels("noConvoy::default")


class TestPattern:
    def test_pattern_verifies(self):
        assert railcab.distance_coordination_pattern().verify().ok

    def test_pattern_composition_respects_constraint(self):
        pattern = railcab.distance_coordination_pattern()
        composed = pattern.composition()
        assert check(composed, railcab.PATTERN_CONSTRAINT).holds
        assert check(composed, parse("AG not deadlock")).holds

    def test_role_invariants_hold(self):
        result = railcab.distance_coordination_pattern().verify()
        assert all(r.holds for r in result.invariant_results.values())


class TestShuttles:
    def test_correct_shuttle_is_strongly_deterministic(self):
        assert railcab.correct_rear_shuttle()._hidden.is_strongly_deterministic()

    def test_correct_shuttle_follows_protocol(self):
        shuttle = railcab.correct_rear_shuttle(convoy_ticks=0)
        outcome = shuttle.step([])
        assert outcome.outputs == frozenset({"convoyProposal"})
        outcome = shuttle.step(["startConvoy"])
        assert not outcome.blocked
        outcome = shuttle.step([])  # convoy tick leads to break proposal
        assert outcome.outputs == frozenset({"breakConvoyProposal"})

    def test_correct_shuttle_retries_after_rejection(self):
        shuttle = railcab.correct_rear_shuttle()
        shuttle.step([])
        shuttle.step(["convoyProposalRejected"])
        assert shuttle.step([]).outputs == frozenset({"convoyProposal"})

    def test_non_breaking_variant_idles_in_convoy(self):
        shuttle = railcab.correct_rear_shuttle(convoy_ticks=0, breaks_convoy=False)
        shuttle.step([])
        shuttle.step(["startConvoy"])
        for _ in range(5):
            assert shuttle.step([]).outputs == frozenset()

    def test_faulty_shuttle_enters_convoy_immediately(self):
        shuttle = railcab.faulty_rear_shuttle()
        shuttle.step([])  # proposes and switches to convoy
        from repro.legacy import Instrumentation

        with shuttle.instrumented(Instrumentation.FULL, live=False):
            assert shuttle.monitor_state() == "convoy"

    def test_faulty_shuttle_ignores_rejection(self):
        shuttle = railcab.faulty_rear_shuttle()
        shuttle.step([])
        outcome = shuttle.step(["convoyProposalRejected"])
        assert not outcome.blocked
        from repro.legacy import Instrumentation

        with shuttle.instrumented(Instrumentation.FULL, live=False):
            assert shuttle.monitor_state() == "convoy"

    def test_overbuilt_shuttle_has_requested_extra_states(self):
        base = railcab.correct_rear_shuttle().state_bound
        overbuilt = railcab.overbuilt_rear_shuttle(extra_states=7)
        assert overbuilt.state_bound == base + 7

    def test_overbuilt_diag_mode_unreachable_from_context(self):
        # The front role never sends breakConvoyAccepted while the rear
        # coasts alone, so the diagnostic chain stays invisible.
        overbuilt = railcab.overbuilt_rear_shuttle(extra_states=3)
        front = railcab.front_role_automaton()
        composed = compose(front, overbuilt._hidden)
        assert not any(
            str(state[1]).startswith("diag") for state in composed.states
        )

    def test_labeler(self):
        assert railcab.rear_state_labeler("convoy::wait") == frozenset({"rearRole.convoy"})
        assert railcab.rear_state_labeler("noConvoy::default") == frozenset(
            {"rearRole.noConvoy"}
        )
        assert railcab.rear_state_labeler("diag3") == frozenset({"rearRole.diag3"})


class TestPaperArtifacts:
    def test_listing_1_4_counterexample_is_valid_run(self):
        """The paper's Listing 1.4 trace exists in our composed model."""
        front = railcab.front_role_automaton()
        faulty = railcab.faulty_rear_shuttle()._hidden.with_labels(railcab.rear_state_labeler)
        composed = compose(front, faulty)
        listing_1_4 = Run(("noConvoy::default", "noConvoy")).extend(
            Interaction(["convoyProposal"], ["convoyProposal"]),
            ("noConvoy::answer", "convoy"),
        )
        assert listing_1_4.is_run_of(composed)
        # and the reached state violates the pattern constraint:
        labels = composed.labels(("noConvoy::answer", "convoy"))
        assert "frontRole.noConvoy" in labels
        assert "rearRole.convoy" in labels

    def test_listing_1_1_shape_exists_in_initial_closure_composition(self):
        """A long chaos counterexample of Listing 1.1's shape exists:
        proposal → rejected → proposal → startConvoy → … → s_delta."""
        from repro.automata import S_DELTA, chaotic_closure
        from repro.legacy import interface_of
        from repro.synthesis import initial_model

        shuttle = railcab.correct_rear_shuttle()
        interface = interface_of(shuttle)
        closure = chaotic_closure(
            initial_model(interface, labeler=railcab.rear_state_labeler),
            interface.universe(),
        )
        composed = compose(railcab.front_role_automaton(), closure)
        # Walk the Listing 1.1 interaction sequence and end in s_delta.
        send = Interaction(["convoyProposal"], ["convoyProposal"])
        reject = Interaction(["convoyProposalRejected"], ["convoyProposalRejected"])
        start = Interaction(["startConvoy"], ["startConvoy"])
        brk = Interaction(["breakConvoyProposal"], ["breakConvoyProposal"])

        def successors(state, interaction):
            return [
                t.target for t in composed.transitions_from(state) if t.interaction == interaction
            ]

        frontier = set(composed.initial)
        for interaction in (send, reject, send, start, brk):
            frontier = {t for state in frontier for t in successors(state, interaction)}
            assert frontier, f"no successor on {interaction}"
        assert any(state[1] == S_DELTA for state in frontier)
        deadlocked = [s for s in frontier if s[1] == S_DELTA and composed.is_deadlock(s)]
        assert deadlocked, "the Listing 1.1 run must end in a composed deadlock"

    def test_pattern_constraint_text(self):
        assert str(railcab.PATTERN_CONSTRAINT) == (
            "(AG (not (rearRole.convoy and frontRole.noConvoy)))"
        )
