"""Unit tests for the automaton model (Definition 1, §2.1 labeling)."""

import pytest

from repro.automata import Automaton, Interaction, Transition
from repro.errors import ModelError


def simple() -> Automaton:
    return Automaton(
        inputs={"a"},
        outputs={"b"},
        transitions=[
            ("s0", ("a",), (), "s1"),
            ("s1", (), ("b",), "s0"),
        ],
        initial=["s0"],
        labels={"s0": {"p"}},
        name="simple",
    )


class TestConstruction:
    def test_states_inferred_from_transitions(self):
        automaton = simple()
        assert automaton.states == frozenset({"s0", "s1"})

    def test_explicit_isolated_state(self):
        automaton = Automaton(states=["lonely"], inputs=(), outputs=(), initial=["lonely"])
        assert automaton.states == frozenset({"lonely"})
        assert automaton.is_deadlock("lonely")

    def test_requires_initial_state(self):
        with pytest.raises(ModelError, match="no initial state"):
            Automaton(inputs=(), outputs=(), transitions=(), initial=())

    def test_rejects_transition_with_unknown_input(self):
        with pytest.raises(ModelError, match="outside I"):
            Automaton(
                inputs={"a"},
                outputs=(),
                transitions=[("s", ("x",), (), "s")],
                initial=["s"],
            )

    def test_rejects_transition_with_unknown_output(self):
        with pytest.raises(ModelError, match="outside O"):
            Automaton(
                inputs=(),
                outputs={"b"},
                transitions=[("s", (), ("y",), "s")],
                initial=["s"],
            )

    def test_rejects_labels_on_unknown_states(self):
        with pytest.raises(ModelError, match="unknown states"):
            Automaton(inputs=(), outputs=(), initial=["s"], labels={"ghost": {"p"}})

    def test_accepts_transition_objects_and_triples(self):
        t = Transition("s", Interaction(["a"], None), "t")
        automaton = Automaton(
            inputs={"a"}, outputs=(), transitions=[t, ("t", Interaction(), "s")], initial=["s"]
        )
        assert len(automaton.transitions) == 2

    def test_rejects_garbage_transition(self):
        with pytest.raises(TypeError, match="cannot interpret"):
            Automaton(inputs=(), outputs=(), transitions=[("just-one",)], initial=["s"])


class TestStructure:
    def test_transitions_from_is_sorted_and_complete(self):
        automaton = simple()
        outgoing = automaton.transitions_from("s0")
        assert len(outgoing) == 1
        assert outgoing[0].target == "s1"

    def test_transitions_from_unknown_state_is_empty(self):
        assert simple().transitions_from("ghost") == ()

    def test_transitions_on(self):
        automaton = simple()
        assert len(automaton.transitions_on("s0", {"a"})) == 1
        assert automaton.transitions_on("s0", ()) == ()

    def test_successors(self):
        assert simple().successors("s0") == frozenset({"s1"})

    def test_enabled(self):
        assert simple().enabled("s1") == frozenset({Interaction(None, ["b"])})

    def test_deadlock_detection(self):
        automaton = Automaton(
            inputs=(), outputs=(), transitions=[("s", (), (), "t")], initial=["s"]
        )
        assert not automaton.is_deadlock("s")
        assert automaton.is_deadlock("t")
        assert automaton.deadlock_states == frozenset({"t"})

    def test_interactions_property(self):
        assert simple().interactions == {
            Interaction(["a"], None),
            Interaction(None, ["b"]),
        }


class TestDeterminism:
    def test_simple_is_deterministic(self):
        assert simple().is_deterministic()
        assert simple().is_strongly_deterministic()

    def test_same_interaction_two_targets_is_nondeterministic(self):
        automaton = Automaton(
            inputs={"a"},
            outputs=(),
            transitions=[("s", ("a",), (), "t"), ("s", ("a",), (), "u")],
            initial=["s"],
        )
        assert not automaton.is_deterministic()
        assert not automaton.is_strongly_deterministic()

    def test_same_inputs_different_outputs_breaks_only_strong_determinism(self):
        automaton = Automaton(
            inputs={"a"},
            outputs={"x", "y"},
            transitions=[("s", ("a",), ("x",), "t"), ("s", ("a",), ("y",), "u")],
            initial=["s"],
        )
        assert automaton.is_deterministic()
        assert not automaton.is_strongly_deterministic()

    def test_multiple_initial_states_are_nondeterministic(self):
        automaton = Automaton(inputs=(), outputs=(), initial=["s", "t"])
        assert not automaton.is_deterministic()


class TestLabels:
    def test_labels_default_to_empty(self):
        assert simple().labels("s1") == frozenset()

    def test_labels_lookup(self):
        assert simple().labels("s0") == frozenset({"p"})

    def test_labels_unknown_state_raises(self):
        with pytest.raises(ModelError, match="no state"):
            simple().labels("ghost")

    def test_label_map_covers_all_states(self):
        assert set(simple().label_map) == {"s0", "s1"}

    def test_propositions(self):
        assert simple().propositions == frozenset({"p"})

    def test_with_labels(self):
        relabeled = simple().with_labels(lambda state: {f"at.{state}"})
        assert relabeled.labels("s1") == frozenset({"at.s1"})


class TestRebuilding:
    def test_replace_name(self):
        assert simple().replace(name="other").name == "other"

    def test_replace_keeps_other_fields(self):
        replaced = simple().replace(name="other")
        assert replaced.transitions == simple().transitions
        assert replaced.label_map == simple().label_map

    def test_map_states(self):
        renamed = simple().map_states(lambda s: f"x-{s}")
        assert renamed.initial == frozenset({"x-s0"})
        assert renamed.labels("x-s0") == frozenset({"p"})
        assert len(renamed.transitions) == 2

    def test_map_states_rejects_merging(self):
        with pytest.raises(ModelError, match="not injective"):
            simple().map_states(lambda s: "same")

    def test_equality_ignores_name(self):
        assert simple() == simple().replace(name="other")

    def test_equality_considers_labels(self):
        assert simple() != simple().replace(labels={})

    def test_hashable(self):
        assert len({simple(), simple()}) == 1

    def test_repr_contains_counts(self):
        assert "|S|=2" in repr(simple())


class TestTransitionObject:
    def test_equality_and_hash(self):
        a = Transition("s", Interaction(["a"], None), "t")
        b = Transition("s", Interaction(["a"], None), "t")
        assert a == b and hash(a) == hash(b)

    def test_inputs_outputs_shortcuts(self):
        t = Transition("s", Interaction(["a"], ["b"]), "t")
        assert t.inputs == frozenset({"a"})
        assert t.outputs == frozenset({"b"})
