"""Tests for multi-counterexample extraction and iteration batching
(the optimisation proposed in the paper's conclusion)."""

import pytest

from repro import railcab
from repro.automata import Automaton
from repro.errors import SynthesisError
from repro.logic import ModelChecker, counterexamples, parse
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict


def two_bad_branches() -> Automaton:
    return Automaton(
        inputs=(),
        outputs={"o"},
        transitions=[
            ("s0", (), ("o",), "bad1"),
            ("s0", (), ("o",), "mid"),
            ("mid", (), ("o",), "bad2"),
            ("bad1", (), ("o",), "bad1"),
            ("bad2", (), ("o",), "bad2"),
        ],
        initial=["s0"],
        labels={"bad1": {"bad"}, "bad2": {"bad"}},
    )


class TestCounterexamplesFunction:
    def test_empty_when_holds(self):
        assert counterexamples(two_bad_branches(), parse("AG true"), limit=3) == []

    def test_single_limit_matches_shortest(self):
        runs = counterexamples(two_bad_branches(), parse("AG not bad"), limit=1)
        assert len(runs) == 1
        assert runs[0].last_state == "bad1"

    def test_multiple_distinct_violating_states(self):
        runs = counterexamples(two_bad_branches(), parse("AG not bad"), limit=5)
        assert len(runs) == 2
        assert {run.last_state for run in runs} == {"bad1", "bad2"}

    def test_runs_in_breadth_first_order(self):
        runs = counterexamples(two_bad_branches(), parse("AG not bad"), limit=5)
        lengths = [len(run.steps) for run in runs]
        assert lengths == sorted(lengths)

    def test_all_runs_valid(self):
        automaton = two_bad_branches()
        for run in counterexamples(automaton, parse("AG not bad"), limit=5):
            assert run.is_run_of(automaton)

    def test_conjunction_routes_to_violated_conjunct(self):
        runs = counterexamples(
            two_bad_branches(), parse("AG true and AG not bad"), limit=2
        )
        assert len(runs) == 2

    def test_non_ag_shape_falls_back_to_single(self):
        automaton = Automaton(
            inputs=(), outputs={"o"},
            transitions=[("s0", (), ("o",), "s0")], initial=["s0"],
        )
        runs = counterexamples(automaton, parse("AF goal"), limit=4)
        assert len(runs) == 1

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            counterexamples(two_bad_branches(), parse("AG not bad"), limit=0)

    def test_reuses_checker(self):
        automaton = two_bad_branches()
        checker = ModelChecker(automaton)
        runs = counterexamples(automaton, parse("AG not bad"), checker=checker, limit=2)
        assert runs


class TestBatchedSynthesis:
    def run_with(self, k: int):
        return IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            settings=SynthesisSettings(counterexamples_per_iteration=k),
        ).run()

    def test_batching_still_proves(self):
        for k in (2, 4):
            assert self.run_with(k).verdict is Verdict.PROVEN

    def test_batching_reduces_verification_rounds(self):
        baseline = self.run_with(1)
        batched = self.run_with(4)
        assert batched.iteration_count <= baseline.iteration_count

    def test_batching_finds_faults(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.faulty_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            settings=SynthesisSettings(counterexamples_per_iteration=4),
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(SynthesisError):
            IntegrationSynthesizer(
                railcab.front_role_automaton(),
                railcab.correct_rear_shuttle(),
                railcab.PATTERN_CONSTRAINT,
                settings=SynthesisSettings(counterexamples_per_iteration=0),
            )

    def test_learned_model_still_observation_conforming(self):
        result = self.run_with(4)
        hidden = railcab.correct_rear_shuttle(convoy_ticks=1)._hidden
        for transition in result.final_model.transitions:
            assert transition in hidden.transitions
