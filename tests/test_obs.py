"""The observability layer: tracer, metrics registry, exporters.

The span and metric *names* are a stable contract — ``docs/observability.md``
documents them, dashboards and trace diffs rely on them — so the loop
tests here assert the exact name sets, not just "something was traced".
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro import railcab
from repro.errors import SynthesisError
from repro.obs import (
    NULL_TRACER,
    DEFAULT_TIME_BOUNDS,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    chrome_trace,
    encode_event,
    fold_diff,
    fold_self_time,
    load_trace,
    metric_events,
    publish_record,
    record_counters,
    render_fold_diff,
    render_fold_table,
    render_trace_summary,
    resolve_tracer,
    span_event,
    span_line,
    write_trace,
)
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings, Verdict

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The stable span-name contract of a single-placement synthesis run
#: (every name must appear in a traced correct-shuttle run).
LOOP_SPAN_NAMES = {
    "loop.run",
    "loop.iteration",
    "verify.step",
    "closure.update",
    "product.update",
    "checker.check",
    "counterexample.derive",
    "test.execute",
    "monitor.replay",
    "learn.merge",
}

#: Counter names published per iteration (record_counters namespaces
#: plus the loop_* rollups).
LOOP_COUNTER_NAMES = {
    "closure_groups_reused",
    "closure_groups_rebuilt",
    "dirty_states",
    "affected_states",
    "product_hits",
    "product_misses",
    "closure_cache_hits",
    "closure_cache_misses",
    "loop_iterations",
    "loop_tests_executed",
    "loop_knowledge_gained",
}


def _traced_run(ticks: int = 1, **settings_kwargs):
    tracer = Tracer()
    result = IntegrationSynthesizer(
        railcab.front_role_automaton(),
        railcab.correct_rear_shuttle(convoy_ticks=ticks),
        railcab.PATTERN_CONSTRAINT,
        labeler=railcab.rear_state_labeler,
        port="rearRole",
        settings=SynthesisSettings(tracer=tracer, **settings_kwargs),
    ).run()
    return tracer, result


# ---------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.inc("c", 4)
        registry.set_gauge("g", 2.5)
        registry.observe("h", 0.0005)
        registry.observe("h", 99.0)  # overflow bucket
        snapshot = registry.as_dict()
        assert snapshot["counters"] == {"c": 5}
        assert snapshot["gauges"] == {"g": 2.5}
        hist = snapshot["histograms"]["h"]
        assert hist["count"] == 2
        assert sum(hist["counts"]) == 2
        assert hist["counts"][-1] == 1  # the 99s observation
        assert len(hist["counts"]) == len(DEFAULT_TIME_BOUNDS) + 1

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", bounds=(1.0, 1.0))

    def test_as_dict_is_name_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.inc(name)
        assert list(registry.as_dict()["counters"]) == ["alpha", "mid", "zeta"]

    def test_absorb_has_gauge_semantics(self):
        registry = MetricsRegistry()
        stats = {"work": 10, "shards": (3, 4), "flag": True}
        registry.absorb(stats)
        registry.absorb(stats)  # re-publishing must not double-count
        gauges = registry.as_dict()["gauges"]
        assert gauges == {"work": 10, "shards[0]": 3, "shards[1]": 4}

    def test_absorb_list_valued_counters(self):
        registry = MetricsRegistry()
        registry.absorb(
            {
                "per_shard_work": [7, 0, 12.5],
                "mixed": [1, "skip-me", True, 2],
                "empty": [],
            }
        )
        gauges = registry.as_dict()["gauges"]
        assert gauges == {
            "per_shard_work[0]": 7,
            "per_shard_work[1]": 0,
            "per_shard_work[2]": 12.5,
            # Non-numeric and boolean elements are skipped, but the
            # numeric elements around them keep their original indices.
            "mixed[0]": 1,
            "mixed[3]": 2,
        }

    def test_absorb_colliding_prefixes_last_write_wins(self):
        registry = MetricsRegistry()
        # Two sources whose prefixed names collide: "shard_" + "work"
        # lands on the same gauge as an unprefixed "shard_work".  Gauge
        # semantics (last write wins) make the collision well-defined
        # rather than double-counted.
        registry.absorb({"work": 10, "items": (1, 2)}, prefix="shard_")
        registry.absorb({"shard_work": 99, "shard_items[0]": 8})
        gauges = registry.as_dict()["gauges"]
        assert gauges["shard_work"] == 99
        assert gauges["shard_items[0]"] == 8
        assert gauges["shard_items[1]"] == 2
        assert set(gauges) == {"shard_work", "shard_items[0]", "shard_items[1]"}

    def test_histogram_exact_bucket_boundaries(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(1.0, 2.0, 5.0))
        # Bounds are inclusive upper bounds: an observation exactly on
        # a bound lands in that bound's bucket, not the next one.
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(5.0)
        hist.observe(0.0)  # at/below the first bound
        hist.observe(5.000001)  # just past the last bound: overflow
        snapshot = hist.as_dict()
        assert snapshot["bounds"] == [1.0, 2.0, 5.0]
        assert snapshot["counts"] == [2, 1, 1, 1]
        assert snapshot["count"] == 5 == sum(snapshot["counts"])
        assert snapshot["total"] == pytest.approx(13.000001)

    def test_null_registry_records_nothing(self):
        from repro.obs import NULL_METRICS

        NULL_METRICS.inc("c")
        NULL_METRICS.set_gauge("g", 1)
        NULL_METRICS.observe("h", 1.0)
        assert NULL_METRICS.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRecordPlumbing:
    def test_publish_record_accumulates(self, tiny_record=None):
        from repro.synthesis import IterationRecord

        record = IterationRecord(
            0, 1, 0, 0, 1, 0, 1, True, True, None, None, False, None, 2, 1, None, 3,
            product_hits=5, product_misses=2, product_shards=2,
            product_shard_states_explored=(4, 3),
        )
        registry = MetricsRegistry()
        publish_record(registry, record)
        publish_record(registry, record)  # counters accumulate across iterations
        snapshot = registry.as_dict()
        assert snapshot["counters"]["product_hits"] == 10
        assert snapshot["counters"]["loop_iterations"] == 2
        assert snapshot["counters"]["loop_tests_executed"] == 4
        assert snapshot["counters"]["loop_knowledge_gained"] == 6
        assert snapshot["counters"]["product_shard_states_explored[0]"] == 8
        assert snapshot["counters"]["product_shard_states_explored[1]"] == 6
        # Shard *counts* are configuration, not work: gauges.
        assert snapshot["gauges"]["product_shards"] == 2
        assert "product_shards" not in snapshot["counters"]

    def test_record_counters_key_order_matches_result_to_dict(self):
        from repro.synthesis import IterationRecord

        record = IterationRecord(
            0, 1, 0, 0, 1, 0, 1, True, True, None, None, False, None, 0, 0, None, 0
        )
        assert list(record_counters(record)) == [
            "closure_groups_reused",
            "closure_groups_rebuilt",
            "dirty_states",
            "affected_states",
            "product_hits",
            "product_misses",
            "product_shards",
            "product_shard_states_explored",
            "product_shard_handoffs",
            "product_shard_merge_conflicts",
            "product_dense_states",
            "product_bitset_words",
            "checker_fixpoint_work",
            "checker_shards",
            "checker_shard_fixpoint_work",
            "checker_shard_handoffs",
            "test_retries",
            "test_timeouts",
            "tests_inconclusive",
            "quarantine_size",
        ]


# ----------------------------------------------------------------- tracer


class TestTracer:
    def test_span_context_manager_records(self):
        tracer = Tracer()
        with tracer.span("outer", color="blue"):
            with tracer.span("inner"):
                pass
        names = [span.name for span in tracer.spans]
        assert names == ["inner", "outer"]  # completion order
        outer = tracer.spans[1]
        assert outer.track == "main"
        assert outer.args == {"color": "blue"}
        assert outer.duration >= tracer.spans[0].duration

    def test_span_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("s") as handle:
            handle.set(hits=3)
        assert tracer.spans[0].args == {"hits": 3}

    def test_record_rebases_onto_epoch(self):
        import time

        tracer = Tracer()
        begin = time.perf_counter()
        tracer.record("worker", track="shard-1", start=begin, duration=0.5, round=2)
        span = tracer.spans[0]
        assert span.track == "shard-1"
        assert span.start >= 0.0  # rebased, not the absolute clock value
        assert span.start < 10.0
        assert span.args == {"round": 2}

    def test_wrap_decorator(self):
        tracer = Tracer()

        @tracer.wrap("fn")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert tracer.spans[0].name == "fn"

    def test_streaming_sink_retains_nothing(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("s"):
            pass
        assert tracer.spans == ()
        assert [span.name for span in seen] == ["s"]

    def test_exception_still_emits_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [span.name for span in tracer.spans] == ["failing"]


class TestNullTracer:
    def test_is_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("s") as handle:
            handle.set(key="value")
        assert NULL_TRACER.spans == ()

    def test_wrap_is_identity(self):
        def function():
            return 7

        assert NullTracer().wrap("name")(function) is function

    def test_resolve_without_env_is_null(self, monkeypatch):
        from repro.obs.tracer import TRACE_ENV

        monkeypatch.delenv(TRACE_ENV, raising=False)
        assert resolve_tracer(None) is NULL_TRACER

    def test_resolve_prefers_explicit(self, monkeypatch):
        from repro.obs.tracer import TRACE_ENV

        monkeypatch.setenv(TRACE_ENV, "/tmp/never-written")
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer


class TestSettingsIntegration:
    def test_settings_reject_non_tracer(self):
        with pytest.raises(SynthesisError, match="tracer must provide"):
            SynthesisSettings(tracer=42)

    def test_tracer_excluded_from_equality(self):
        assert SynthesisSettings(tracer=Tracer()) == SynthesisSettings()


# --------------------------------------------------------- the name contract


class TestLoopSpanContract:
    """The traced verify→test→learn loop emits exactly the documented names."""

    def test_single_placement_span_names(self):
        tracer, result = _traced_run()
        assert result.verdict is Verdict.PROVEN
        names = {span.name for span in tracer.spans}
        assert LOOP_SPAN_NAMES <= names
        # checker fixpoint/bounded solves appear under their own names.
        assert names - LOOP_SPAN_NAMES <= {
            "checker.fixpoint",
            "checker.bounded",
            "checker.shard_round",
            "product.shard_round",
            "product.merge",
            "test.retry",
            "fault.inject",
        }

    def test_loop_run_and_iteration_args(self):
        tracer, result = _traced_run()
        run_span = next(s for s in tracer.spans if s.name == "loop.run")
        assert run_span.args == {"synthesizer": "IntegrationSynthesizer"}
        indices = [
            s.args["index"] for s in tracer.spans if s.name == "loop.iteration"
        ]
        assert sorted(indices) == list(range(result.iteration_count))

    def test_loop_metrics_contract(self):
        tracer, result = _traced_run()
        snapshot = tracer.metrics.as_dict()
        assert LOOP_COUNTER_NAMES <= set(snapshot["counters"])
        assert snapshot["counters"]["loop_iterations"] == result.iteration_count
        assert snapshot["gauges"]["loop_iteration_count"] == result.iteration_count
        assert {"test_execute_seconds", "monitor_replay_seconds"} <= set(
            snapshot["histograms"]
        )
        assert any(name.startswith("pool_") for name in snapshot["gauges"])
        assert any(name.startswith("checker_") for name in snapshot["gauges"])

    def test_closure_cache_counters_match_result(self):
        tracer, result = _traced_run()
        counters = tracer.metrics.as_dict()["counters"]
        assert counters["closure_cache_hits"] == sum(
            r.closure_groups_reused for r in result.iterations
        )
        assert counters["closure_cache_misses"] == sum(
            r.closure_groups_rebuilt for r in result.iterations
        )

    def test_multi_legacy_span_names(self):
        tracer = Tracer()
        result = __import__("repro.synthesis.multi", fromlist=["MultiLegacySynthesizer"]).MultiLegacySynthesizer(
            None,
            [railcab.correct_front_shuttle(), railcab.correct_rear_shuttle()],
            railcab.PATTERN_CONSTRAINT,
            labelers={
                "frontShuttle": railcab.front_state_labeler,
                "rearShuttle": railcab.rear_state_labeler,
            },
            settings=SynthesisSettings(tracer=tracer),
        ).run()
        assert result.verdict is Verdict.PROVEN
        run_span = next(s for s in tracer.spans if s.name == "loop.run")
        assert run_span.args == {"synthesizer": "MultiLegacySynthesizer"}
        names = {span.name for span in tracer.spans}
        assert LOOP_SPAN_NAMES <= names

    def test_null_tracer_run_is_untouched(self):
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
        ).run()
        assert result.verdict is Verdict.PROVEN
        assert NULL_TRACER.spans == ()

    def test_traced_and_untraced_runs_agree(self):
        tracer, traced = _traced_run()
        untraced = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            railcab.correct_rear_shuttle(convoy_ticks=1),
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
            port="rearRole",
        ).run()
        assert traced.verdict is untraced.verdict
        assert traced.iteration_count == untraced.iteration_count
        assert [r.knowledge_gained for r in traced.iterations] == [
            r.knowledge_gained for r in untraced.iterations
        ]


# -------------------------------------------------------------- exporters


class TestChromeTrace:
    def test_document_shape(self):
        tracer, _ = _traced_run(parallelism=2, checker_parallelism=2)
        document = chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0] == {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": "repro"},
        }
        tracks = {
            e["args"]["name"] for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert "main" in tracks
        assert any(t.startswith("checker/shard-") for t in tracks)
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete, "expected X events"
        for event in complete:
            assert event["pid"] == 1
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0

    def test_json_round_trips(self, tmp_path):
        tracer, _ = _traced_run()
        path = str(tmp_path / "trace.chrome.json")
        write_trace(tracer, path, format="chrome")
        document = json.loads(pathlib.Path(path).read_text())
        assert "traceEvents" in document


class TestJsonlTrace:
    def test_round_trip(self, tmp_path):
        tracer, _ = _traced_run()
        path = str(tmp_path / "trace.jsonl")
        write_trace(tracer, path, format="jsonl")
        spans, metrics = load_trace(path)
        assert [s.name for s in spans] == [s.name for s in tracer.spans]
        assert [s.args for s in spans] == [dict(s.args) for s in tracer.spans]
        counter_names = {m["name"] for m in metrics if m["kind"] == "counter"}
        assert "loop_iterations" in counter_names

    def test_chrome_load_recovers_tracks(self, tmp_path):
        tracer, _ = _traced_run()
        path = str(tmp_path / "trace.chrome.json")
        write_trace(tracer, path, format="chrome")
        spans, metrics = load_trace(path)
        assert {s.track for s in spans} == {s.track for s in tracer.spans}
        assert metrics == []  # chrome documents carry no metric events

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(Tracer(), str(tmp_path / "x"), format="perfetto")

    def test_metric_events_are_sorted(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        events = metric_events(registry)
        assert [e["name"] for e in events] == ["alpha", "zeta"]

    def test_span_line_matches_generic_encoding(self):
        # The streaming sinks' hand-built fast path must stay
        # byte-identical to encode_event(span_event(span)) — JSONL
        # files from either path are diffable against each other.
        tracer, _ = _traced_run()
        for span in tracer.spans:
            assert span_line(span) == encode_event(span_event(span))
        odd = Span("n", "t", 1e-07, 0.25, {"z": 1, "a": [0.5, "s"], "m": None})
        assert span_line(odd) == encode_event(span_event(odd))
        assert json.loads(span_line(odd))["args"] == {"z": 1, "a": [0.5, "s"], "m": None}


# ---------------------------------------------------------------- analysis


def _span(name, start, duration, track="main", **args):
    return Span(name=name, track=track, start=start, duration=duration, args=args)


class TestFoldSelfTime:
    def test_children_subtract_from_parent(self):
        rows = fold_self_time(
            [
                _span("parent", 0.0, 1.0),
                _span("child", 0.1, 0.6),
                _span("grandchild", 0.2, 0.2),
            ]
        )
        by_name = {row["name"]: row for row in rows}
        assert by_name["parent"]["self"] == pytest.approx(0.4)
        assert by_name["child"]["self"] == pytest.approx(0.4)
        assert by_name["grandchild"]["self"] == pytest.approx(0.2)
        assert rows[0]["name"] in ("parent", "child")  # sorted by self desc

    def test_tracks_fold_independently(self):
        rows = fold_self_time(
            [
                _span("a", 0.0, 1.0, track="one"),
                _span("b", 0.0, 1.0, track="two"),
            ]
        )
        by_name = {row["name"]: row for row in rows}
        # Same interval on different tracks: no nesting between them.
        assert by_name["a"]["self"] == pytest.approx(1.0)
        assert by_name["b"]["self"] == pytest.approx(1.0)

    def test_render_fold_table_limit(self):
        rows = fold_self_time([_span(f"s{i}", i, 0.5) for i in range(5)])
        table = render_fold_table(rows, limit=2)
        assert "3 more span name" in table
        assert len(table.splitlines()) == 5  # header, rule, 2 rows, ellipsis


class TestFoldDiff:
    def test_diff_sorts_by_absolute_delta(self):
        old = fold_self_time([_span("a", 0.0, 1.0), _span("b", 2.0, 0.5)])
        new = fold_self_time([_span("a", 0.0, 1.1), _span("b", 2.0, 2.0)])
        rows = fold_diff(old, new)
        assert [row["name"] for row in rows] == ["b", "a"]  # |+1.5| > |+0.1|
        b_row = rows[0]
        assert b_row["old_self"] == pytest.approx(0.5)
        assert b_row["new_self"] == pytest.approx(2.0)
        assert b_row["delta_self"] == pytest.approx(1.5)
        assert (b_row["old_count"], b_row["new_count"]) == (1, 1)

    def test_one_sided_names_diff_against_zero(self):
        old = fold_self_time([_span("gone", 0.0, 1.0)])
        new = fold_self_time([_span("born", 0.0, 0.25)])
        rows = {row["name"]: row for row in fold_diff(old, new)}
        assert rows["gone"]["delta_self"] == pytest.approx(-1.0)
        assert rows["gone"]["new_count"] == 0
        assert rows["born"]["old_self"] == 0.0
        assert rows["born"]["delta_self"] == pytest.approx(0.25)

    def test_render_fold_diff_table(self):
        old = fold_self_time([_span("steady", 0.0, 1.0)])
        new = fold_self_time([_span("steady", 0.0, 1.5), _span("born", 2.0, 0.5)])
        table = render_fold_diff(fold_diff(old, new))
        assert "delta ms" in table
        assert "new" in table  # the born row has no base to percent against
        assert "1->1" in table
        assert table.splitlines()[-1] == "net self-time delta: +1000.00 ms"

    def test_render_fold_diff_limit(self):
        old = fold_self_time([_span(f"s{i}", 2.0 * i, 1.0) for i in range(4)])
        rows = fold_diff(old, [])
        table = render_fold_diff(rows, limit=2)
        assert "2 more span name" in table


class TestTraceSummary:
    def test_per_iteration_rows(self):
        tracer, result = _traced_run()
        summary = render_trace_summary(tracer)
        lines = summary.splitlines()
        assert lines[0].split() == [
            "it", "total", "verify", "checker", "cex", "test", "replay", "learn", "other",
        ]
        assert len(lines) == result.iteration_count + 2

    def test_falls_back_to_fold_without_iterations(self):
        summary = render_trace_summary([_span("lonely", 0.0, 1.0)])
        assert "lonely" in summary
        assert "self ms" in summary


# ----------------------------------------------------- determinism + CLI


def _fingerprint_script(ticks: int) -> str:
    return f"""
import hashlib, json
from repro import railcab
from repro.obs import Tracer
from repro.synthesis import IntegrationSynthesizer, SynthesisSettings

tracer = Tracer()
IntegrationSynthesizer(
    railcab.front_role_automaton(),
    railcab.correct_rear_shuttle(convoy_ticks={ticks}),
    railcab.PATTERN_CONSTRAINT,
    labeler=railcab.rear_state_labeler,
    port="rearRole",
    settings=SynthesisSettings(tracer=tracer, parallelism=2, checker_parallelism=2),
).run()
shape = sorted(
    (span.track, span.name, json.dumps(span.args, sort_keys=True))
    for span in tracer.spans
)
print(hashlib.sha256(json.dumps(shape).encode()).hexdigest())
"""


class TestDeterminism:
    def test_span_shape_stable_across_hash_seeds(self):
        digests = set()
        for seed in ("0", "1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", _fingerprint_script(1)],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.add(proc.stdout.strip())
        assert len(digests) == 1, f"span shape varied across hash seeds: {digests}"


class TestCommandLine:
    def test_trace_flag_writes_chrome(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "run.chrome.json")
        code = main(
            ["railcab", "--shuttle", "correct", "--trace", path,
             "--trace-format", "chrome"]
        )
        assert code == 0
        document = json.loads(pathlib.Path(path).read_text())
        tracks = {
            e["args"]["name"] for e in document["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert "main" in tracks
        assert "trace (chrome) written" in capsys.readouterr().out

    def test_trace_report_tool(self, tmp_path):
        tracer, _ = _traced_run()
        path = str(tmp_path / "trace.jsonl")
        write_trace(tracer, path)
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "trace_report.py"),
             path, "--top", "3", "--summary"],
            capture_output=True, text=True, check=True,
        )
        assert "self ms" in proc.stdout
        assert "verify" in proc.stdout  # the summary table

    def _trace_report(self, *args):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "trace_report.py"), *args],
            capture_output=True, text=True,
        )

    def test_trace_report_missing_file_exits_2(self, tmp_path):
        proc = self._trace_report(str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 2
        assert "no such file" in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_trace_report_non_trace_file_exits_2(self, tmp_path):
        path = tmp_path / "not-a-trace.txt"
        path.write_text("this is not a trace\n")
        proc = self._trace_report(str(path))
        assert proc.returncode == 2
        assert "not a trace file" in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_trace_report_empty_trace_exits_2(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        proc = self._trace_report(str(path))
        assert proc.returncode == 2
        assert "no spans recorded" in proc.stderr
        assert len(proc.stderr.strip().splitlines()) == 1

    def test_trace_report_diff_mode(self, tmp_path):
        old_tracer, _ = _traced_run()
        new_tracer, _ = _traced_run(counterexamples_per_iteration=2)
        old_path = str(tmp_path / "old.jsonl")
        new_path = str(tmp_path / "new.jsonl")
        write_trace(old_tracer, old_path)
        write_trace(new_tracer, new_path)
        proc = self._trace_report("--diff", old_path, new_path, "--top", "5")
        assert proc.returncode == 0, proc.stderr
        assert "delta ms" in proc.stdout
        assert "net self-time delta" in proc.stdout
        assert "checker.check" in proc.stdout

    def test_trace_report_diff_rejects_extra_positional(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        proc = self._trace_report(str(path), "--diff", str(path), str(path))
        assert proc.returncode == 2
        assert "not both" in proc.stderr

    def test_env_activation_writes_jsonl(self, tmp_path):
        path = str(tmp_path / "env-trace.jsonl")
        env = dict(os.environ)
        env["REPRO_TRACE"] = path
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        script = """
from repro import railcab
from repro.synthesis import IntegrationSynthesizer

IntegrationSynthesizer(
    railcab.front_role_automaton(),
    railcab.correct_rear_shuttle(),
    railcab.PATTERN_CONSTRAINT,
    labeler=railcab.rear_state_labeler,
    port="rearRole",
).run()
"""
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        spans, metrics = load_trace(path)
        assert {s.name for s in spans} >= LOOP_SPAN_NAMES
        assert any(m["name"] == "loop_iterations" for m in metrics)
