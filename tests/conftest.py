"""Shared fixtures: small canonical automata and components."""

from __future__ import annotations

import pytest

from repro.automata import Automaton, Interaction, InteractionUniverse
from repro.legacy import LegacyComponent


@pytest.fixture
def ping_client() -> Automaton:
    """Sends ping, waits for pong; labeled; may idle."""
    return Automaton(
        inputs={"pong"},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", ("pong",), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )


@pytest.fixture
def pong_server() -> Automaton:
    """Deterministic server answering each ping one period later."""
    return Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        labels={"ready": {"server.ready"}, "busy": {"server.busy"}},
        name="server",
    )


@pytest.fixture
def pong_component(pong_server) -> LegacyComponent:
    return LegacyComponent(pong_server.replace(labels={}), name="server")


@pytest.fixture
def ping_universe() -> InteractionUniverse:
    return InteractionUniverse.singletons({"ping"}, {"pong"})


@pytest.fixture
def idle() -> Interaction:
    return Interaction()
