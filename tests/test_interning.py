"""The dense integer-indexed core (:mod:`repro.automata.interning`).

Three layers of guarantees are pinned here:

1. **Data structures** — the interner is an append-only bijection whose
   id assignment is independent of hash-seed (repr-sorted batches), the
   bitset helpers round-trip exactly, and the CSR graph agrees with the
   successor mapping it was built from (forward and reverse).
2. **Image operators** — ``pre_exists``/``pre_forall`` equal their
   naive set-comprehension definitions on random graphs, with both
   deadlock conventions, and the numpy fast path (engaged above
   ``NUMPY_KERNEL_FLOOR``) agrees bit-for-bit with the stdlib scan.
3. **The dense checker** — sat sets, verdicts, and total fixpoint work
   of ``dense=True`` equal the legacy dict/set solvers on random model
   evolutions, cold and warm, for every shard count.  The dict solvers
   are the differential oracle the rewrite must be invisible against.
"""

from __future__ import annotations

import os
import subprocess
import sys
from array import array

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata import Automaton, StateInterner, compose, shard_of_id
from repro.automata.incremental import ClosureCache, IncrementalProduct
from repro.automata.interning import (
    NUMPY_KERNEL_FLOOR,
    DenseGraph,
    flags_of_mask,
    ids_of_mask,
    mask_of_flags,
    mask_of_ids,
    resolve_dense,
)
from repro.logic import ModelChecker
from tests.test_incremental import FORMULAS, UNIVERSE, _client, model_evolutions

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ------------------------------------------------------------- bitset helpers


@SETTINGS
@given(st.data())
def test_bitset_helpers_round_trip(data):
    """ids → mask → flags → mask → ids is the identity, any size."""
    size = data.draw(st.integers(min_value=0, max_value=200))
    ids = sorted(
        data.draw(
            st.sets(st.integers(min_value=0, max_value=max(size - 1, 0)), max_size=size)
        )
        if size
        else set()
    )
    mask = mask_of_ids(ids, size)
    assert ids_of_mask(mask) == ids
    flags = flags_of_mask(mask, size)
    assert len(flags) == size
    assert [i for i, flag in enumerate(flags) if flag] == ids
    assert mask_of_flags(flags) == mask


def test_bitset_helpers_round_trip_above_numpy_floor():
    """The packed/unpacked numpy path (when present) matches the scan."""
    size = NUMPY_KERNEL_FLOOR + 137
    ids = list(range(0, size, 3)) + [size - 1]
    ids = sorted(set(ids))
    mask = mask_of_ids(ids, size)
    flags = flags_of_mask(mask, size)
    assert [i for i, flag in enumerate(flags) if flag] == ids
    assert mask_of_flags(flags) == mask
    assert ids_of_mask(mask) == ids


def test_shard_of_id_is_plain_modulo():
    assert [shard_of_id(i, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(shard_of_id(i, 1) == 0 for i in range(16))


def test_resolve_dense_explicit_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_DENSE", "0")
    assert resolve_dense(True) is True
    assert resolve_dense(None) is False
    monkeypatch.delenv("REPRO_DENSE")
    assert resolve_dense(None) is True
    assert resolve_dense(False) is False
    for falsy in ("0", "false", "No", " OFF "):
        monkeypatch.setenv("REPRO_DENSE", falsy)
        assert resolve_dense(None) is False


# ----------------------------------------------------------------- interner

_STATES = st.one_of(
    st.text(min_size=0, max_size=6),
    st.tuples(st.text(max_size=4), st.text(max_size=4)),
    st.integers(min_value=-50, max_value=50),
)


@SETTINGS
@given(st.lists(_STATES, max_size=30))
def test_interner_round_trip_identity(states):
    """Every interned state resolves back to itself; ids are dense."""
    interner = StateInterner(states)
    assert len(interner) == len(set(states))
    for state in states:
        assert state in interner
        ident = interner.id_of(state)
        assert 0 <= ident < len(interner)
        assert interner.resolve(ident) == state
    assert sorted(interner.ids_of(set(states))) == list(range(len(interner)))
    assert interner.states_of(range(len(interner))) == frozenset(states)


@SETTINGS
@given(st.lists(st.lists(_STATES, max_size=12), max_size=6))
def test_interner_delta_extension_is_monotone(batches):
    """Extending never renumbers: old ids survive, fresh ids append."""
    interner = StateInterner()
    assigned: dict = {}
    for batch in batches:
        before = len(interner)
        added = interner.extend(batch)
        fresh = {s for s in batch if s not in assigned}
        assert added == len(fresh)
        assert len(interner) == before + added
        for state, ident in assigned.items():
            assert interner.id_of(state) == ident
        for state in batch:
            assigned[state] = interner.id_of(state)
    # Fresh ids of each batch form a contiguous block, repr-sorted.
    assert sorted(assigned.values()) == list(range(len(interner)))


def test_interner_fresh_batch_is_repr_sorted():
    interner = StateInterner(["b", "a", "c"])
    assert [interner.resolve(i) for i in range(3)] == ["a", "b", "c"]
    interner.extend(["e", "d", "a"])  # "a" already known: keeps id 0
    assert interner.id_of("a") == 0
    assert [interner.resolve(i) for i in range(5)] == ["a", "b", "c", "d", "e"]


def test_interner_mask_and_flags_agree():
    interner = StateInterner(["a", "b", "c", "d"])
    member = ["a", "c"]
    mask = interner.mask_of(member)
    flags = interner.flags_of(member)
    assert ids_of_mask(mask) == sorted(interner.ids_of(member))
    assert mask_of_flags(flags) == mask
    assert interner.states_of(ids_of_mask(mask)) == frozenset(member)


_ID_FINGERPRINT_SCRIPT = """
import hashlib
from repro.automata import StateInterner

interner = StateInterner()
interner.extend([("q%d" % i, "r%d" % (i * 7 % 11)) for i in range(40)])
interner.extend(["solo-%d" % i for i in range(13)])
interner.extend([("q%d" % i, "r%d" % (i * 7 % 11)) for i in range(60)])
digest = hashlib.sha256()
for ident in range(len(interner)):
    digest.update(repr((ident, interner.resolve(ident))).encode())
print(digest.hexdigest())
"""


def test_interner_ids_are_hash_seed_independent():
    """Three interpreters, three ``PYTHONHASHSEED`` values, one id table.

    The ids feed shard ownership (``id % K``) and every dense-counter
    fingerprint, so they must be a pure function of the interned batches
    — never of set-iteration order.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    root = os.path.dirname(src)
    fingerprints = set()
    for seed in ("0", "1", "2"):
        env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src + os.pathsep + root)
        result = subprocess.run(
            [sys.executable, "-c", _ID_FINGERPRINT_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            check=True,
        )
        fingerprints.add(result.stdout.strip())
    assert len(fingerprints) == 1, fingerprints


# ---------------------------------------------------------------- CSR graph


@st.composite
def dense_graphs(draw, *, max_states: int = 12):
    """A random successor mapping plus the interner/graph built from it."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"s{i}" for i in range(n)]
    successors = {
        state: tuple(
            sorted(draw(st.sets(st.sampled_from(states), max_size=n)), key=repr)
        )
        for state in states
    }
    interner = StateInterner(states)
    return interner, successors, DenseGraph.from_successors(interner, successors)


@SETTINGS
@given(dense_graphs())
def test_csr_graph_matches_successor_mapping(built):
    interner, successors, graph = built
    assert graph.size == len(interner)
    assert graph.edge_count == sum(len(t) for t in successors.values())
    for state, targets in successors.items():
        ident = interner.id_of(state)
        assert list(graph.successor_ids(ident)) == [
            interner.id_of(t) for t in targets
        ]
    # Reverse view: predecessor lists are exactly the transposed edges,
    # ordered by source id (counting sort).
    for state in successors:
        ident = interner.id_of(state)
        expected = sorted(
            interner.id_of(source)
            for source, targets in successors.items()
            if state in targets
        )
        assert list(graph.predecessor_ids(ident)) == expected


@SETTINGS
@given(dense_graphs(), st.data())
def test_pre_images_equal_naive_definitions(built, data):
    interner, successors, graph = built
    states = list(successors)
    member = data.draw(st.sets(st.sampled_from(states), max_size=len(states)))
    candidates = sorted(
        interner.ids_of(data.draw(st.sets(st.sampled_from(states), max_size=len(states))))
    )
    flags = interner.flags_of(member)
    member_ids = set(interner.ids_of(member))

    def naive(universal: bool, empty_value: bool) -> list[int]:
        out = []
        for ident in candidates:
            succ = list(graph.successor_ids(ident))
            if not succ:
                if empty_value:
                    out.append(ident)
            elif universal and all(s in member_ids for s in succ):
                out.append(ident)
            elif not universal and any(s in member_ids for s in succ):
                out.append(ident)
        return out

    assert graph.pre_exists(flags, candidates) == naive(False, False)
    assert graph.pre_exists(flags, candidates, empty_satisfies=True) == naive(False, True)
    assert graph.pre_forall(flags, candidates, require_successor=True) == naive(True, False)
    assert graph.pre_forall(flags, candidates, require_successor=False) == naive(True, True)


def test_numpy_kernel_agrees_with_stdlib_scan_above_floor():
    """A ring with chords, big enough to engage the numpy path.

    With numpy absent this still passes (both calls take the scan), so
    the test is meaningful on the numpy-absent CI leg too.
    """
    n = NUMPY_KERNEL_FLOOR + 300
    states = [f"s{i}" for i in range(n)]
    successors = {}
    for i in range(n):
        targets = [] if i % 97 == 5 else [states[(i + 1) % n]]
        if i % 3 == 0:
            targets.append(states[(i * 7 + 13) % n])
        successors[states[i]] = tuple(sorted(set(targets), key=repr))
    interner = StateInterner(states)
    graph = DenseGraph.from_successors(interner, successors)
    flags = bytearray(n)
    for i in range(0, n, 2):
        flags[i] = 1
    everyone = list(range(n))  # list => numpy path eligible
    for kwargs, method in (
        ({"empty_satisfies": False}, graph.pre_exists),
        ({"empty_satisfies": True}, graph.pre_exists),
        ({"require_successor": True}, graph.pre_forall),
        ({"require_successor": False}, graph.pre_forall),
    ):
        fast = method(flags, everyone, **kwargs)
        slow = method(flags, iter(everyone), **kwargs)  # iterator => stdlib scan
        assert fast == slow
    # array('I') candidates are accepted by both paths too.
    packed = array("I", everyone)
    assert graph.pre_exists(flags, packed) == graph.pre_exists(flags, iter(everyone))


# -------------------------------------------- differential: dense vs dict


def _warm_chain(models, *, dense: bool, parallelism: int = 1) -> list[ModelChecker]:
    """The checkers the incremental engine would build along ``models``."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    product = IncrementalProduct(semantics="strict")
    checkers: list[ModelChecker] = []
    previous = None
    for model in models:
        update = cache.update(model)
        step = product.update(
            [client, update.closure], [frozenset(), update.dirty_states]
        )
        checker = ModelChecker(
            step.automaton,
            parallelism=parallelism,
            dense=dense,
            warm_from=previous,
            dirty_states=step.dirty_states if previous is not None else frozenset(),
        )
        checkers.append(checker)
        previous = checker
    return checkers


@SETTINGS
@given(model_evolutions(max_steps=3))
def test_dense_solvers_equal_dict_solvers_cold(models):
    """Same sat sets, same verdicts, same total work — the rewrite is invisible."""
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    for model in models:
        composed = compose(client, cache.update(model).closure, semantics="strict")
        dense = ModelChecker(composed, dense=True)
        legacy = ModelChecker(composed, dense=False)
        for formula in FORMULAS:
            assert dense.sat(formula) == legacy.sat(formula), formula
            assert dense.check(formula).holds == legacy.check(formula).holds
        assert dense.stats.fixpoint_work == legacy.stats.fixpoint_work
        assert dense.stats.dense_states == len(composed.states)
        assert dense.stats.bitset_words == (len(composed.states) + 63) // 64
        assert legacy.stats.dense_states == 0


@SETTINGS
@given(model_evolutions(min_steps=2, max_steps=4))
def test_dense_warm_chain_equals_dict_warm_chain(models):
    """Warm-started dense checkers mirror the dict engine along an evolution."""
    dense_chain = _warm_chain(models, dense=True)
    dict_chain = _warm_chain(models, dense=False)
    for dense, legacy in zip(dense_chain, dict_chain):
        for formula in FORMULAS:
            assert dense.sat(formula) == legacy.sat(formula), formula
        assert dense.stats.fixpoint_work == legacy.stats.fixpoint_work


@SETTINGS
@given(model_evolutions(max_steps=3), st.sampled_from([2, 4, 8]))
def test_dense_sharding_conserves_work_and_sat_sets(models, shards):
    """``id % K`` sharding: same sat sets and *total* work for every K.

    Per-shard splits legitimately differ from the crc32 ownership of the
    dict engine; what is conserved is the sum — every state is expanded
    exactly once no matter who owns it.
    """
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    for model in models:
        composed = compose(client, cache.update(model).closure, semantics="strict")
        lone = ModelChecker(composed, parallelism=1, dense=True)
        sharded = ModelChecker(composed, parallelism=shards, dense=True)
        legacy = ModelChecker(composed, parallelism=shards, dense=False)
        for formula in FORMULAS:
            expected = lone.sat(formula)
            assert sharded.sat(formula) == expected, formula
            assert legacy.sat(formula) == expected, formula
        assert sharded.stats.fixpoint_work == lone.stats.fixpoint_work
        assert sharded.stats.fixpoint_work == legacy.stats.fixpoint_work
        assert sum(sharded.stats.shard_fixpoint_work) == sharded.stats.fixpoint_work


def test_dense_inline_attribution_matches_rounds_protocol():
    """Forcing the round-based scheduler changes nothing observable.

    The inline dense solvers attribute per-shard work analytically; with
    a forced strategy the genuine round protocol runs instead.  Both
    must produce identical sat sets, per-shard work, and handoffs.
    """
    client = _client()
    cache = ClosureCache(UNIVERSE, deterministic_implementation=True)
    # Deterministic fixture instead of hypothesis: one rich composition.
    closure = cache.update(_fixture_model()).closure
    composed = compose(client, closure, semantics="strict")
    inline = ModelChecker(composed, parallelism=4, dense=True)
    rounds = ModelChecker(composed, parallelism=4, dense=True, strategy="sequential")
    threads = ModelChecker(composed, parallelism=4, dense=True, strategy="thread")
    for formula in FORMULAS:
        expected = inline.sat(formula)
        assert rounds.sat(formula) == expected, formula
        assert threads.sat(formula) == expected, formula
    assert tuple(rounds.stats.shard_fixpoint_work) == tuple(
        inline.stats.shard_fixpoint_work
    )
    assert tuple(threads.stats.shard_fixpoint_work) == tuple(
        inline.stats.shard_fixpoint_work
    )
    assert rounds.stats.shard_handoffs == inline.stats.shard_handoffs
    assert threads.stats.shard_handoffs == inline.stats.shard_handoffs


def _fixture_model():
    from repro.automata import IncompleteAutomaton

    return IncompleteAutomaton(
        states=["q0", "q1", "q2"],
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("q0", ("ping",), ("pong",), "q1"),
            ("q1", (), (), "q2"),
            ("q2", ("ping",), (), "q0"),
        ],
        refusals=[("q1", ("ping",), ("pong",))],
        initial=["q0"],
        labels={"q0": {"p"}, "q1": {"q"}, "q2": {"p"}},
        name="fixture",
    )


def test_interner_extend_with_empty_batch_is_identity():
    """An empty warm-start batch adds nothing and renumbers nothing."""
    interner = StateInterner(["b", "a"])
    snapshot = {state: interner.id_of(state) for state in ("a", "b")}
    assert interner.extend([]) == 0
    assert interner.extend(iter(())) == 0  # exhausted iterator, same deal
    assert len(interner) == 2
    for state, ident in snapshot.items():
        assert interner.id_of(state) == ident
    # An empty interner extended by nothing stays empty.
    fresh = StateInterner()
    assert fresh.extend([]) == 0
    assert len(fresh) == 0


def test_interner_extend_repeating_known_states_is_identity():
    """Re-interning already-known states must not mint or move ids."""
    interner = StateInterner(["b", "a", "c"])
    snapshot = {state: interner.id_of(state) for state in ("a", "b", "c")}
    # Warm-start batches that only repeat known states, with duplicates
    # and in hostile orders.
    for batch in (["a"], ["c", "a"], ["b", "b", "b"], ["c", "b", "a", "a"]):
        assert interner.extend(batch) == 0
        assert len(interner) == 3
    for state, ident in snapshot.items():
        assert interner.id_of(state) == ident


def test_interner_extend_mixed_batch_keeps_known_ids_stable():
    """A batch mixing known and fresh states: known ids pinned, fresh
    ids appended as a contiguous repr-sorted block after the old ones."""
    interner = StateInterner(["b", "a"])
    assert (interner.id_of("a"), interner.id_of("b")) == (0, 1)
    added = interner.extend(["b", "z", "a", "y", "a"])
    assert added == 2
    assert (interner.id_of("a"), interner.id_of("b")) == (0, 1)
    assert (interner.id_of("y"), interner.id_of("z")) == (2, 3)
    # A second identical batch is now a pure repeat: full identity.
    assert interner.extend(["b", "z", "a", "y", "a"]) == 0
    assert [interner.resolve(i) for i in range(4)] == ["a", "b", "y", "z"]
