"""Unit tests for counterexample-based testing and deterministic replay (§5)."""

import pytest

from repro.automata import Automaton, Interaction, Run
from repro.errors import ReplayError
from repro.legacy import LegacyComponent
from repro.testing import (
    MessageEvent,
    Recording,
    StateEvent,
    TestCase,
    TestStep,
    TestVerdict,
    TimingEvent,
    events_for_run,
    execute_test,
    message_events,
    render_events,
    replay,
)
from repro.testing import test_case_from_counterexample as case_from_counterexample
from repro.testing import test_case_from_trace as case_from_trace

PING = Interaction(["ping"], None)
PONG = Interaction(None, ["pong"])


def server_component() -> LegacyComponent:
    hidden = Automaton(
        inputs={"ping"},
        outputs={"pong"},
        transitions=[
            ("ready", ("ping",), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


class TestTestCaseDerivation:
    def test_from_trace(self):
        case = case_from_trace([PING, PONG], name="t")
        assert len(case) == 2
        assert case.steps[0] == TestStep(frozenset({"ping"}), frozenset())
        assert case.trace == (PING, PONG)

    def test_from_counterexample_projects_component_side(self):
        run = Run(("c0", "l0")).extend(
            Interaction(["ping"], ["ping"]), ("c1", "l1")
        )
        case = case_from_counterexample(
            run, component_index=1, inputs=frozenset({"ping"}), outputs=frozenset()
        )
        assert case.steps == (TestStep(frozenset({"ping"}), frozenset()),)
        assert case.source_run is run

    def test_blocked_tail_becomes_final_step(self):
        run = Run(("c0", "l0")).block(Interaction(["ping"], None))
        case = case_from_counterexample(
            run, component_index=1, inputs=frozenset({"ping"}), outputs=frozenset()
        )
        assert len(case) == 1

    def test_empty_counterexample_gives_empty_case(self):
        case = case_from_counterexample(
            Run(("c", "l")), component_index=1, inputs=frozenset(), outputs=frozenset()
        )
        assert len(case) == 0


class TestExecutor:
    def test_confirmed_execution(self):
        component = server_component()
        case = case_from_trace(
            [PING, PONG, Interaction()], name="happy"
        )
        execution = execute_test(component, case, port="srv")
        assert execution.verdict is TestVerdict.CONFIRMED
        assert execution.confirmed
        assert execution.divergence_index is None
        assert len(execution.recording) == 3

    def test_diverged_execution_stops_at_divergence(self):
        component = server_component()
        # Expect pong immediately; the server needs one period.
        case = case_from_trace([Interaction(["ping"], ["pong"])])
        execution = execute_test(component, case)
        assert execution.verdict is TestVerdict.DIVERGED
        assert execution.divergence_index == 0
        record = execution.recording.steps[0]
        assert record.observed_outputs == frozenset()
        assert record.expected_outputs == frozenset({"pong"})

    def test_blocked_execution(self):
        component = server_component()
        case = case_from_trace([PING, PING])  # busy refuses ping
        execution = execute_test(component, case)
        assert execution.verdict is TestVerdict.BLOCKED
        assert execution.divergence_index == 1
        assert execution.recording.steps[1].blocked

    def test_minimal_events_record_messages(self):
        component = server_component()
        case = case_from_trace([PING, PONG])
        execution = execute_test(component, case, port="srv")
        assert MessageEvent("ping", "srv", "incoming", 1) in execution.events
        assert MessageEvent("pong", "srv", "outgoing", 2) in execution.events

    def test_component_reset_before_execution(self):
        component = server_component()
        component.step(["ping"])
        execution = execute_test(component, case_from_trace([PING]))
        assert execution.verdict is TestVerdict.CONFIRMED


class TestReplay:
    def run_and_replay(self, case: TestCase):
        component = server_component()
        execution = execute_test(component, case, port="srv")
        return execution, replay(component, execution.recording, port="srv")

    def test_replay_reconstructs_states(self):
        _, result = self.run_and_replay(case_from_trace([PING, PONG]))
        assert result.observed_run.states == ("ready", "busy", "ready")
        assert result.probe_effect_free

    def test_replay_of_blocked_recording_yields_deadlock_run(self):
        _, result = self.run_and_replay(case_from_trace([PING, PING]))
        run = result.observed_run
        assert run.blocked is not None
        assert run.blocked.inputs == frozenset({"ping"})
        assert run.last_state == "busy"
        assert result.blocked

    def test_blocked_tail_carries_expected_outputs(self):
        component = server_component()
        case = TestCase(
            name="t",
            steps=(
                TestStep(frozenset({"ping"}), frozenset()),
                TestStep(frozenset({"ping"}), frozenset({"pong"})),
            ),
        )
        execution = execute_test(component, case)
        result = replay(component, execution.recording)
        assert result.observed_run.blocked == Interaction(["ping"], ["pong"])

    def test_replay_requires_matching_component(self):
        component = server_component()
        execution = execute_test(component, case_from_trace([PING]))
        other = server_component()
        recording = Recording(component="different", steps=execution.recording.steps)
        with pytest.raises(ReplayError, match="belongs to"):
            replay(other, recording)

    def test_events_include_states_and_timing(self):
        _, result = self.run_and_replay(case_from_trace([PING, PONG]))
        kinds = [type(event).__name__ for event in result.events]
        assert "StateEvent" in kinds
        assert "TimingEvent" in kinds
        assert "MessageEvent" in kinds


class TestMonitorRendering:
    def test_message_events_listing(self):
        events = message_events((PING, PONG), port="rearRole")
        text = render_events(events)
        assert '[Message] name="ping", portName="rearRole", type="incoming"' in text
        assert '[Message] name="pong", portName="rearRole", type="outgoing"' in text

    def test_events_for_run_shape_matches_listing_1_3(self):
        run = Run("noConvoy").extend(
            Interaction(None, ["convoyProposal"]), "convoy"
        )
        text = render_events(events_for_run(run, port="rearRole"))
        lines = text.splitlines()
        assert lines[0] == '[CurrentState] name="noConvoy"'
        assert lines[1] == '[Message] name="convoyProposal", portName="rearRole", type="outgoing"'
        assert lines[2] == "[Timing] count=1"
        assert lines[3] == '[CurrentState] name="convoy"'

    def test_blocked_tail_rendered(self):
        run = Run("s").block(PING)
        text = render_events(events_for_run(run, port="p"))
        assert 'type="incoming"' in text

    def test_event_render_methods(self):
        assert StateEvent("s", 0).render() == '[CurrentState] name="s"'
        assert TimingEvent(3).render() == "[Timing] count=3"
