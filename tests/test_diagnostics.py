"""Tests for knowledge-coverage diagnostics and parallel unfolding."""

import pytest

from repro import railcab
from repro.automata import IncompleteAutomaton, Interaction, InteractionUniverse
from repro.errors import ModelError
from repro.legacy import interface_of
from repro.rtsc import Statechart, unfold_parallel
from repro.synthesis import (
    IntegrationSynthesizer,
    coverage_summary,
    knowledge_gaps,
)

A = Interaction(["a"], None)
B = Interaction(None, ["b"])
UNIVERSE = InteractionUniverse.singletons({"a"}, {"b"})


class TestKnowledgeGaps:
    def test_gaps_of_partial_model(self):
        model = IncompleteAutomaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", A, "t")],
            refusals=[("s", B)],
            initial=["s"],
        )
        gaps = knowledge_gaps(model, UNIVERSE)
        # At s: A known, B refused, idle unknown. At t: everything unknown.
        assert gaps["s"] == frozenset({Interaction()})
        assert gaps["t"] == frozenset(UNIVERSE)

    def test_complete_state_omitted(self):
        universe = InteractionUniverse.explicit([A], inputs=["a"], outputs=["b"])
        model = IncompleteAutomaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[("s", A, "s")],
            initial=["s"],
        )
        assert knowledge_gaps(model, universe) == {}

    def test_summary_mentions_percentage(self):
        model = IncompleteAutomaton(
            inputs={"a"}, outputs={"b"}, transitions=[("s", A, "s")], initial=["s"]
        )
        text = coverage_summary(model, UNIVERSE)
        assert "decided" in text
        assert "%" in text

    def test_proven_run_leaves_gaps_claim_c2(self):
        component = railcab.overbuilt_rear_shuttle(extra_states=5)
        result = IntegrationSynthesizer(
            railcab.front_role_automaton(),
            component,
            railcab.PATTERN_CONSTRAINT,
            labeler=railcab.rear_state_labeler,
        ).run()
        assert result.proven
        universe = interface_of(component).universe()
        gaps = knowledge_gaps(result.final_model, universe)
        # The proof did not need everything — C2 made concrete.
        assert gaps
        text = coverage_summary(result.final_model, universe)
        assert "unknown" in text


class TestUnfoldParallel:
    def build_regions(self):
        left = Statechart("light", outputs={"on"})
        off = left.location("off", initial=True)
        lit = left.location("lit")
        left.transition(off, lit, raised="on")
        left.transition(lit, off)
        right = Statechart("horn", inputs={"on"})
        quiet = right.location("quiet", initial=True)
        honking = right.location("honking")
        right.transition(quiet, honking, trigger="on")
        right.transition(honking, quiet)
        return left, right

    def test_regions_synchronise_on_shared_signal(self):
        left, right = self.build_regions()
        product = unfold_parallel([left, right])
        # The shared 'on' signal forces the joint switch: from the
        # initial configuration, every transition that raises 'on' lands
        # in (lit, honking) — the horn cannot stay quiet through it.
        assert ("lit", "honking") in product.states
        on_steps = [
            t
            for t in product.transitions_from(("off", "quiet"))
            if "on" in t.outputs
        ]
        assert on_steps
        assert all(t.target == ("lit", "honking") for t in on_steps)

    def test_labels_from_both_regions(self):
        left, right = self.build_regions()
        product = unfold_parallel([left, right])
        labels = product.labels(("off", "quiet"))
        assert "light.off" in labels and "horn.quiet" in labels

    def test_single_chart_passthrough(self):
        left, _ = self.build_regions()
        product = unfold_parallel([left], name="solo")
        assert product.name == "solo"
        assert product.states == frozenset({"off", "lit"})

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="at least one"):
            unfold_parallel([])

    def test_name_defaults_to_joined(self):
        left, right = self.build_regions()
        assert unfold_parallel([left, right]).name == "light||horn"
