"""Integration through connectors with QoS: synthesis over channels.

The paper models connectors as explicit channel automata "to take the
QoS characteristics of each connection into account" (§2.2).  These
tests run the full verify→test→learn loop against a context that is a
*composition* of a modeled client and two unit-delay channels — the
context-internal traffic is hidden so the strict Definition 3 matching
constrains only the legacy-facing signals.
"""

import pytest

from repro.automata import Automaton, compose_all, hide
from repro.errors import ModelError
from repro.legacy import LegacyComponent
from repro.logic import ModelChecker, parse
from repro.muml import delivered, unit_delay_channel
from repro.synthesis import IntegrationSynthesizer, Verdict


def channelled_client() -> Automaton:
    """Client speaking through two unit-delay channels.

    Client sends ``ping`` → channel delivers ``ping~`` to the server;
    server sends ``pong`` → channel delivers ``pong~`` to the client.
    """
    client = Automaton(
        inputs={delivered("pong")},
        outputs={"ping"},
        transitions=[
            ("idle", (), (), "idle"),
            ("idle", (), ("ping",), "waiting"),
            ("waiting", (delivered("pong"),), (), "idle"),
            ("waiting", (), (), "waiting"),
        ],
        initial=["idle"],
        labels={"idle": {"client.idle"}, "waiting": {"client.waiting"}},
        name="client",
    )
    to_server = unit_delay_channel(["ping"], name="toServer")
    to_client = unit_delay_channel(["pong"], name="toClient")
    composed = compose_all([client, to_server, to_client], name="client-over-wire")
    internal = (composed.inputs & composed.outputs) - {delivered("ping"), "pong"}
    return hide(composed, internal, name="client-over-wire")


def good_server() -> LegacyComponent:
    hidden = Automaton(
        inputs={delivered("ping")},
        outputs={"pong"},
        transitions=[
            ("ready", (delivered("ping"),), (), "busy"),
            ("ready", (), (), "ready"),
            ("busy", (), ("pong",), "ready"),
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


def mute_server() -> LegacyComponent:
    hidden = Automaton(
        inputs={delivered("ping")},
        outputs={"pong"},
        transitions=[
            ("ready", (delivered("ping"),), (), "mute"),
            ("ready", (), (), "ready"),
            # "mute" never answers nor even idles: the component halts.
        ],
        initial=["ready"],
        name="server",
    )
    return LegacyComponent(hidden, name="server")


RESPONSE = parse("AG (client.waiting -> AF[1,6] client.idle)")


class TestHideOperator:
    def test_hide_removes_signals(self):
        context = channelled_client()
        assert "ping" not in context.outputs  # internalised
        assert delivered("ping") in context.outputs  # legacy-facing
        assert "pong" in context.inputs  # legacy-facing
        assert delivered("pong") not in context.inputs  # internalised

    def test_hide_rejects_unknown_signals(self):
        client = channelled_client()
        with pytest.raises(ModelError, match="not part of"):
            hide(client, ["nonexistent"])

    def test_hide_preserves_structure(self):
        base = unit_delay_channel(["m"])
        hidden = hide(base, ["m"])
        assert len(hidden.states) == len(base.states)
        assert len(hidden.transitions) == len(base.transitions)


class TestGroundTruthOverChannels:
    def test_good_server_over_wire_satisfies_property(self):
        truth = compose_all(
            [channelled_client(), good_server()._hidden], name="truth"
        )
        checker = ModelChecker(truth)
        assert checker.holds(RESPONSE)
        assert checker.holds(parse("AG not deadlock"))


class TestSynthesisOverChannels:
    def test_good_server_proven_through_channels(self):
        result = IntegrationSynthesizer(
            channelled_client(),
            good_server(),
            RESPONSE,
            labeler=lambda s: {f"server.{s}"},
        ).run()
        assert result.verdict is Verdict.PROVEN
        # The latency was learned implicitly through idle periods.
        assert result.learned_states >= 2

    def test_mute_server_yields_real_deadlock(self):
        result = IntegrationSynthesizer(
            channelled_client(),
            mute_server(),
            RESPONSE,
            labeler=lambda s: {f"server.{s}"},
        ).run()
        assert result.verdict is Verdict.REAL_VIOLATION
        assert result.violation_kind in ("deadlock", "property")

    def test_architecture_context_extraction_hides_internals(self):
        from repro import railcab
        from repro.muml import Architecture, Component, Port
        from repro.automata import rename_signals

        pattern = railcab.distance_coordination_pattern()
        # The front role listens to channel-delivered rear messages.
        front_behavior = rename_signals(
            railcab.front_role_automaton(),
            {message: delivered(message) for message in railcab.REAR_TO_FRONT},
        )
        front_role_renamed = type(pattern.role("frontRole"))(
            "frontRole", front_behavior
        )
        port = Port("front", front_role_renamed, front_behavior)
        architecture = Architecture("piped")
        architecture.add_component(Component("leader", [port]))
        architecture.add_legacy("follower")
        channel = unit_delay_channel(sorted(railcab.REAR_TO_FRONT), name="radio")
        architecture.instantiate(
            pattern_with_renamed_front(front_role_renamed),
            {"frontRole": ("leader", "front"), "rearRole": ("follower", None)},
            connector=channel,
        )
        extraction = architecture.context_for("follower")
        # Channel-internal signals (raw rear messages arrive at the
        # channel, delivered ones at the role) must not leak... the raw
        # rear messages ARE legacy-facing (the follower sends them), so
        # they stay; the delivered ones are internal:
        for message in railcab.REAR_TO_FRONT:
            assert message in extraction.context.inputs
            assert delivered(message) not in extraction.context.outputs


def pattern_with_renamed_front(front_role):
    from repro import railcab
    from repro.muml import CoordinationPattern, Role

    rear = Role("rearRole", railcab.rear_role_automaton())
    return CoordinationPattern(
        "DistanceCoordination(piped)",
        [front_role, rear],
        constraint=railcab.PATTERN_CONSTRAINT,
    )
