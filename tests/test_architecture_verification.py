"""Tests for whole-architecture verification and RTSC urgency."""

import pytest

from repro import railcab
from repro.automata import Automaton, IDLE
from repro.errors import NotCompositionalError
from repro.logic import parse
from repro.muml import (
    Architecture,
    Component,
    CoordinationPattern,
    Port,
    Role,
    verify_architecture,
)
from repro.rtsc import ClockConstraint, Statechart, unfold


def convoy_architecture(*, with_legacy: bool = True) -> Architecture:
    pattern = railcab.distance_coordination_pattern()
    front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
    architecture = Architecture("convoy")
    architecture.add_component(Component("leader", [front_port]))
    if with_legacy:
        architecture.add_legacy("follower")
        architecture.instantiate(
            pattern,
            {"frontRole": ("leader", "front"), "rearRole": ("follower", None)},
        )
    else:
        rear_port = Port("rear", pattern.role("rearRole"), railcab.rear_role_automaton())
        architecture.add_component(Component("trailer", [rear_port]))
        architecture.instantiate(
            pattern,
            {"frontRole": ("leader", "front"), "rearRole": ("trailer", "rear")},
        )
    return architecture


class TestVerifyArchitecture:
    def test_fully_modeled_architecture_ok(self):
        report = verify_architecture(
            convoy_architecture(with_legacy=False),
            system_properties=[railcab.PATTERN_CONSTRAINT],
        )
        assert report.ok
        assert report.findings() == []
        assert report.system_deadlock is not None and report.system_deadlock.holds
        assert not report.skipped_system_check

    def test_pattern_results_included(self):
        report = verify_architecture(convoy_architecture(with_legacy=False))
        assert "DistanceCoordination" in report.pattern_results
        assert report.pattern_results["DistanceCoordination"].ok

    def test_port_results_keyed_by_component_and_port(self):
        report = verify_architecture(convoy_architecture(with_legacy=False))
        assert "leader.front" in report.port_results
        assert "trailer.rear" in report.port_results
        assert all(result.ok for result in report.port_results.values())

    def test_system_check_skipped_with_legacy(self):
        report = verify_architecture(
            convoy_architecture(with_legacy=True),
            system_properties=[railcab.PATTERN_CONSTRAINT],
        )
        assert report.skipped_system_check
        assert report.system_results == {}
        # Pattern and port checks still ran.
        assert report.pattern_results

    def test_violated_system_property_reported_with_witness(self):
        report = verify_architecture(
            convoy_architecture(with_legacy=False),
            system_properties=[parse("AG not frontRole.convoy")],
        )
        assert not report.ok
        assert any("system property" in finding for finding in report.findings())
        assert report.system_counterexamples

    def test_nonconforming_port_reported(self):
        pattern = railcab.distance_coordination_pattern()
        rogue_behavior = Automaton(
            inputs=railcab.FRONT_TO_REAR,
            outputs=railcab.REAR_TO_FRONT,
            transitions=[
                ("s", (), ("convoyProposal",), "s"),
                ("s", (), ("breakConvoyProposal",), "s"),
            ],
            initial=["s"],
            labels={"s": {"rearRole.noConvoy", "rearRole.fullBraking"}},
            name="rogue",
        )
        rogue_port = Port("rear", pattern.role("rearRole"), rogue_behavior)
        architecture = Architecture("bad")
        front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
        architecture.add_component(Component("leader", [front_port]))
        architecture.add_component(Component("trailer", [rogue_port]))
        architecture.instantiate(
            pattern, {"frontRole": ("leader", "front"), "rearRole": ("trailer", "rear")}
        )
        report = verify_architecture(architecture)
        assert not report.ok
        assert any("does not refine" in finding for finding in report.findings())

    def test_non_compositional_system_property_rejected(self):
        with pytest.raises(NotCompositionalError):
            verify_architecture(
                convoy_architecture(with_legacy=False),
                system_properties=[parse("EF frontRole.convoy")],
            )

    def test_each_pattern_verified_once(self):
        architecture = convoy_architecture(with_legacy=False)
        report = verify_architecture(architecture)
        assert len(report.pattern_results) == 1


class TestUrgentTransitions:
    def test_urgent_transition_blocks_idling(self):
        chart = Statechart("u", outputs={"go"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="go", urgent=True)
        automaton = unfold(chart)
        assert all(not t.interaction.is_idle for t in automaton.transitions_from("a"))

    def test_non_urgent_transition_keeps_idle_choice(self):
        chart = Statechart("u", outputs={"go"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="go")
        automaton = unfold(chart)
        assert any(t.interaction == IDLE for t in automaton.transitions_from("a"))

    def test_urgency_respects_guards(self):
        chart = Statechart("u", outputs={"go"}, clocks={"c"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, raised="go", guard=ClockConstraint.at_least("c", 2), urgent=True)
        automaton = unfold(chart)
        # Before the guard opens, idling is still possible…
        assert any(t.interaction == IDLE for t in automaton.transitions_from("a|c=0"))
        # …once it opens, the urgent transition suppresses the idle step.
        assert all(not t.interaction.is_idle for t in automaton.transitions_from("a|c=2"))

    def test_urgent_triggered_transition(self):
        chart = Statechart("u", inputs={"msg"})
        a = chart.location("a", initial=True)
        b = chart.location("b")
        chart.transition(a, b, trigger="msg", urgent=True)
        automaton = unfold(chart)
        # The urgent reception forbids idling in a — the chart insists on
        # consuming the message the moment it can.
        assert all(t.inputs == frozenset({"msg"}) for t in automaton.transitions_from("a"))
