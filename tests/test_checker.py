"""Unit tests for the CTL/CCTL model checker (maximal-path semantics)."""

import pytest

from repro.automata import Automaton
from repro.logic import ModelChecker, check, parse


def build(transitions, initial=("s0",), labels=None, inputs=(), outputs=("o",)):
    return Automaton(
        inputs=inputs,
        outputs=outputs,
        transitions=transitions,
        initial=list(initial),
        labels=labels or {},
    )


@pytest.fixture
def cycle():
    """s0 -> s1 -> s0 with p at s0, q at s1."""
    return build(
        [("s0", (), ("o",), "s1"), ("s1", (), ("o",), "s0")],
        labels={"s0": {"p"}, "s1": {"q"}},
    )


@pytest.fixture
def fork():
    """s0 branches to a p-loop and to a deadlock state labeled q."""
    return build(
        [
            ("s0", (), ("o",), "loop"),
            ("loop", (), ("o",), "loop"),
            ("s0", (), ("o",), "end"),
        ],
        labels={"loop": {"p"}, "end": {"q"}},
    )


class TestBooleanLayer:
    def test_constants(self, cycle):
        assert check(cycle, parse("true")).holds
        assert not check(cycle, parse("false")).holds

    def test_prop(self, cycle):
        assert check(cycle, parse("p")).holds
        assert not check(cycle, parse("q")).holds

    def test_not_and_or_implies(self, cycle):
        assert check(cycle, parse("not q")).holds
        assert check(cycle, parse("p and not q")).holds
        assert check(cycle, parse("q or p")).holds
        assert check(cycle, parse("q -> false")).holds

    def test_violating_initial_reported(self, cycle):
        result = check(cycle, parse("q"))
        assert result.violating_initial == frozenset({"s0"})


class TestUnboundedOperators:
    def test_ag(self, cycle):
        assert check(cycle, parse("AG (p or q)")).holds
        assert not check(cycle, parse("AG p")).holds

    def test_af(self, cycle):
        assert check(cycle, parse("AF q")).holds

    def test_ef_eg(self, cycle, fork):
        assert check(cycle, parse("EF q")).holds
        assert check(fork, parse("EG (p or true)")).holds
        assert not check(cycle, parse("EG p")).holds

    def test_ax_ex(self, cycle):
        assert check(cycle, parse("AX q")).holds
        assert check(cycle, parse("EX q")).holds
        assert not check(cycle, parse("EX p")).holds

    def test_until(self, cycle):
        assert check(cycle, parse("A[p U q]")).holds
        assert check(cycle, parse("E[p U q]")).holds

    def test_af_fails_on_avoiding_path(self, fork):
        # The loop path never reaches q.
        assert not check(fork, parse("AF q")).holds
        assert check(fork, parse("EF q")).holds


class TestDeadlockSemantics:
    def test_deadlock_atom(self, fork):
        checker = ModelChecker(fork)
        assert checker.sat(parse("deadlock")) == frozenset({"end"})

    def test_deadlock_free(self, cycle, fork):
        assert check(cycle, parse("AG not deadlock")).holds
        assert not check(fork, parse("AG not deadlock")).holds

    def test_ax_vacuous_at_deadlock(self, fork):
        checker = ModelChecker(fork)
        assert "end" in checker.sat(parse("AX false"))

    def test_af_fails_at_deadlock_without_goal(self):
        automaton = build([("s0", (), ("o",), "end")], labels={})
        assert not check(automaton, parse("AF q")).holds

    def test_af_holds_at_deadlock_with_goal(self):
        automaton = build([("s0", (), ("o",), "end")], labels={"end": {"q"}})
        assert check(automaton, parse("AF q")).holds

    def test_eg_satisfied_by_deadlocking_path(self, fork):
        # s0 -> end is a maximal path; q holds only at end though, so use
        # a formula true along it.
        assert check(fork, parse("EG (not p)")).holds  # path s0, end


class TestBoundedOperators:
    def test_af_bounded_exact(self, cycle):
        assert check(cycle, parse("AF[1,1] q")).holds
        assert not check(cycle, parse("AF[2,2] q")).holds
        assert check(cycle, parse("AF[0,2] p")).holds

    def test_af_bounded_window_excludes_now(self, cycle):
        # p holds now but the window starts at 1.
        assert not check(cycle, parse("AF[1,1] p")).holds

    def test_ag_bounded(self, cycle):
        assert check(cycle, parse("AG[0,0] p")).holds
        assert check(cycle, parse("AG[1,1] q")).holds
        assert not check(cycle, parse("AG[0,1] p")).holds

    def test_ef_eg_bounded(self, cycle):
        assert check(cycle, parse("EF[1,2] q")).holds
        assert not check(cycle, parse("EF[1,1] p")).holds
        assert check(cycle, parse("EG[0,0] p")).holds

    def test_bounded_until(self, cycle):
        assert check(cycle, parse("A[p U[1,2] q]")).holds
        assert not check(cycle, parse("A[p U[2,2] q]")).holds
        assert check(cycle, parse("E[p U[1,1] q]")).holds

    def test_bounded_af_deadlock_before_window_fails(self):
        automaton = build([("s0", (), ("o",), "end")], labels={"end": {"q"}})
        # Path ends at step 1; a window [2,3] can never be met.
        assert not check(automaton, parse("AF[2,3] q")).holds

    def test_bounded_ag_vacuous_after_deadlock(self):
        automaton = build([("s0", (), ("o",), "end")], labels={"s0": {"p"}, "end": {"p"}})
        # Positions 2..5 do not exist on the only path: vacuously fine.
        assert check(automaton, parse("AG[0,5] p")).holds

    def test_bounded_response_pattern(self):
        # request at s0, response exactly two steps later.
        automaton = build(
            [
                ("s0", (), ("o",), "s1"),
                ("s1", (), ("o",), "s2"),
                ("s2", (), ("o",), "s0"),
            ],
            labels={"s0": {"req"}, "s2": {"resp"}},
        )
        assert check(automaton, parse("AG (req -> AF[1,2] resp)")).holds
        assert not check(automaton, parse("AG (req -> AF[1,1] resp)")).holds


class TestCheckerInfrastructure:
    def test_sat_is_memoised(self, cycle):
        checker = ModelChecker(cycle)
        formula = parse("AG (p or q)")
        assert checker.sat(formula) is checker.sat(formula)

    def test_check_result_truthiness(self, cycle):
        assert bool(check(cycle, parse("true")))
        assert not bool(check(cycle, parse("false")))

    def test_multiple_initial_states_all_must_satisfy(self):
        automaton = build(
            [("s0", (), ("o",), "s0"), ("s1", (), ("o",), "s1")],
            initial=("s0", "s1"),
            labels={"s0": {"p"}},
        )
        assert not check(automaton, parse("p")).holds
        assert check(automaton, parse("EF true")).holds
