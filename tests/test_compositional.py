"""Unit tests for compositionality (Definition 5) and chaos weakening (§2.7)."""

import pytest

from repro.errors import NotCompositionalError
from repro.logic import (
    AG,
    Not,
    Or,
    Prop,
    assert_compositional,
    is_compositional,
    is_universal,
    parse,
    to_nnf,
    weaken_for_chaos,
)


class TestNNF:
    def test_pushes_negations(self):
        assert to_nnf(parse("not (p and q)")) == parse("not p or not q")

    def test_temporal_dual(self):
        assert to_nnf(parse("not AG p")) == parse("EF not p")

    def test_constants_simplify(self):
        assert to_nnf(parse("not true")) == parse("false")
        assert to_nnf(parse("not false")) == parse("true")


class TestCompositionality:
    @pytest.mark.parametrize(
        "text",
        [
            "AG (not (a and b))",
            "AG (req -> AF[1,5] resp)",
            "AG not deadlock",
            "A[p U q]",
            "not EF bad",  # NNF is AG not bad: universal
            "AX p and AG q",
        ],
    )
    def test_actl_fragment_is_compositional(self, text):
        assert is_universal(parse(text))
        assert is_compositional(parse(text))
        assert_compositional(parse(text))  # no raise

    @pytest.mark.parametrize(
        "text",
        [
            "EF goal",
            "AG EF reset",
            "E[p U q]",
            "not AG p",  # NNF is EF not p
            "EX p",
        ],
    )
    def test_existential_formulas_rejected(self, text):
        assert not is_compositional(parse(text))
        with pytest.raises(NotCompositionalError, match="Definition 5"):
            assert_compositional(parse(text))


class TestChaosWeakening:
    def test_positive_literal(self):
        assert weaken_for_chaos(parse("AG p")) == AG(Or(Prop("p"), Prop("chaos")))

    def test_negative_literal(self):
        weakened = weaken_for_chaos(parse("AG not p"))
        assert weakened == AG(Or(Not(Prop("p")), Prop("chaos")))

    def test_paper_constraint_shape(self):
        weakened = weaken_for_chaos(parse("A[] not (rear.convoy and front.noConvoy)"))
        # not(a and b) -> (¬a ∨ chaos) ∨ (¬b ∨ chaos)
        rendered = str(weakened)
        assert "chaos" in rendered
        assert "not rear.convoy" in rendered

    def test_deadlock_atom_not_weakened(self):
        weakened = weaken_for_chaos(parse("AG not deadlock"))
        assert weakened == parse("AG not deadlock")

    def test_chaos_proposition_itself_untouched(self):
        weakened = weaken_for_chaos(parse("AG chaos"))
        assert weakened == parse("AG chaos")

    def test_custom_chaos_proposition(self):
        weakened = weaken_for_chaos(parse("AG p"), chaos_proposition="χ")
        assert weakened == AG(Or(Prop("p"), Prop("χ")))

    def test_bounded_operator_preserved(self):
        weakened = weaken_for_chaos(parse("AG (p -> AF[1,3] q)"))
        assert "AF[1,3]" in str(weakened)
