"""Unit tests for reachability and witness-run analyses."""

from repro.automata import (
    Automaton,
    Interaction,
    Run,
    deadlock_witness,
    prune_unreachable,
    reachable_deadlocks,
    reachable_states,
    shortest_run_to,
    transition_cover_runs,
)

STEP = Interaction(None, ["tick"])


def chain(length: int, *, extra_unreachable: bool = False) -> Automaton:
    transitions = [(f"s{i}", (), ("tick",), f"s{i + 1}") for i in range(length)]
    states = [f"s{i}" for i in range(length + 1)]
    if extra_unreachable:
        states.append("island")
        transitions.append(("island", (), ("tick",), "island"))
    return Automaton(
        states=states,
        inputs=(),
        outputs={"tick"},
        transitions=transitions,
        initial=["s0"],
        name="chain",
    )


class TestReachability:
    def test_all_chain_states_reachable(self):
        assert reachable_states(chain(3)) == {f"s{i}" for i in range(4)}

    def test_island_not_reachable(self):
        assert "island" not in reachable_states(chain(2, extra_unreachable=True))

    def test_prune_removes_island(self):
        pruned = prune_unreachable(chain(2, extra_unreachable=True))
        assert "island" not in pruned.states
        assert all(t.source != "island" for t in pruned.transitions)

    def test_prune_is_identity_when_all_reachable(self):
        automaton = chain(2)
        assert prune_unreachable(automaton) is automaton


class TestShortestRun:
    def test_shortest_run_to_goal(self):
        run = shortest_run_to(chain(5), lambda s: s == "s3")
        assert run is not None
        assert run.states == ("s0", "s1", "s2", "s3")

    def test_goal_at_initial_gives_empty_run(self):
        run = shortest_run_to(chain(3), lambda s: s == "s0")
        assert run == Run("s0")

    def test_unreachable_goal_gives_none(self):
        assert shortest_run_to(chain(2), lambda s: s == "nowhere") is None

    def test_shortest_among_multiple_paths(self):
        automaton = Automaton(
            inputs=(),
            outputs={"tick"},
            transitions=[
                ("a", (), ("tick",), "b"),
                ("b", (), ("tick",), "goal"),
                ("a", (), ("tick",), "goal"),
            ],
            initial=["a"],
        )
        run = shortest_run_to(automaton, lambda s: s == "goal")
        assert run is not None and len(run.steps) == 1


class TestDeadlocks:
    def test_chain_end_is_reachable_deadlock(self):
        assert reachable_deadlocks(chain(2)) == frozenset({"s2"})

    def test_island_deadlocks_not_reported(self):
        automaton = chain(1, extra_unreachable=True)
        assert reachable_deadlocks(automaton) == frozenset({"s1"})

    def test_deadlock_witness_is_shortest(self):
        witness = deadlock_witness(chain(3))
        assert witness is not None
        assert witness.last_state == "s3"
        assert len(witness.steps) == 3

    def test_no_deadlock_gives_none(self):
        looping = Automaton(
            inputs=(), outputs=(), transitions=[("s", (), (), "s")], initial=["s"]
        )
        assert deadlock_witness(looping) is None


class TestTransitionCover:
    def test_cover_executes_every_transition(self):
        automaton = Automaton(
            inputs={"a"},
            outputs={"b"},
            transitions=[
                ("s", ("a",), (), "t"),
                ("t", (), ("b",), "s"),
                ("t", (), (), "t"),
            ],
            initial=["s"],
        )
        runs = transition_cover_runs(automaton)
        covered = {t for run in runs for t in run.transitions()}
        assert covered == automaton.transitions

    def test_cover_of_empty_automaton(self):
        automaton = Automaton(inputs=(), outputs=(), initial=["s"])
        assert transition_cover_runs(automaton) == []
