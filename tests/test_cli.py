"""Tests for the ``python -m repro`` command-line demo."""

import pytest

from repro.__main__ import main


class TestRailcabCommand:
    def test_faulty_shuttle(self, capsys):
        assert main(["railcab", "--shuttle", "faulty"]) == 0
        out = capsys.readouterr().out
        assert "verdict: real-violation" in out
        assert "shuttle2.convoyProposal!" in out

    def test_correct_shuttle(self, capsys):
        assert main(["railcab", "--shuttle", "correct"]) == 0
        out = capsys.readouterr().out
        assert "verdict: proven" in out

    def test_counterexample_batching_flag(self, capsys):
        assert main(["railcab", "--shuttle", "correct", "--counterexamples", "4"]) == 0
        assert "proven" in capsys.readouterr().out

    def test_loop_flags(self, capsys):
        assert (
            main(
                [
                    "railcab",
                    "--shuttle",
                    "correct",
                    "--parallelism",
                    "2",
                    "--checker-parallelism",
                    "2",
                    "--max-iterations",
                    "200",
                ]
            )
            == 0
        )
        assert "proven" in capsys.readouterr().out

    def test_no_incremental_flag(self, capsys):
        assert main(["railcab", "--shuttle", "correct", "--no-incremental"]) == 0
        assert "proven" in capsys.readouterr().out

    def test_report_flag_writes_markdown(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert main(["railcab", "--shuttle", "faulty", "--report", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# RailCab integration: faulty shuttle")
        assert "## Violation witness" in text

    def test_unknown_shuttle_rejected(self):
        with pytest.raises(SystemExit):
            main(["railcab", "--shuttle", "imaginary"])


class TestMultiCommand:
    def test_two_correct(self, capsys):
        assert main(["multi", "--front", "correct"]) == 0
        out = capsys.readouterr().out
        assert "verdict: proven" in out
        assert "frontShuttle" in out and "rearShuttle" in out

    def test_forgetful_front(self, capsys):
        assert main(["multi", "--front", "forgetful"]) == 0
        out = capsys.readouterr().out
        assert "real-violation" in out


class TestCompareCommand:
    def test_table_shape(self, capsys):
        assert main(["compare", "--extra-states", "2"]) == 0
        out = capsys.readouterr().out
        assert "L* member" in out
        assert " 2 " in out.splitlines()[-1] or out.splitlines()[-1].strip().startswith("2")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
