"""Unit tests for the Mechatronic UML layer: patterns, connectors,
components, architectures."""

import pytest

from repro.automata import Automaton, Interaction, reachable_states
from repro.errors import ModelError, NotCompositionalError
from repro.logic import parse
from repro.muml import (
    Architecture,
    Component,
    CoordinationPattern,
    Port,
    Role,
    bounded_delay_channel,
    delivered,
    lossy_channel,
    unit_delay_channel,
)
from repro import railcab


def producer() -> Automaton:
    return Automaton(
        inputs=set(),
        outputs={"m"},
        transitions=[("p", (), ("m",), "q"), ("q", (), (), "p")],
        initial=["p"],
        labels={"p": {"prod.ready"}},
        name="producer",
    )


def consumer(signal: str = "m") -> Automaton:
    return Automaton(
        inputs={signal},
        outputs=set(),
        transitions=[("w", (signal,), (), "w"), ("w", (), (), "w")],
        initial=["w"],
        labels={"w": {"cons.wait"}},
        name="consumer",
    )


class TestRole:
    def test_role_from_automaton(self):
        role = Role("prod", producer())
        assert role.behavior.name == "producer"

    def test_role_from_statechart(self):
        from repro.rtsc import Statechart

        chart = Statechart("r")
        chart.location("a", initial=True)
        role = Role("r", chart)
        assert isinstance(role.behavior, Automaton)

    def test_role_invariant_must_be_compositional(self):
        with pytest.raises(NotCompositionalError):
            Role("prod", producer(), invariant=parse("EF prod.ready"))

    def test_bad_behavior_type(self):
        with pytest.raises(ModelError, match="Automaton or Statechart"):
            Role("prod", "not-a-model")


class TestCoordinationPattern:
    def test_needs_two_roles(self):
        with pytest.raises(ModelError, match="at least two roles"):
            CoordinationPattern("p", [Role("a", producer())], constraint=parse("AG true"))

    def test_duplicate_role_names_rejected(self):
        with pytest.raises(ModelError, match="duplicate"):
            CoordinationPattern(
                "p",
                [Role("a", producer()), Role("a", consumer())],
                constraint=parse("AG true"),
            )

    def test_constraint_must_be_compositional(self):
        with pytest.raises(NotCompositionalError):
            CoordinationPattern(
                "p",
                [Role("a", producer()), Role("b", consumer())],
                constraint=parse("EF done"),
            )

    def test_role_lookup(self):
        pattern = railcab.distance_coordination_pattern()
        assert pattern.role("frontRole").name == "frontRole"
        with pytest.raises(ModelError, match="no role"):
            pattern.role("sideRole")

    def test_direct_composition(self):
        pattern = CoordinationPattern(
            "p",
            [Role("a", producer()), Role("b", consumer())],
            constraint=parse("AG true"),
        )
        composed = pattern.composition()
        assert composed.name == "p"
        assert len(composed.states) >= 1

    def test_verify_distance_coordination(self):
        result = railcab.distance_coordination_pattern().verify()
        assert result.ok
        assert result.constraint_result.holds
        assert result.deadlock_result.holds
        assert set(result.invariant_results) == {"frontRole", "rearRole"}

    def test_verify_reports_constraint_violation_with_witness(self):
        convoy_anyway = Automaton(
            inputs=railcab.FRONT_TO_REAR,
            outputs=railcab.REAR_TO_FRONT,
            transitions=[
                ("noConvoy", (), ("convoyProposal",), "convoy"),
                ("convoy", ("convoyProposalRejected",), (), "convoy"),
                ("convoy", (), (), "convoy"),
            ],
            initial=["noConvoy"],
            labels={
                "noConvoy": {"rearRole.noConvoy"},
                "convoy": {"rearRole.convoy"},
            },
            name="badRear",
        )
        pattern = CoordinationPattern(
            "DC(bad)",
            [Role("frontRole", railcab.front_role_automaton()), Role("rearRole", convoy_anyway)],
            constraint=railcab.PATTERN_CONSTRAINT,
        )
        result = pattern.verify()
        assert not result.ok
        assert not result.constraint_result.holds
        assert result.counterexample_run is not None

    def test_verify_reports_role_invariant_violation(self):
        sloppy_front = railcab.front_role_automaton().with_labels(
            lambda state: {"frontRole.convoy"} if str(state).startswith("convoy") else set()
        )
        pattern = CoordinationPattern(
            "DC(sloppy)",
            [
                Role("frontRole", sloppy_front, invariant=railcab.FRONT_ROLE_INVARIANT),
                Role("rearRole", railcab.rear_role_automaton()),
            ],
            constraint=parse("AG true"),
        )
        result = pattern.verify()
        assert not result.invariant_results["frontRole"].holds
        assert "frontRole" in result.invariant_counterexamples


class TestConnectors:
    def test_unit_delay_delivers_next_period(self):
        channel = unit_delay_channel(["m"])
        assert channel.inputs == frozenset({"m"})
        assert channel.outputs == frozenset({delivered("m")})
        holding = next(t.target for t in channel.transitions_from("empty") if t.inputs)
        deliveries = channel.transitions_from(holding)
        assert all(t.outputs == frozenset({delivered("m")}) for t in deliveries)

    def test_unit_delay_refuses_while_holding(self):
        channel = unit_delay_channel(["m"])
        holding = f"holding(m)"
        assert all(not t.inputs for t in channel.transitions_from(holding))

    def test_bounded_delay_latency_range(self):
        channel = bounded_delay_channel(["m"], low=2, high=3)
        # From holding at t=0, delivery becomes possible at t=1 (latency
        # 2) and is forced at t=2 (latency 3).
        composed = channel
        states = {str(s) for s in composed.states}
        assert any("holding(m)" in s for s in states)

    def test_bounded_delay_bad_bounds(self):
        with pytest.raises(ModelError):
            bounded_delay_channel(["m"], low=0, high=2)
        with pytest.raises(ModelError):
            bounded_delay_channel(["m"], low=3, high=2)

    def test_lossy_channel_can_drop(self):
        channel = lossy_channel(["m"])
        drops = [
            t
            for t in channel.transitions
            if str(t.source).startswith("holding(") and t.interaction.is_idle
        ]
        assert drops and all(t.target == "empty" for t in drops)

    def test_channel_needs_messages(self):
        with pytest.raises(ModelError, match="at least one message"):
            unit_delay_channel([])

    def test_delivered_suffix_guard(self):
        with pytest.raises(ModelError, match="delivered suffix"):
            unit_delay_channel([delivered("m")])

    def test_end_to_end_delivery_through_channel(self):
        channel = unit_delay_channel(["m"])
        pattern = CoordinationPattern(
            "pipe",
            [Role("prod", producer()), Role("cons", consumer(delivered("m")))],
            constraint=parse("AG not deadlock"),
            connector=channel,
        )
        result = pattern.verify()
        assert result.ok


class TestComponentsAndPorts:
    def test_port_signal_mismatch_rejected(self):
        role = Role("prod", producer())
        with pytest.raises(ModelError, match="expects"):
            Port("p", role, consumer())

    def test_conforming_port(self):
        pattern = railcab.distance_coordination_pattern()
        port = Port("rearRole", pattern.role("rearRole"), railcab.rear_role_automaton())
        assert port.check_conformance().ok

    def test_component_requires_ports(self):
        with pytest.raises(ModelError, match="at least one port"):
            Component("c", [])

    def test_component_duplicate_ports(self):
        pattern = railcab.distance_coordination_pattern()
        port = Port("x", pattern.role("rearRole"), railcab.rear_role_automaton())
        with pytest.raises(ModelError, match="duplicate"):
            Component("c", [port, port])

    def test_component_behavior_single_port(self):
        pattern = railcab.distance_coordination_pattern()
        port = Port("rearRole", pattern.role("rearRole"), railcab.rear_role_automaton())
        component = Component("shuttle", [port])
        assert component.behavior().name == "shuttle"

    def test_port_lookup(self):
        pattern = railcab.distance_coordination_pattern()
        port = Port("rearRole", pattern.role("rearRole"), railcab.rear_role_automaton())
        component = Component("shuttle", [port])
        assert component.port("rearRole") is port
        with pytest.raises(ModelError, match="no port"):
            component.port("ghost")


class TestArchitecture:
    def make_architecture(self):
        pattern = railcab.distance_coordination_pattern()
        front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
        leader = Component("leader", [front_port])
        architecture = Architecture("convoy")
        architecture.add_component(leader)
        architecture.add_legacy("follower")
        architecture.instantiate(
            pattern,
            {"frontRole": ("leader", "front"), "rearRole": ("follower", None)},
            name="dc",
        )
        return architecture

    def test_duplicate_placement_rejected(self):
        architecture = self.make_architecture()
        with pytest.raises(ModelError, match="already places"):
            architecture.add_legacy("leader")

    def test_instance_requires_all_roles_bound(self):
        pattern = railcab.distance_coordination_pattern()
        architecture = Architecture("a")
        with pytest.raises(ModelError, match="does not bind"):
            architecture.instantiate(pattern, {})

    def test_legacy_binding_must_not_name_port(self):
        pattern = railcab.distance_coordination_pattern()
        architecture = Architecture("a")
        architecture.add_legacy("follower")
        front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
        architecture.add_component(Component("leader", [front_port]))
        with pytest.raises(ModelError, match="cannot name a port"):
            architecture.instantiate(
                pattern,
                {"frontRole": ("leader", "front"), "rearRole": ("follower", "x")},
            )

    def test_wrong_role_port_rejected(self):
        pattern = railcab.distance_coordination_pattern()
        architecture = Architecture("a")
        rear_port = Port("rear", pattern.role("rearRole"), railcab.rear_role_automaton())
        architecture.add_component(Component("c", [rear_port]))
        architecture.add_legacy("legacy")
        with pytest.raises(ModelError, match="realizes role"):
            architecture.instantiate(
                pattern,
                {"frontRole": ("c", "rear"), "rearRole": ("legacy", None)},
            )

    def test_context_extraction(self):
        architecture = self.make_architecture()
        extraction = architecture.context_for("follower")
        assert extraction.legacy_inputs == railcab.FRONT_TO_REAR
        assert extraction.legacy_outputs == railcab.REAR_TO_FRONT
        assert extraction.constraints == (railcab.PATTERN_CONSTRAINT,)
        assert "dc:rearRole" in extraction.role_protocols
        assert len(extraction.context.states) == 4  # the front role automaton

    def test_context_for_unknown_legacy(self):
        architecture = self.make_architecture()
        with pytest.raises(ModelError, match="not a legacy placement"):
            architecture.context_for("leader")

    def test_context_for_unbound_legacy(self):
        architecture = self.make_architecture()
        architecture.add_legacy("spare")
        with pytest.raises(ModelError, match="participates in no"):
            architecture.context_for("spare")

    def test_compose_known(self):
        architecture = self.make_architecture()
        composed = architecture.compose_known()
        assert len(composed.states) == 4

    def test_context_feeds_synthesizer(self):
        from repro.synthesis import IntegrationSynthesizer, Verdict

        architecture = self.make_architecture()
        extraction = architecture.context_for("follower")
        synthesizer = IntegrationSynthesizer(
            extraction.context,
            railcab.faulty_rear_shuttle(),
            extraction.constraints[0],
            labeler=railcab.rear_state_labeler,
        )
        assert synthesizer.run().verdict is Verdict.REAL_VIOLATION

    def test_rename_suffix_keeps_instances_apart(self):
        pattern = railcab.distance_coordination_pattern()
        architecture = Architecture("a")
        front_port = Port("front", pattern.role("frontRole"), railcab.front_role_automaton())
        architecture.add_component(Component("leader", [front_port]))
        architecture.add_legacy("follower")
        architecture.instantiate(
            pattern,
            {"frontRole": ("leader", "front"), "rearRole": ("follower", None)},
            rename_suffix="1",
        )
        extraction = architecture.context_for("follower")
        assert all(signal.endswith("@1") for signal in extraction.legacy_inputs)
