"""Tests for the FIFO event-queue channel (§2.2's explicit queues)."""

import pytest

from repro.automata import Automaton, Interaction, compose, reachable_states
from repro.errors import ModelError
from repro.logic import check, parse
from repro.muml import delivered, fifo_channel


def step(channel: Automaton, state, interaction: Interaction):
    for transition in channel.transitions_from(state):
        if transition.interaction == interaction:
            return transition.target
    return None


class TestFifoSemantics:
    def test_state_count(self):
        # Queue contents over {a,b} with capacity 2: 1 + 2 + 4 states.
        channel = fifo_channel(["a", "b"], capacity=2)
        assert len(channel.states) == 7

    def test_order_preserved(self):
        channel = fifo_channel(["a", "b"], capacity=2)
        state = step(channel, "[]", Interaction(["a"], None))
        state = step(channel, state, Interaction(["b"], None))
        assert state == "[a,b]"
        assert step(channel, state, Interaction(None, [delivered("b")])) is None
        assert step(channel, state, Interaction(None, [delivered("a")])) == "[b]"

    def test_full_queue_refuses(self):
        channel = fifo_channel(["a"], capacity=1)
        state = step(channel, "[]", Interaction(["a"], None))
        assert state == "[a]"
        assert step(channel, state, Interaction(["a"], None)) is None

    def test_simultaneous_accept_and_deliver(self):
        channel = fifo_channel(["a"], capacity=1)
        state = step(channel, "[]", Interaction(["a"], None))
        # Full pipeline: deliver the head while accepting a new message.
        assert step(channel, state, Interaction(["a"], [delivered("a")])) == "[a]"

    def test_empty_queue_cannot_deliver(self):
        channel = fifo_channel(["a"])
        assert all(
            not t.outputs for t in channel.transitions_from("[]")
        )

    def test_idle_always_possible(self):
        channel = fifo_channel(["a", "b"], capacity=2)
        for state in channel.states:
            assert any(t.interaction.is_idle for t in channel.transitions_from(state))

    def test_capacity_validation(self):
        with pytest.raises(ModelError):
            fifo_channel(["a"], capacity=0)

    def test_all_states_reachable(self):
        channel = fifo_channel(["a", "b"], capacity=2)
        assert reachable_states(channel) == channel.states


class TestFifoInComposition:
    def test_bursty_producer_needs_capacity(self):
        """A producer bursting two messages at a slow consumer deadlocks
        through a capacity-1 queue but not through capacity-2 — queue
        overflow becomes visible as back-pressure deadlock."""
        producer = Automaton(
            inputs=set(),
            outputs={"m"},
            transitions=[
                ("p0", (), ("m",), "p1"),
                ("p1", (), ("m",), "rest"),  # no idling: the burst is hard
                ("rest", (), (), "rest"),
            ],
            initial=["p0"],
            name="bursty",
        )
        slow_consumer = Automaton(
            inputs={delivered("m")},
            outputs=set(),
            transitions=[
                ("w0", (), (), "w1"),  # not ready in the first periods
                ("w1", (), (), "w2"),
                ("w2", (delivered("m"),), (), "w3"),
                ("w2", (), (), "w2"),
                ("w3", (delivered("m"),), (), "done"),
                ("w3", (), (), "w3"),
                ("done", (), (), "done"),
            ],
            initial=["w0"],
            name="slow",
        )
        from repro.automata import compose_all

        def composed_with(capacity: int):
            channel = fifo_channel(["m"], capacity=capacity)
            return compose_all([producer, channel, slow_consumer])

        tight = composed_with(1)
        roomy = composed_with(2)
        assert not check(tight, parse("AG not deadlock")).holds
        assert check(roomy, parse("AG not deadlock")).holds

    def test_eventual_delivery_bound(self):
        producer = Automaton(
            inputs=set(),
            outputs={"m"},
            transitions=[
                ("p", (), ("m",), "done"),
                ("done", (), (), "done"),
            ],
            initial=["p"],
            labels={"p": {"prod.sending"}},
            name="oneshot",
        )
        channel = fifo_channel(["m"], capacity=2)
        consumer = Automaton(
            inputs={delivered("m")},
            outputs=set(),
            transitions=[
                ("w", (delivered("m"),), (), "got"),
                ("w", (), (), "w"),
                ("got", (), (), "got"),
            ],
            initial=["w"],
            labels={"got": {"cons.got"}},
            name="consumer",
        )
        from repro.automata import compose_all

        system = compose_all([producer, channel, consumer])
        # Delivery is possible within 2 periods on some schedule and is
        # never reordered; universally it may dally (the queue idles), so
        # the check uses the existential-free bounded always shape:
        assert check(system, parse("AG (cons.got -> not prod.sending)")).holds
