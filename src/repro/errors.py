"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """An automaton, statechart, or architecture model is ill-formed."""


class CompositionError(ModelError):
    """Two automata cannot be composed (e.g. they are not composable)."""


class RefinementError(ModelError):
    """A refinement check was invoked on incompatible automata."""


class FormulaError(ReproError):
    """A temporal-logic formula is syntactically or semantically invalid."""


class ParseError(FormulaError):
    """A textual formula could not be parsed."""


class NotCompositionalError(FormulaError):
    """A formula outside the compositional (ACTL) fragment was used where
    Definition 5 of the paper requires a compositional constraint."""


class CounterexampleError(ReproError):
    """No counterexample could be extracted for a violated property."""


class ExecutionError(ReproError):
    """A legacy component could not execute a requested step."""


class ReplayError(ExecutionError):
    """Deterministic replay diverged from the recorded execution."""


class FaultInjectionError(ExecutionError):
    """An injected fault (transient error, crash) aborted a component step.

    Raised by the seed-driven fault harness (:mod:`repro.testing.faults`)
    and by the out-of-process supervisor (:mod:`repro.legacy.remote`),
    which maps *real* host-process failures onto the same taxonomy.
    The robust executor treats it as retryable.
    """


class TestTimeoutError(ExecutionError):
    """A test execution exceeded its per-step or per-test deadline."""

    __test__ = False  # not a pytest class, despite the name


class RemoteComponentError(ExecutionError):
    """An out-of-process component host failed (see :mod:`repro.legacy.remote`)."""


class RemoteProtocolError(RemoteComponentError):
    """The component host spoke the wire protocol wrong.

    Raised fail-fast on a protocol-version mismatch during the ``hello``
    handshake, and on garbage frames (bad length prefix, undecodable
    JSON, malformed reply) at any later point — the host is killed
    before this is raised, so a retry starts from a fresh process.
    """


class RemoteCrashError(RemoteComponentError, FaultInjectionError):
    """The component host process died (EOF, broken pipe, hard kill).

    Deliberately part of the :class:`FaultInjectionError` family: a real
    crash lands on the same bounded-retry → replay-validate → quarantine
    path as an injected ``CRASH_RESET``, so Lemma 6's no-false-violation
    guarantee carries over to genuine process failures.
    """


class SynthesisError(ReproError):
    """The iterative behavior synthesis entered an inconsistent state."""


class LearningError(SynthesisError):
    """An observed run could not be merged into the incomplete automaton."""


class BudgetExceededError(SynthesisError):
    """The iterative synthesis exceeded its configured iteration budget."""
