"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """An automaton, statechart, or architecture model is ill-formed."""


class CompositionError(ModelError):
    """Two automata cannot be composed (e.g. they are not composable)."""


class RefinementError(ModelError):
    """A refinement check was invoked on incompatible automata."""


class FormulaError(ReproError):
    """A temporal-logic formula is syntactically or semantically invalid."""


class ParseError(FormulaError):
    """A textual formula could not be parsed."""


class NotCompositionalError(FormulaError):
    """A formula outside the compositional (ACTL) fragment was used where
    Definition 5 of the paper requires a compositional constraint."""


class CounterexampleError(ReproError):
    """No counterexample could be extracted for a violated property."""


class ExecutionError(ReproError):
    """A legacy component could not execute a requested step."""


class ReplayError(ExecutionError):
    """Deterministic replay diverged from the recorded execution."""


class FaultInjectionError(ExecutionError):
    """An injected fault (transient error, crash) aborted a component step.

    Raised only by the seed-driven fault harness
    (:mod:`repro.testing.faults`); production components never raise it.
    The robust executor treats it as retryable.
    """


class TestTimeoutError(ExecutionError):
    """A test execution exceeded its per-step or per-test deadline."""

    __test__ = False  # not a pytest class, despite the name


class SynthesisError(ReproError):
    """The iterative behavior synthesis entered an inconsistent state."""


class LearningError(SynthesisError):
    """An observed run could not be merged into the incomplete automaton."""


class BudgetExceededError(SynthesisError):
    """The iterative synthesis exceeded its configured iteration budget."""
