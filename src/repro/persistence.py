"""Saving and loading models: learned knowledge survives sessions.

Integration projects run the synthesis many times — against new
properties, new context versions, or after a legacy component update.
The expensive artifact is the *learned* incomplete automaton; this
module serialises automata and incomplete automata to a stable JSON
document so a later run can warm-start from it (see
:class:`repro.synthesis.IntegrationSynthesizer`'s ``initial_knowledge``
parameter).

Only string states are serialised losslessly; other hashable states are
stringified on save (fine for learned models, whose states are the
monitored state names).
"""

from __future__ import annotations

import json
from typing import Any

from .automata.automaton import Automaton, Transition
from .automata.incomplete import IncompleteAutomaton, Refusal
from .automata.interaction import Interaction
from .errors import ModelError

__all__ = [
    "automaton_to_dict",
    "automaton_from_dict",
    "incomplete_to_dict",
    "incomplete_from_dict",
    "save_model",
    "load_model",
]

_FORMAT = "repro/model"
_VERSION = 1


def _interaction_to_list(interaction: Interaction) -> list[list[str]]:
    return [sorted(interaction.inputs), sorted(interaction.outputs)]


def _interaction_from_list(payload: list) -> Interaction:
    inputs, outputs = payload
    return Interaction(inputs, outputs)


def _state_key(state: Any) -> str:
    return state if isinstance(state, str) else repr(state)


def automaton_to_dict(automaton: Automaton) -> dict:
    """A JSON-serialisable description of an automaton."""
    return {
        "name": automaton.name,
        "inputs": sorted(automaton.inputs),
        "outputs": sorted(automaton.outputs),
        "states": sorted(_state_key(s) for s in automaton.states),
        "initial": sorted(_state_key(s) for s in automaton.initial),
        "transitions": [
            [
                _state_key(t.source),
                _interaction_to_list(t.interaction),
                _state_key(t.target),
            ]
            for t in sorted(
                automaton.transitions,
                key=lambda t: (_state_key(t.source), t.interaction.sort_key(), _state_key(t.target)),
            )
        ],
        "labels": {
            _state_key(state): sorted(props)
            for state, props in sorted(automaton.label_map.items(), key=lambda kv: _state_key(kv[0]))
            if props
        },
    }


def automaton_from_dict(payload: dict) -> Automaton:
    """Rebuild an automaton from :func:`automaton_to_dict` output."""
    try:
        return Automaton(
            states=payload["states"],
            inputs=payload["inputs"],
            outputs=payload["outputs"],
            transitions=[
                Transition(source, _interaction_from_list(interaction), target)
                for source, interaction, target in payload["transitions"]
            ],
            initial=payload["initial"],
            labels={state: props for state, props in payload.get("labels", {}).items()},
            name=payload.get("name", "M"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ModelError(f"malformed automaton document: {error}") from error


def incomplete_to_dict(model: IncompleteAutomaton) -> dict:
    """A JSON-serialisable description of an incomplete automaton."""
    document = automaton_to_dict(model.automaton)
    document["refusals"] = [
        [_state_key(refusal.state), _interaction_to_list(refusal.interaction)]
        for refusal in sorted(
            model.refusals, key=lambda r: (_state_key(r.state), r.interaction.sort_key())
        )
    ]
    return document


def incomplete_from_dict(payload: dict) -> IncompleteAutomaton:
    """Rebuild an incomplete automaton from its document."""
    automaton = automaton_from_dict(payload)
    try:
        refusals = [
            Refusal(state, _interaction_from_list(interaction))
            for state, interaction in payload.get("refusals", [])
        ]
    except (TypeError, ValueError) as error:
        raise ModelError(f"malformed refusal list: {error}") from error
    return IncompleteAutomaton(
        states=automaton.states,
        inputs=automaton.inputs,
        outputs=automaton.outputs,
        transitions=automaton.transitions,
        refusals=refusals,
        initial=automaton.initial,
        labels=automaton.label_map,
        name=automaton.name,
    )


def save_model(model: "Automaton | IncompleteAutomaton", path) -> None:
    """Write a model to ``path`` as a versioned JSON document."""
    if isinstance(model, IncompleteAutomaton):
        body = incomplete_to_dict(model)
        kind = "incomplete-automaton"
    elif isinstance(model, Automaton):
        body = automaton_to_dict(model)
        kind = "automaton"
    else:
        raise ModelError(f"cannot save {model!r}: not an automaton")
    document = {"format": _FORMAT, "version": _VERSION, "kind": kind, "model": body}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_model(path) -> "Automaton | IncompleteAutomaton":
    """Read a model previously written by :func:`save_model`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise ModelError(f"{path} is not a repro model document")
    if document.get("version") != _VERSION:
        raise ModelError(
            f"{path} has unsupported version {document.get('version')} (expected {_VERSION})"
        )
    body = document.get("model", {})
    if document.get("kind") == "incomplete-automaton":
        return incomplete_from_dict(body)
    if document.get("kind") == "automaton":
        return automaton_from_dict(body)
    raise ModelError(f"{path} has unknown model kind {document.get('kind')!r}")
