"""The RailCab running example: DistanceCoordination and the shuttles.

This module builds the paper's application example (§1):

* the ``DistanceCoordination`` coordination pattern (Figure 1) with its
  ``frontRole``/``rearRole`` Real-Time Statecharts, role invariants
  about braking force, and the pattern constraint
  ``A[] not (rearRole.convoy and frontRole.noConvoy)``;
* the context automaton of Figure 5 (the front role's behavior);
* executable legacy rear shuttles: a *correct* implementation and the
  *faulty* one of Figure 6 / Listing 1.3 that enters convoy mode
  immediately upon proposing, ignoring the rejection.

Message alphabet (rear shuttle's perspective):

=====================  =========  =====================================
message                direction  meaning
=====================  =========  =====================================
convoyProposal         out        ask the front shuttle to form a convoy
convoyProposalRejected in         front declines the proposal
startConvoy            in         front accepts; convoy begins
breakConvoyProposal    out        ask to dissolve the convoy
breakConvoyAccepted    in         front agrees; convoy ends
breakConvoyRejected    in         front insists on keeping the convoy
=====================  =========  =====================================
"""

from __future__ import annotations

from .automata.automaton import Automaton
from .legacy.component import LegacyComponent
from .logic.formulas import Formula
from .logic.parser import parse
from .muml.pattern import CoordinationPattern, Role
from .rtsc.model import Statechart
from .rtsc.semantics import unfold

__all__ = [
    "REAR_TO_FRONT",
    "FRONT_TO_REAR",
    "PATTERN_CONSTRAINT",
    "FRONT_ROLE_INVARIANT",
    "REAR_ROLE_INVARIANT",
    "front_role_statechart",
    "rear_role_statechart",
    "front_role_automaton",
    "rear_role_automaton",
    "distance_coordination_pattern",
    "rear_state_labeler",
    "correct_rear_shuttle",
    "overbuilt_rear_shuttle",
    "faulty_rear_shuttle",
    "front_state_labeler",
    "correct_front_shuttle",
    "forgetful_front_shuttle",
]

#: Messages sent by the rear shuttle to the front shuttle.
REAR_TO_FRONT = frozenset({"convoyProposal", "breakConvoyProposal"})
#: Messages sent by the front shuttle to the rear shuttle.
FRONT_TO_REAR = frozenset(
    {"convoyProposalRejected", "startConvoy", "breakConvoyAccepted", "breakConvoyRejected"}
)

#: The pattern constraint of Figure 1: the rear shuttle must never be in
#: convoy mode (reduced distance) while the front shuttle is in
#: no-convoy mode (free to brake with full force).
PATTERN_CONSTRAINT: Formula = parse("A[] not (rearRole.convoy and frontRole.noConvoy)")

#: Role invariants of Figure 1, expressed over braking propositions.
FRONT_ROLE_INVARIANT: Formula = parse("AG (frontRole.convoy -> frontRole.reducedBraking)")
REAR_ROLE_INVARIANT: Formula = parse("AG (rearRole.noConvoy -> rearRole.fullBraking)")


def front_role_statechart() -> Statechart:
    """The front role RTSC (the context behavior of Figure 5).

    ``noConvoy::default`` waits for a proposal; ``noConvoy::answer``
    nondeterministically rejects it or starts the convoy; ``convoy``
    waits for a break proposal, which it nondeterministically accepts
    or rejects.
    """
    chart = Statechart(
        "frontRole",
        inputs=REAR_TO_FRONT,
        outputs=FRONT_TO_REAR,
    )
    no_convoy = chart.location("noConvoy", initial=True)
    default = chart.location("default", parent=no_convoy, initial=True)
    answer = chart.location("answer", parent=no_convoy)
    convoy = chart.location("convoy")
    convoy_default = chart.location("default", parent=convoy, initial=True)
    convoy_break = chart.location("break", parent=convoy)
    chart.transition(default, answer, trigger="convoyProposal")
    chart.transition(answer, default, raised="convoyProposalRejected")
    chart.transition(answer, convoy, raised="startConvoy")
    chart.transition(convoy_default, convoy_break, trigger="breakConvoyProposal")
    chart.transition(convoy_break, no_convoy, raised="breakConvoyAccepted")
    chart.transition(convoy_break, convoy_default, raised="breakConvoyRejected")
    return chart


def rear_role_statechart() -> Statechart:
    """The rear role RTSC: propose, await the answer, possibly break."""
    chart = Statechart(
        "rearRole",
        inputs=FRONT_TO_REAR,
        outputs=REAR_TO_FRONT,
    )
    no_convoy = chart.location("noConvoy", initial=True)
    default = chart.location("default", parent=no_convoy, initial=True)
    wait = chart.location("wait", parent=no_convoy)
    convoy = chart.location("convoy")
    convoy_default = chart.location("default", parent=convoy, initial=True)
    convoy_wait = chart.location("wait", parent=convoy)
    chart.transition(default, wait, raised="convoyProposal")
    chart.transition(wait, default, trigger="convoyProposalRejected")
    chart.transition(wait, convoy, trigger="startConvoy")
    chart.transition(convoy_default, convoy_wait, raised="breakConvoyProposal")
    chart.transition(convoy_wait, no_convoy, trigger="breakConvoyAccepted")
    chart.transition(convoy_wait, convoy_default, trigger="breakConvoyRejected")
    return chart


def _braking_labeler(chart: Statechart, *, reduced_when: str):
    """Add the Figure 1 braking propositions to the default labels."""
    from .rtsc.semantics import default_labeler

    base = default_labeler(chart)

    def labeler(leaf):
        labels = set(base(leaf))
        top = leaf.ancestors()[-1].name
        if top == reduced_when:
            labels.add(f"{chart.name}.reducedBraking")
        else:
            labels.add(f"{chart.name}.fullBraking")
        return frozenset(labels)

    return labeler


def front_role_automaton() -> Automaton:
    """Figure 5's context automaton (front role unfolded, with labels)."""
    chart = front_role_statechart()
    return unfold(chart, labeler=_braking_labeler(chart, reduced_when="convoy"))


def rear_role_automaton() -> Automaton:
    """The rear role protocol unfolded, with braking labels."""
    chart = rear_role_statechart()
    return unfold(chart, labeler=_braking_labeler(chart, reduced_when="convoy"))


def distance_coordination_pattern() -> CoordinationPattern:
    """The DistanceCoordination pattern of Figure 1, ready to verify."""
    front = Role("frontRole", front_role_automaton(), invariant=FRONT_ROLE_INVARIANT)
    rear = Role("rearRole", rear_role_automaton(), invariant=REAR_ROLE_INVARIANT)
    return CoordinationPattern(
        "DistanceCoordination",
        [front, rear],
        constraint=PATTERN_CONSTRAINT,
    )


def rear_state_labeler(state) -> frozenset[str]:
    """Map a monitored rear-shuttle state name to its propositions.

    The synthesis labels learned states with ``rearRole.<top-region>``
    so they participate in the pattern constraint: a monitored state
    ``"convoy::wait"`` yields ``rearRole.convoy``.
    """
    top = str(state).split("::", 1)[0]
    return frozenset({f"rearRole.{top}"})


def correct_rear_shuttle(*, convoy_ticks: int = 1, breaks_convoy: bool = True) -> LegacyComponent:
    """A correct (protocol-conforming) legacy rear shuttle.

    The hidden behavior proposes a convoy whenever it is coasting alone,
    retries after rejections, and — after ``convoy_ticks`` periods of
    convoy driving — proposes to break the convoy again (if
    ``breaks_convoy``); it obeys the front shuttle's answer either way.
    The implementation is strongly deterministic, as §4.3 requires.
    """
    if convoy_ticks < 0:
        raise ValueError("convoy_ticks must be non-negative")
    transitions = [
        ("noConvoy::default", (), ("convoyProposal",), "noConvoy::wait"),
        ("noConvoy::wait", ("convoyProposalRejected",), (), "noConvoy::default"),
        ("noConvoy::wait", ("startConvoy",), (), "convoy::drive0"),
        ("noConvoy::wait", (), (), "noConvoy::wait"),
    ]
    for tick in range(convoy_ticks):
        transitions.append((f"convoy::drive{tick}", (), (), f"convoy::drive{tick + 1}"))
    last = f"convoy::drive{convoy_ticks}"
    if breaks_convoy:
        transitions.extend(
            [
                (last, (), ("breakConvoyProposal",), "convoy::wait"),
                ("convoy::wait", ("breakConvoyAccepted",), (), "noConvoy::default"),
                ("convoy::wait", ("breakConvoyRejected",), (), "convoy::drive0"),
                ("convoy::wait", (), (), "convoy::wait"),
            ]
        )
    else:
        transitions.append((last, (), (), last))
    hidden = Automaton(
        inputs=FRONT_TO_REAR,
        outputs=REAR_TO_FRONT,
        transitions=transitions,
        initial=["noConvoy::default"],
        labels={},
        name="rearShuttle(correct)",
    )
    return LegacyComponent(hidden, name="rearShuttle")


def overbuilt_rear_shuttle(*, extra_states: int = 20, convoy_ticks: int = 1) -> LegacyComponent:
    """A correct shuttle with a large context-irrelevant diagnostic mode.

    Beyond the convoy protocol, the hidden implementation contains a
    diagnostic chain of ``extra_states`` states, entered only by input
    sequences the DistanceCoordination front role can never produce
    (a ``breakConvoyAccepted`` while coasting alone).  The paper's
    headline claim C2 is that the integration can be **proven without
    learning these states**: the context restricts the interaction, so
    the synthesis converges on the protocol part only, while L*-style
    whole-machine learners must identify the diagnostic chain too.
    """
    if extra_states < 1:
        raise ValueError("extra_states must be positive")
    base = correct_rear_shuttle(convoy_ticks=convoy_ticks)
    hidden = base._hidden  # construction-time access, not used by the learner
    transitions = list(hidden.transitions)
    transitions.append(
        ("noConvoy::default", ("breakConvoyAccepted",), (), "diag0")
    )
    for index in range(extra_states - 1):
        transitions.append((f"diag{index}", (), (), f"diag{index + 1}"))
    transitions.append((f"diag{extra_states - 1}", ("startConvoy",), (), "noConvoy::default"))
    transitions.append((f"diag{extra_states - 1}", (), (), f"diag{extra_states - 1}"))
    rebuilt = Automaton(
        inputs=FRONT_TO_REAR,
        outputs=REAR_TO_FRONT,
        transitions=transitions,
        initial=["noConvoy::default"],
        name="rearShuttle(overbuilt)",
    )
    return LegacyComponent(rebuilt, name="rearShuttle")


def front_state_labeler(state) -> frozenset[str]:
    """Map a monitored front-shuttle state name to its propositions."""
    top = str(state).split("::", 1)[0]
    return frozenset({f"frontRole.{top}"})


def correct_front_shuttle() -> LegacyComponent:
    """A correct legacy *front* shuttle (deterministic: always agrees).

    Used for the paper's §7 multi-legacy extension: both convoy
    controllers are third-party code.  This one accepts every convoy
    proposal one period after receiving it and accepts break proposals
    likewise; all mode switches happen in the same time unit as the
    message exchange, so the pattern constraint is respected.
    """
    transitions = [
        ("noConvoy::default", (), (), "noConvoy::default"),
        ("noConvoy::default", ("convoyProposal",), (), "noConvoy::answer"),
        ("noConvoy::answer", (), ("startConvoy",), "convoy::default"),
        ("convoy::default", (), (), "convoy::default"),
        ("convoy::default", ("breakConvoyProposal",), (), "convoy::break"),
        ("convoy::break", (), ("breakConvoyAccepted",), "noConvoy::default"),
    ]
    hidden = Automaton(
        inputs=REAR_TO_FRONT,
        outputs=FRONT_TO_REAR,
        transitions=transitions,
        initial=["noConvoy::default"],
        name="frontShuttle(correct)",
    )
    return LegacyComponent(hidden, name="frontShuttle")


def forgetful_front_shuttle() -> LegacyComponent:
    """A faulty legacy front shuttle: it *sends* ``startConvoy`` but
    falls back into no-convoy mode, remaining free to brake with full
    force while the rear shuttle closes the distance — a violation of
    the pattern constraint that only manifests in the interplay of two
    legacy components.
    """
    transitions = [
        ("noConvoy::default", (), (), "noConvoy::default"),
        ("noConvoy::default", ("convoyProposal",), (), "noConvoy::answer"),
        ("noConvoy::answer", (), ("startConvoy",), "noConvoy::default"),
    ]
    hidden = Automaton(
        inputs=REAR_TO_FRONT,
        outputs=FRONT_TO_REAR,
        transitions=transitions,
        initial=["noConvoy::default"],
        name="frontShuttle(forgetful)",
    )
    return LegacyComponent(hidden, name="frontShuttle")


def faulty_rear_shuttle() -> LegacyComponent:
    """The conflicting legacy shuttle of Figure 6 / Listing 1.3.

    It sends ``convoyProposal`` and *immediately* switches to convoy
    mode (reducing its distance) without awaiting the answer — and it
    stays in convoy mode even when the proposal is rejected.  Composed
    with a front shuttle that rejects, this violates the pattern
    constraint: the rear drives in convoy mode while the front is free
    to brake with full force.
    """
    transitions = [
        ("noConvoy", (), ("convoyProposal",), "convoy"),
        ("convoy", ("convoyProposalRejected",), (), "convoy"),
        ("convoy", ("startConvoy",), (), "convoy"),
        ("convoy", (), (), "convoy"),
    ]
    hidden = Automaton(
        inputs=FRONT_TO_REAR,
        outputs=REAR_TO_FRONT,
        transitions=transitions,
        initial=["noConvoy"],
        labels={},
        name="rearShuttle(faulty)",
    )
    return LegacyComponent(hidden, name="rearShuttle")
