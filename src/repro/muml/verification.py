"""Whole-architecture verification: the modeled part of the system.

Before legacy integration even starts, Mechatronic UML verifies the
modeled part compositionally ([24]): every pattern in isolation, every
port against its role, and — cheaply, because compositionality already
guarantees the pattern constraints — any additional system-level
properties against the composition of the modeled components.

:func:`verify_architecture` bundles these checks into one report; the
integration workflow is then: fix all modeled-part findings first, and
only afterwards run the iterative synthesis per legacy placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.automaton import Automaton
from ..automata.runs import Run
from ..logic.checker import CheckResult, ModelChecker
from ..logic.compositional import assert_compositional
from ..logic.counterexample import counterexample
from ..logic.formulas import DEADLOCK_FREE
from .architecture import Architecture
from .component import PortConformanceResult
from .pattern import PatternVerificationResult

__all__ = ["ArchitectureVerificationReport", "verify_architecture"]


@dataclass(frozen=True)
class ArchitectureVerificationReport:
    """All findings of one whole-architecture verification pass."""

    architecture: str
    pattern_results: dict[str, PatternVerificationResult]
    port_results: dict[str, PortConformanceResult]
    system_results: dict[str, CheckResult]
    system_deadlock: CheckResult | None
    system_counterexamples: dict[str, Run] = field(default_factory=dict)
    skipped_system_check: bool = False

    @property
    def ok(self) -> bool:
        return (
            all(result.ok for result in self.pattern_results.values())
            and all(result.ok for result in self.port_results.values())
            and all(result.holds for result in self.system_results.values())
            and (self.system_deadlock is None or self.system_deadlock.holds)
        )

    def findings(self) -> list[str]:
        """Human-readable list of everything that failed."""
        problems: list[str] = []
        for name, result in sorted(self.pattern_results.items()):
            if not result.constraint_result.holds:
                problems.append(f"pattern {name!r}: constraint violated")
            if not result.deadlock_result.holds:
                problems.append(f"pattern {name!r}: composition can deadlock")
            for role, check in sorted(result.invariant_results.items()):
                if not check.holds:
                    problems.append(f"pattern {name!r}: role invariant of {role!r} violated")
        for name, result in sorted(self.port_results.items()):
            if not result.refines_role:
                problems.append(f"port {name!r} does not refine role {result.role!r}")
            if not result.respects_invariant:
                problems.append(f"port {name!r} violates the role invariant of {result.role!r}")
        for text, result in sorted(self.system_results.items()):
            if not result.holds:
                problems.append(f"system property {text} violated")
        if self.system_deadlock is not None and not self.system_deadlock.holds:
            problems.append("the modeled system can deadlock")
        return problems


def verify_architecture(
    architecture: Architecture,
    *,
    system_properties: "list[Formula] | tuple[Formula, ...]" = (),
    check_system_deadlock: bool | None = None,
) -> ArchitectureVerificationReport:
    """Verify every modeled element of the architecture.

    ``system_properties`` are checked against the composition of all
    modeled behavior; this is skipped automatically (and recorded in the
    report) when the architecture contains legacy placements whose
    behavior would be missing from the composition — those placements
    are the synthesis loop's job, not this pass's.  ``check_system_deadlock``
    defaults to the same rule.
    """
    pattern_results: dict[str, PatternVerificationResult] = {}
    seen_patterns: set[int] = set()
    for instance in architecture.instances:
        if id(instance.pattern) in seen_patterns:
            continue
        seen_patterns.add(id(instance.pattern))
        pattern_results[instance.pattern.name] = instance.pattern.verify()

    port_results: dict[str, PortConformanceResult] = {}
    for name, component in sorted(architecture.components.items()):
        contract: set[str] = set()
        for instance in architecture.instances:
            contract |= set(instance.pattern.constraint.propositions())
        for port_name, result in component.check_conformance(
            contract_propositions=frozenset(contract)
        ).items():
            port_results[f"{name}.{port_name}"] = result

    has_legacy = bool(architecture.legacy_placements)
    if check_system_deadlock is None:
        check_system_deadlock = not has_legacy

    system_results: dict[str, CheckResult] = {}
    system_counterexamples: dict[str, Run] = {}
    system_deadlock: CheckResult | None = None
    skipped = False
    if system_properties or check_system_deadlock:
        if has_legacy and system_properties:
            skipped = True
        else:
            composed: Automaton = architecture.compose_known()
            checker = ModelChecker(composed)
            for formula in system_properties:
                assert_compositional(formula)
                result = checker.check(formula)
                system_results[str(formula)] = result
                if not result.holds:
                    witness = counterexample(composed, formula, checker=checker)
                    if witness is not None:
                        system_counterexamples[str(formula)] = witness
            if check_system_deadlock:
                system_deadlock = checker.check(DEADLOCK_FREE)

    return ArchitectureVerificationReport(
        architecture=architecture.name,
        pattern_results=pattern_results,
        port_results=port_results,
        system_results=system_results,
        system_deadlock=system_deadlock,
        system_counterexamples=system_counterexamples,
        skipped_system_check=skipped,
    )
