"""Architecture assembly and context extraction for legacy integration.

An :class:`Architecture` places components (modeled ones with full
behavior, and *legacy* placements whose behavior is unknown) and
instantiates coordination patterns between their ports.  Two services
matter for the paper's scheme:

* :meth:`Architecture.compose_known` — the composition of all modeled
  behavior, used for whole-system verification when no legacy component
  is involved;
* :meth:`Architecture.context_for` — given a legacy placement, derive
  the *context*: the composition of every modeled behavior that
  interacts with it (plus connectors), the signal sets the legacy must
  serve, and the role protocols it is supposed to refine.  This is the
  ``M_a^c`` handed to the iterative behavior synthesis (§3, Figure 2
  step 1: "derive a behavioral model of the context from the existing
  Mechatronic UML models").

Multiple instances of the same pattern are kept apart by renaming the
pattern's message signals with an ``@instance`` suffix.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.automaton import Automaton
from ..automata.composition import compose_all
from ..automata.transform import hide, rename_signals
from ..errors import ModelError
from .component import Component
from .pattern import CoordinationPattern

__all__ = ["Architecture", "PatternInstance", "ContextExtraction"]


def _instance_rename(automaton: Automaton, suffix: str | None) -> Automaton:
    if suffix is None:
        return automaton
    mapping = {signal: f"{signal}@{suffix}" for signal in automaton.inputs | automaton.outputs}
    return rename_signals(automaton, mapping)


@dataclass(frozen=True)
class PatternInstance:
    """One instantiation of a pattern between concrete component ports.

    ``bindings`` maps each role name to ``(component_name, port_name)``;
    for a legacy placement the port name is ``None`` (its behavior is
    unknown — exactly what the synthesis will learn).
    """

    name: str
    pattern: CoordinationPattern
    bindings: dict[str, tuple[str, str | None]]
    connector: Automaton | None = None
    rename_suffix: str | None = None

    def role_behavior(self, role_name: str) -> Automaton:
        """The role protocol, renamed for this instance."""
        return _instance_rename(self.pattern.role(role_name).behavior, self.rename_suffix)


@dataclass(frozen=True)
class ContextExtraction:
    """Everything the synthesis needs to know about a legacy placement."""

    legacy_name: str
    context: Automaton
    legacy_inputs: frozenset[str]
    legacy_outputs: frozenset[str]
    role_protocols: dict[str, Automaton]
    constraints: tuple


class Architecture:
    """A set of placed components plus pattern instances between them."""

    def __init__(self, name: str):
        self.name = name
        self._components: dict[str, Component] = {}
        self._legacy: set[str] = set()
        self._instances: list[PatternInstance] = []

    # --------------------------------------------------------------- placing

    def add_component(self, component: Component) -> Component:
        if component.name in self._components or component.name in self._legacy:
            raise ModelError(f"architecture {self.name!r} already places {component.name!r}")
        self._components[component.name] = component
        return component

    def add_legacy(self, name: str) -> str:
        """Place a legacy component: interface known, behavior unknown."""
        if name in self._components or name in self._legacy:
            raise ModelError(f"architecture {self.name!r} already places {name!r}")
        self._legacy.add(name)
        return name

    def instantiate(
        self,
        pattern: CoordinationPattern,
        bindings: dict[str, tuple[str, str | None]],
        *,
        name: str | None = None,
        connector: Automaton | None = None,
        rename_suffix: str | None = None,
    ) -> PatternInstance:
        """Bind a pattern's roles to placed components' ports."""
        instance_name = name if name is not None else f"{pattern.name}#{len(self._instances)}"
        for role in pattern.roles:
            if role.name not in bindings:
                raise ModelError(f"instance {instance_name!r} does not bind role {role.name!r}")
            component_name, port_name = bindings[role.name]
            if component_name in self._legacy:
                if port_name is not None:
                    raise ModelError(
                        f"legacy placement {component_name!r} cannot name a port "
                        f"(its behavior is unknown)"
                    )
                continue
            if component_name not in self._components:
                raise ModelError(f"instance {instance_name!r} binds unknown component {component_name!r}")
            if port_name is None:
                raise ModelError(
                    f"modeled component {component_name!r} needs an explicit port for role {role.name!r}"
                )
            port = self._components[component_name].port(port_name)
            if port.role.name != role.name:
                raise ModelError(
                    f"port {component_name}.{port_name} realizes role {port.role.name!r}, "
                    f"not {role.name!r}"
                )
        instance = PatternInstance(instance_name, pattern, dict(bindings), connector, rename_suffix)
        self._instances.append(instance)
        return instance

    # ------------------------------------------------------------ extraction

    @property
    def components(self) -> dict[str, Component]:
        return dict(self._components)

    @property
    def legacy_placements(self) -> frozenset[str]:
        return frozenset(self._legacy)

    @property
    def instances(self) -> tuple[PatternInstance, ...]:
        return tuple(self._instances)

    def _modeled_automata(self, *, exclude: str | None = None) -> list[Automaton]:
        automata: list[Automaton] = []
        for instance in self._instances:
            if instance.connector is not None:
                automata.append(_instance_rename(instance.connector, instance.rename_suffix))
            for role_name, (component_name, port_name) in sorted(instance.bindings.items()):
                if component_name in self._legacy or component_name == exclude:
                    continue
                port = self._components[component_name].port(port_name)
                behavior = _instance_rename(port.behavior, instance.rename_suffix)
                automata.append(behavior.replace(name=f"{component_name}.{port_name}@{instance.name}"))
        return automata

    def compose_known(self, *, name: str | None = None) -> Automaton:
        """Compose every modeled behavior (connectors included)."""
        automata = self._modeled_automata()
        if not automata:
            raise ModelError(f"architecture {self.name!r} has no modeled behavior to compose")
        if len(automata) == 1:
            return automata[0]
        return compose_all(automata, name=name if name is not None else self.name)

    def context_for(self, legacy_name: str) -> ContextExtraction:
        """The context model ``M_a^c`` for one legacy placement.

        Composes every modeled port behavior and connector of the
        instances that involve the legacy component, and reports the
        legacy-facing signal sets (the union over the roles the legacy
        is bound to) plus those role protocols.
        """
        if legacy_name not in self._legacy:
            raise ModelError(f"{legacy_name!r} is not a legacy placement of {self.name!r}")
        involved = [
            instance
            for instance in self._instances
            if any(component == legacy_name for component, _ in instance.bindings.values())
        ]
        if not involved:
            raise ModelError(f"legacy placement {legacy_name!r} participates in no pattern instance")

        context_parts: list[Automaton] = []
        legacy_inputs: set[str] = set()
        legacy_outputs: set[str] = set()
        role_protocols: dict[str, Automaton] = {}
        constraints = []
        for instance in involved:
            constraints.append(instance.pattern.constraint)
            if instance.connector is not None:
                context_parts.append(_instance_rename(instance.connector, instance.rename_suffix))
            for role_name, (component_name, port_name) in sorted(instance.bindings.items()):
                if component_name == legacy_name:
                    protocol = instance.role_behavior(role_name)
                    role_protocols[f"{instance.name}:{role_name}"] = protocol
                    legacy_inputs |= protocol.inputs
                    legacy_outputs |= protocol.outputs
                else:
                    port = self._components[component_name].port(port_name)
                    behavior = _instance_rename(port.behavior, instance.rename_suffix)
                    context_parts.append(
                        behavior.replace(name=f"{component_name}.{port_name}@{instance.name}")
                    )
        if not context_parts:
            raise ModelError(f"legacy placement {legacy_name!r} has an empty context")
        if len(context_parts) == 1:
            context = context_parts[0]
        else:
            context = compose_all(context_parts, name=f"context({legacy_name})")
            # Internalize context-internal exchanges (e.g. role↔connector
            # traffic) so that the strict Definition 3 matching against
            # the legacy closure only constrains legacy-facing signals.
            internal = (context.inputs & context.outputs) - frozenset(
                legacy_inputs
            ) - frozenset(legacy_outputs)
            if internal:
                context = hide(context, internal, name=f"context({legacy_name})")
        return ContextExtraction(
            legacy_name=legacy_name,
            context=context,
            legacy_inputs=frozenset(legacy_inputs),
            legacy_outputs=frozenset(legacy_outputs),
            role_protocols=role_protocols,
            constraints=tuple(constraints),
        )

    def __repr__(self) -> str:
        return (
            f"Architecture(name={self.name!r}, components={sorted(self._components)!r}, "
            f"legacy={sorted(self._legacy)!r}, instances={len(self._instances)})"
        )
