"""Connector (channel) automata with QoS characteristics (§2.2).

The behavior of a pattern connector "is described by another real-time
statechart that is used to model channel delay and reliability".  This
module builds such channel automata for one direction of a connector;
a bidirectional connector is the composition of two directed channels.

Naming convention: the channel consumes the sender-side signal ``m``
and produces the receiver-side signal ``delivered(m)`` (``m`` suffixed
with ``"~"``), which keeps the sender, channel, and receiver pairwise
composable.  :func:`delivered` is what architecture assembly uses to
rename the receiving role's inputs.

Provided QoS variants:

* :func:`unit_delay_channel` — exactly one time unit of latency,
  capacity one (a new message is refused while one is in flight);
* :func:`bounded_delay_channel` — nondeterministic latency within
  ``[low, high]`` time units, modeling jitter;
* :func:`lossy_channel` — like ``unit_delay``, but a message in flight
  may be nondeterministically dropped.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..automata.automaton import Automaton, Transition
from ..automata.interaction import Interaction
from ..errors import ModelError
from ..rtsc.clocks import ClockConstraint
from ..rtsc.model import Statechart
from ..rtsc.semantics import unfold

__all__ = [
    "delivered",
    "unit_delay_channel",
    "bounded_delay_channel",
    "lossy_channel",
    "fifo_channel",
]

_DELIVERED_SUFFIX = "~"


def delivered(message: str) -> str:
    """The receiver-side signal name for a channel-forwarded message."""
    return message + _DELIVERED_SUFFIX


def _check_messages(messages: Iterable[str]) -> tuple[str, ...]:
    messages = tuple(messages)
    if not messages:
        raise ModelError("a channel needs at least one message")
    for message in messages:
        if message.endswith(_DELIVERED_SUFFIX):
            raise ModelError(
                f"message {message!r} already carries the delivered suffix {_DELIVERED_SUFFIX!r}"
            )
    return messages


def unit_delay_channel(messages: Iterable[str], *, name: str = "channel") -> Automaton:
    """A capacity-one channel delivering each message after one time unit."""
    messages = _check_messages(messages)
    transitions = [Transition("empty", Interaction(), "empty")]
    for message in messages:
        holding = f"holding({message})"
        transitions.append(Transition("empty", Interaction([message], None), holding))
        transitions.append(Transition(holding, Interaction(None, [delivered(message)]), "empty"))
    return Automaton(
        inputs=messages,
        outputs=[delivered(m) for m in messages],
        transitions=transitions,
        initial=["empty"],
        name=name,
    )


def bounded_delay_channel(
    messages: Iterable[str], *, low: int = 1, high: int = 2, name: str = "channel"
) -> Automaton:
    """A channel with nondeterministic latency in ``[low, high]`` units.

    Built as a Real-Time Statechart with one clock measuring the time in
    flight: delivery is enabled from ``low`` on and forced (location
    invariant) at ``high``.
    """
    if low < 1 or high < low:
        raise ModelError(f"invalid delay bounds [{low},{high}]")
    messages = _check_messages(messages)
    chart = Statechart(
        name,
        inputs=set(messages),
        outputs={delivered(m) for m in messages},
        clocks={"t"},
    )
    empty = chart.location("empty", initial=True)
    for message in messages:
        holding = chart.location(
            f"holding({message})", invariant=ClockConstraint.at_most("t", high - 1)
        )
        chart.transition(empty, holding, trigger=message, resets={"t"})
        chart.transition(
            holding,
            empty,
            raised=delivered(message),
            guard=ClockConstraint.at_least("t", low - 1),
        )
    return unfold(chart, name=name)


def fifo_channel(
    messages: Iterable[str], *, capacity: int = 2, name: str = "channel"
) -> Automaton:
    """An order-preserving event queue with bounded capacity (§2.2).

    "The asynchronous event semantics of statecharts is modeled by
    explicitly defined event queues (channels) given in the form of
    additional automata."  Each period the queue either idles, accepts
    one message (refused when full — the back-pressure that makes queue
    overflows visible as deadlocks), delivers the oldest message, or
    does both at once (accepting while delivering, so a full pipeline
    sustains one message per period).
    """
    if capacity < 1:
        raise ModelError("fifo capacity must be positive")
    messages = _check_messages(messages)

    def state_name(queue: tuple[str, ...]) -> str:
        return "[" + ",".join(queue) + "]"

    transitions: list[Transition] = []
    seen: set[tuple[str, ...]] = set()
    frontier: list[tuple[str, ...]] = [()]
    seen.add(())
    while frontier:
        queue = frontier.pop()
        source = state_name(queue)

        def visit(target_queue: tuple[str, ...], interaction: Interaction) -> None:
            transitions.append(Transition(source, interaction, state_name(target_queue)))
            if target_queue not in seen:
                seen.add(target_queue)
                frontier.append(target_queue)

        visit(queue, Interaction())  # idle
        if len(queue) < capacity:
            for message in messages:
                visit(queue + (message,), Interaction([message], None))
        if queue:
            head, rest = queue[0], queue[1:]
            visit(rest, Interaction(None, [delivered(head)]))
            if len(rest) + 1 <= capacity:
                for message in messages:
                    visit(
                        rest + (message,),
                        Interaction([message], [delivered(head)]),
                    )
    return Automaton(
        states=[state_name(queue) for queue in seen],
        inputs=messages,
        outputs=[delivered(m) for m in messages],
        transitions=transitions,
        initial=[state_name(())],
        name=name,
    )


def lossy_channel(messages: Iterable[str], *, name: str = "channel") -> Automaton:
    """A unit-delay channel that may silently drop a message in flight."""
    base = unit_delay_channel(messages, name=name)
    drops = [
        Transition(state, Interaction(), "empty")
        for state in base.states
        if isinstance(state, str) and state.startswith("holding(")
    ]
    return base.replace(transitions=list(base.transitions) + drops)
