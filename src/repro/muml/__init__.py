"""Mechatronic UML: coordination patterns, components, architectures.

The modeling layer of the paper (§1): reusable coordination patterns
with role invariants and pattern constraints, connectors with QoS,
components whose ports refine the pattern roles, and architectures from
which the context of an embedded legacy component is extracted.
"""

from .architecture import Architecture, ContextExtraction, PatternInstance
from .component import Component, Port, PortConformanceResult
from .connector import (
    bounded_delay_channel,
    delivered,
    fifo_channel,
    lossy_channel,
    unit_delay_channel,
)
from .pattern import CoordinationPattern, PatternVerificationResult, Role
from .verification import ArchitectureVerificationReport, verify_architecture

__all__ = [
    "Role",
    "CoordinationPattern",
    "PatternVerificationResult",
    "Port",
    "Component",
    "PortConformanceResult",
    "Architecture",
    "PatternInstance",
    "ContextExtraction",
    "verify_architecture",
    "ArchitectureVerificationReport",
    "delivered",
    "unit_delay_channel",
    "fifo_channel",
    "bounded_delay_channel",
    "lossy_channel",
]
