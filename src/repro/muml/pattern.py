"""Coordination patterns: roles, invariants, and pattern constraints (§1).

A coordination pattern describes the communication between several
*roles* connected through ports.  Each role's behavior is a Real-Time
Statechart (or directly an automaton); role behavior may be restricted
by a *role invariant* and the overall pattern by a *pattern constraint*,
both given as (timed) ACTL formulas — together with the known
communication partners this is the paper's *context information*.

The running example is the ``DistanceCoordination`` pattern with roles
``frontRole``/``rearRole``, role invariants about braking, and the
pattern constraint ``A[] not (rearRole.convoy and frontRole.noConvoy)``
(Figure 1); see :mod:`repro.railcab` for its full construction.

:meth:`CoordinationPattern.verify` performs the compositional
verification of [24]: each role invariant is checked against the role's
own behavior, and the pattern constraint together with deadlock freedom
is checked against the composition of the roles over the connector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.automaton import Automaton
from ..automata.composition import compose, compose_all
from ..automata.runs import Run
from ..errors import ModelError
from ..logic.checker import CheckResult, ModelChecker
from ..logic.compositional import assert_compositional
from ..logic.counterexample import counterexample
from ..logic.formulas import DEADLOCK_FREE, Formula
from ..rtsc.model import Statechart
from ..rtsc.semantics import unfold

__all__ = ["Role", "CoordinationPattern", "PatternVerificationResult"]


def _as_automaton(behavior: "Automaton | Statechart") -> Automaton:
    if isinstance(behavior, Statechart):
        return unfold(behavior)
    if isinstance(behavior, Automaton):
        return behavior
    raise ModelError(f"expected an Automaton or Statechart, got {behavior!r}")


class Role:
    """One communication partner of a pattern.

    Parameters
    ----------
    name:
        The role name (``frontRole``, ``rearRole``).
    behavior:
        The role protocol as a statechart or automaton.
    invariant:
        Optional role invariant (an ACTL formula over the role's own
        propositions) that any refinement of the role must respect.
    """

    def __init__(self, name: str, behavior: "Automaton | Statechart", invariant: Formula | None = None):
        self.name = name
        self.behavior = _as_automaton(behavior)
        self.invariant = invariant
        if invariant is not None:
            assert_compositional(invariant)

    def __repr__(self) -> str:
        return f"Role(name={self.name!r}, behavior={self.behavior!r})"


@dataclass(frozen=True)
class PatternVerificationResult:
    """Outcome of verifying a coordination pattern."""

    pattern: str
    constraint_result: CheckResult
    deadlock_result: CheckResult
    invariant_results: dict[str, CheckResult]
    composition: Automaton
    counterexample_run: Run | None = None
    invariant_counterexamples: dict[str, Run] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.constraint_result.holds
            and self.deadlock_result.holds
            and all(result.holds for result in self.invariant_results.values())
        )


class CoordinationPattern:
    """A reusable coordination pattern with roles, connector, constraint.

    ``connector`` is either ``None`` — the roles communicate directly
    and synchronously, as in the paper's running example where sending
    and receiving happen within the same time step — or an automaton
    (typically built by :mod:`repro.muml.connector`) modeling channel
    delay and reliability.
    """

    def __init__(
        self,
        name: str,
        roles: "list[Role] | tuple[Role, ...]",
        *,
        constraint: Formula,
        connector: Automaton | None = None,
    ):
        if len(roles) < 2:
            raise ModelError(f"pattern {name!r} needs at least two roles")
        names = [role.name for role in roles]
        if len(set(names)) != len(names):
            raise ModelError(f"pattern {name!r} has duplicate role names {names}")
        assert_compositional(constraint)
        self.name = name
        self.roles = tuple(roles)
        self.constraint = constraint
        self.connector = connector

    def role(self, name: str) -> Role:
        for role in self.roles:
            if role.name == name:
                return role
        raise ModelError(f"pattern {self.name!r} has no role {name!r}")

    def composition(self) -> Automaton:
        """Roles (and connector, if any) composed into the closed pattern."""
        automata = [role.behavior for role in self.roles]
        if self.connector is not None:
            automata.insert(1, self.connector)
        if len(automata) == 2:
            return compose(automata[0], automata[1], name=self.name)
        return compose_all(automata, name=self.name)

    def verify(self) -> PatternVerificationResult:
        """Compositional pattern verification per [24].

        Checks, in this order: every role invariant against the role's
        own behavior (the roles then *guarantee* these invariants to any
        correct refinement), and the pattern constraint plus deadlock
        freedom against the closed composition.
        """
        invariant_results: dict[str, CheckResult] = {}
        invariant_counterexamples: dict[str, Run] = {}
        for role in self.roles:
            if role.invariant is None:
                continue
            checker = ModelChecker(role.behavior)
            result = checker.check(role.invariant)
            invariant_results[role.name] = result
            if not result.holds:
                witness = counterexample(role.behavior, role.invariant, checker=checker)
                if witness is not None:
                    invariant_counterexamples[role.name] = witness

        composition = self.composition()
        checker = ModelChecker(composition)
        constraint_result = checker.check(self.constraint)
        deadlock_result = checker.check(DEADLOCK_FREE)
        witness_run: Run | None = None
        if not constraint_result.holds:
            witness_run = counterexample(composition, self.constraint, checker=checker)
        elif not deadlock_result.holds:
            witness_run = counterexample(composition, DEADLOCK_FREE, checker=checker)
        return PatternVerificationResult(
            pattern=self.name,
            constraint_result=constraint_result,
            deadlock_result=deadlock_result,
            invariant_results=invariant_results,
            composition=composition,
            counterexample_run=witness_run,
            invariant_counterexamples=invariant_counterexamples,
        )

    def __repr__(self) -> str:
        return (
            f"CoordinationPattern(name={self.name!r}, "
            f"roles={[role.name for role in self.roles]!r})"
        )
