"""Components, ports, and role-refinement checking (§1 "Modeling").

A component realizes one port per pattern role it participates in; each
port's behavior must *refine* the role protocol — it may neither add
behavior the role forbids nor block behavior the role guarantees
(Definition 4) — and must respect the role invariant (which follows
from refinement plus the role satisfying its own invariant, Lemma 5's
argument, but is checked directly here as well for better diagnostics).

A component's overall behavior is the parallel composition of its port
behaviors, optionally coordinated by an internal statechart; this is
what the architecture layer composes into the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.automaton import Automaton
from ..automata.composition import compose_all
from ..automata.refinement import refinement_counterexample
from ..automata.runs import Run
from ..errors import ModelError
from ..logic.checker import ModelChecker
from ..rtsc.model import Statechart
from ..rtsc.semantics import unfold
from .pattern import Role

__all__ = ["Port", "Component", "PortConformanceResult"]


@dataclass(frozen=True)
class PortConformanceResult:
    """Outcome of checking one port against its role."""

    port: str
    role: str
    refines_role: bool
    respects_invariant: bool
    refinement_witness: Run | None = None

    @property
    def ok(self) -> bool:
        return self.refines_role and self.respects_invariant


class Port:
    """A component port: a named behavior refining a pattern role."""

    def __init__(self, name: str, role: Role, behavior: "Automaton | Statechart"):
        self.name = name
        self.role = role
        if isinstance(behavior, Statechart):
            behavior = unfold(behavior)
        self.behavior = behavior
        if behavior.inputs != role.behavior.inputs or behavior.outputs != role.behavior.outputs:
            raise ModelError(
                f"port {name!r} has signals I={sorted(behavior.inputs)}/O={sorted(behavior.outputs)} "
                f"but role {role.name!r} expects I={sorted(role.behavior.inputs)}/"
                f"O={sorted(role.behavior.outputs)}"
            )

    def check_conformance(
        self, *, contract_propositions: "frozenset[str] | None" = None
    ) -> PortConformanceResult:
        """Does the port refine its role and respect the role invariant?

        Definition 4's label condition is evaluated over the *contract*
        propositions — those a compositional constraint can actually
        read (the role invariant's, plus any ``contract_propositions``
        supplied, e.g. the pattern constraint's).  Structural labels
        like per-leaf paths differ legitimately between a role protocol
        and its refinement and must not fail the check.
        """
        contract: set[str] = set(contract_propositions or ())
        if self.role.invariant is not None:
            contract |= self.role.invariant.propositions()
        if contract:
            frozen = frozenset(contract)

            def label_match(impl_labels: frozenset[str], spec_labels: frozenset[str]) -> bool:
                return (impl_labels & frozen) == (spec_labels & frozen)

        else:
            def label_match(impl_labels: frozenset[str], spec_labels: frozenset[str]) -> bool:
                return True

        witness = refinement_counterexample(
            self.behavior, self.role.behavior, label_match=label_match
        )
        respects = True
        if self.role.invariant is not None:
            respects = ModelChecker(self.behavior).holds(self.role.invariant)
        return PortConformanceResult(
            port=self.name,
            role=self.role.name,
            refines_role=witness is None,
            respects_invariant=respects,
            refinement_witness=witness,
        )

    def __repr__(self) -> str:
        return f"Port(name={self.name!r}, role={self.role.name!r})"


class Component:
    """A component with named ports and optional internal coordination."""

    def __init__(
        self,
        name: str,
        ports: "list[Port] | tuple[Port, ...]",
        *,
        internal: "Automaton | Statechart | None" = None,
    ):
        if not ports:
            raise ModelError(f"component {name!r} needs at least one port")
        port_names = [port.name for port in ports]
        if len(set(port_names)) != len(port_names):
            raise ModelError(f"component {name!r} has duplicate port names {port_names}")
        self.name = name
        self.ports = tuple(ports)
        if isinstance(internal, Statechart):
            internal = unfold(internal)
        self.internal = internal

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise ModelError(f"component {self.name!r} has no port {name!r}")

    def behavior(self) -> Automaton:
        """The component behavior: ports (and internal chart) composed."""
        automata = [port.behavior for port in self.ports]
        if self.internal is not None:
            automata.append(self.internal)
        if len(automata) == 1:
            return automata[0].replace(name=self.name)
        return compose_all(automata, name=self.name)

    def check_conformance(
        self, *, contract_propositions: "frozenset[str] | None" = None
    ) -> dict[str, PortConformanceResult]:
        """Conformance results for every port, keyed by port name."""
        return {
            port.name: port.check_conformance(contract_propositions=contract_propositions)
            for port in self.ports
        }

    def __repr__(self) -> str:
        return f"Component(name={self.name!r}, ports={[p.name for p in self.ports]!r})"
