"""Discrete clocks and clock constraints for Real-Time Statecharts.

The paper's RTSC are mapped to finite state transition systems with a
discrete time model (§2: "a discrete time model suffices … because the
underlying infrastructure does not react infinitely fast").  A clock is
a counter of elapsed time units; a :class:`ClockConstraint` is a
conjunction of per-clock bounds ``lo ≤ c ≤ hi``.

Clock valuations are plain tuples ordered by clock name so they can be
embedded into automaton states; values are capped at one beyond the
largest constant occurring in the statechart (the classic region
argument: beyond that bound all valuations are equivalent).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import ModelError

__all__ = ["Bound", "ClockConstraint", "ClockValuation", "TRUE_CONSTRAINT", "advance", "reset"]

#: Per-clock bound ``(low, high)``; ``high`` of ``None`` means unbounded.
Bound = tuple[int, int | None]

#: A clock valuation: mapping from clock name to elapsed time units.
ClockValuation = Mapping[str, int]


class ClockConstraint:
    """A conjunction of interval bounds on clocks.

    ``ClockConstraint({"c": (2, 5)})`` is ``2 ≤ c ≤ 5``;
    ``ClockConstraint({"c": (0, 3)})`` is ``c ≤ 3``;
    ``ClockConstraint({})`` is ``true``.
    """

    __slots__ = ("bounds",)

    def __init__(self, bounds: Mapping[str, Bound] | None = None):
        normalized: dict[str, Bound] = {}
        for clock, bound in (bounds or {}).items():
            if not isinstance(clock, str) or not clock:
                raise ModelError(f"clock names must be non-empty strings, got {clock!r}")
            low, high = bound
            if low < 0 or (high is not None and high < low):
                raise ModelError(f"invalid bound {bound!r} for clock {clock!r}")
            normalized[clock] = (low, high)
        self.bounds = dict(sorted(normalized.items()))

    @classmethod
    def at_least(cls, clock: str, low: int) -> "ClockConstraint":
        return cls({clock: (low, None)})

    @classmethod
    def at_most(cls, clock: str, high: int) -> "ClockConstraint":
        return cls({clock: (0, high)})

    @classmethod
    def between(cls, clock: str, low: int, high: int) -> "ClockConstraint":
        return cls({clock: (low, high)})

    @property
    def clocks(self) -> frozenset[str]:
        return frozenset(self.bounds)

    @property
    def is_trivial(self) -> bool:
        return not self.bounds

    def satisfied_by(self, valuation: ClockValuation) -> bool:
        for clock, (low, high) in self.bounds.items():
            value = valuation.get(clock, 0)
            if value < low:
                return False
            if high is not None and value > high:
                return False
        return True

    def conjoin(self, other: "ClockConstraint") -> "ClockConstraint":
        merged = dict(self.bounds)
        for clock, (low, high) in other.bounds.items():
            if clock in merged:
                old_low, old_high = merged[clock]
                new_low = max(old_low, low)
                if old_high is None:
                    new_high = high
                elif high is None:
                    new_high = old_high
                else:
                    new_high = min(old_high, high)
                if new_high is not None and new_low > new_high:
                    raise ModelError(
                        f"conjunction of constraints on clock {clock!r} is unsatisfiable"
                    )
                merged[clock] = (new_low, new_high)
            else:
                merged[clock] = (low, high)
        return ClockConstraint(merged)

    def max_constant(self) -> int:
        """The largest constant mentioned (0 for the trivial constraint)."""
        constants = [low for low, _ in self.bounds.values()]
        constants.extend(high for _, high in self.bounds.values() if high is not None)
        return max(constants, default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClockConstraint):
            return NotImplemented
        return self.bounds == other.bounds

    def __hash__(self) -> int:
        return hash(tuple(self.bounds.items()))

    def __str__(self) -> str:
        if not self.bounds:
            return "true"
        parts = []
        for clock, (low, high) in self.bounds.items():
            if high is None:
                parts.append(f"{clock} >= {low}")
            elif low == 0:
                parts.append(f"{clock} <= {high}")
            elif low == high:
                parts.append(f"{clock} == {low}")
            else:
                parts.append(f"{low} <= {clock} <= {high}")
        return " and ".join(parts)

    def __repr__(self) -> str:
        return f"ClockConstraint({self.bounds!r})"


#: The constraint satisfied by every valuation.
TRUE_CONSTRAINT = ClockConstraint()


def advance(valuation: dict[str, int], cap: int) -> dict[str, int]:
    """All clocks advanced one time unit, capped at ``cap``."""
    return {clock: min(value + 1, cap) for clock, value in valuation.items()}


def reset(valuation: dict[str, int], clocks: Iterable[str]) -> dict[str, int]:
    """The given clocks reset to zero."""
    updated = dict(valuation)
    for clock in clocks:
        updated[clock] = 0
    return updated
