"""Real-Time Statecharts (RTSC): the modeling notation of Mechatronic UML.

An RTSC describes the communication behavior of a pattern role, a
connector, or a component's internal coordination (§1 "Modeling").  It
consists of hierarchical locations (composite states with substates,
e.g. ``noConvoy::default``), discrete clocks, and transitions with

* an optional *trigger* message (consumed when firing),
* an optional *raised* message (produced when firing),
* a clock *guard* (when the transition may fire),
* clock *resets*, and
* an optional *deadline* via location invariants (upper clock bounds
  that force the location to be left in time).

The statechart is a plain description object; its execution semantics —
the mapping to the paper's automaton model (I/O-interval structures
[44], simplified per §2) — lives in :mod:`repro.rtsc.semantics`.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import ModelError
from .clocks import ClockConstraint, TRUE_CONSTRAINT

__all__ = ["Location", "RTSCTransition", "Statechart"]


class Location:
    """A (possibly composite) statechart location.

    Locations form a tree via ``parent``; ``path`` renders the familiar
    ``outer::inner`` notation.  ``invariant`` is the location's time
    invariant (e.g. ``c ≤ 2``: the location must be left within two time
    units of ``c``'s last reset); it applies while any descendant is
    active.
    """

    __slots__ = ("name", "parent", "invariant", "initial_child", "_children")

    def __init__(self, name: str, parent: "Location | None" = None, invariant: ClockConstraint = TRUE_CONSTRAINT):
        if not name or "::" in name:
            raise ModelError(f"invalid location name {name!r}")
        self.name = name
        self.parent = parent
        self.invariant = invariant
        self.initial_child: Location | None = None
        self._children: list[Location] = []
        if parent is not None:
            parent._children.append(self)

    @property
    def children(self) -> tuple["Location", ...]:
        return tuple(self._children)

    @property
    def is_composite(self) -> bool:
        return bool(self._children)

    @property
    def path(self) -> str:
        """The fully qualified ``outer::inner`` name."""
        segments = []
        cursor: Location | None = self
        while cursor is not None:
            segments.append(cursor.name)
            cursor = cursor.parent
        return "::".join(reversed(segments))

    def ancestors(self) -> tuple["Location", ...]:
        """This location and all enclosing composites, innermost first."""
        chain = []
        cursor: Location | None = self
        while cursor is not None:
            chain.append(cursor)
            cursor = cursor.parent
        return tuple(chain)

    def initial_leaf(self) -> "Location":
        """The leaf entered when this location is entered."""
        cursor = self
        while cursor.is_composite:
            if cursor.initial_child is None:
                raise ModelError(f"composite location {cursor.path!r} has no initial substate")
            cursor = cursor.initial_child
        return cursor

    def __repr__(self) -> str:
        return f"Location({self.path!r})"


class RTSCTransition:
    """One statechart transition.

    ``urgent`` transitions must fire as soon as they are enabled: while
    an urgent transition can fire in the active configuration, time may
    not pass idly (the RTSC notion of urgency, complementing the softer
    deadline pressure of location invariants).
    """

    __slots__ = ("source", "target", "trigger", "raised", "guard", "resets", "urgent")

    def __init__(
        self,
        source: Location,
        target: Location,
        *,
        trigger: str | None = None,
        raised: str | None = None,
        guard: ClockConstraint = TRUE_CONSTRAINT,
        resets: Iterable[str] = (),
        urgent: bool = False,
    ):
        self.source = source
        self.target = target
        self.trigger = trigger
        self.raised = raised
        self.guard = guard
        self.resets = frozenset(resets)
        self.urgent = urgent

    def __repr__(self) -> str:
        trigger = f"{self.trigger}?" if self.trigger else ""
        raised = f"{self.raised}!" if self.raised else ""
        label = " / ".join(part for part in (trigger, raised) if part) or "τ"
        return f"RTSCTransition({self.source.path} --{label}--> {self.target.path})"


class Statechart:
    """A Real-Time Statechart with a builder-style construction API.

    Example (the paper's front role, abridged)::

        sc = Statechart("frontRole",
                        inputs={"convoyProposal"}, outputs={"startConvoy"})
        no_convoy = sc.location("noConvoy", initial=True)
        default = sc.location("default", parent=no_convoy, initial=True)
        answer = sc.location("answer", parent=no_convoy)
        convoy = sc.location("convoy")
        sc.transition(default, answer, trigger="convoyProposal")
        sc.transition(answer, convoy, raised="startConvoy")
    """

    def __init__(
        self,
        name: str,
        *,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        clocks: Iterable[str] = (),
    ):
        self.name = name
        self.inputs = frozenset(inputs)
        self.outputs = frozenset(outputs)
        self.clocks = frozenset(clocks)
        self._locations: dict[str, Location] = {}
        self._transitions: list[RTSCTransition] = []
        self._initial: Location | None = None
        if self.inputs & self.outputs:
            raise ModelError(
                f"statechart {name!r}: inputs and outputs overlap on "
                f"{sorted(self.inputs & self.outputs)}"
            )

    # --------------------------------------------------------------- building

    def location(
        self,
        name: str,
        *,
        parent: Location | None = None,
        initial: bool = False,
        invariant: ClockConstraint = TRUE_CONSTRAINT,
    ) -> Location:
        """Declare a location; ``initial`` marks it initial in its scope."""
        for clock in invariant.clocks:
            if clock not in self.clocks:
                raise ModelError(f"invariant of {name!r} uses undeclared clock {clock!r}")
        location = Location(name, parent, invariant)
        path = location.path
        if path in self._locations:
            raise ModelError(f"statechart {self.name!r} already has a location {path!r}")
        self._locations[path] = location
        if initial:
            if parent is None:
                if self._initial is not None:
                    raise ModelError(
                        f"statechart {self.name!r} already has the initial location "
                        f"{self._initial.path!r}"
                    )
                self._initial = location
            else:
                if parent.initial_child is not None:
                    raise ModelError(
                        f"composite {parent.path!r} already has the initial substate "
                        f"{parent.initial_child.path!r}"
                    )
                parent.initial_child = location
        return location

    def transition(
        self,
        source: Location,
        target: Location,
        *,
        trigger: str | None = None,
        raised: str | None = None,
        guard: ClockConstraint = TRUE_CONSTRAINT,
        resets: Iterable[str] = (),
        urgent: bool = False,
    ) -> RTSCTransition:
        """Declare a transition between (possibly composite) locations."""
        if trigger is not None and trigger not in self.inputs:
            raise ModelError(f"trigger {trigger!r} is not an input of statechart {self.name!r}")
        if raised is not None and raised not in self.outputs:
            raise ModelError(f"raised message {raised!r} is not an output of {self.name!r}")
        for clock in guard.clocks | frozenset(resets):
            if clock not in self.clocks:
                raise ModelError(
                    f"transition in {self.name!r} uses undeclared clock {clock!r}"
                )
        for location in (source, target):
            if self._locations.get(location.path) is not location:
                raise ModelError(
                    f"transition endpoint {location.path!r} does not belong to {self.name!r}"
                )
        transition = RTSCTransition(
            source,
            target,
            trigger=trigger,
            raised=raised,
            guard=guard,
            resets=resets,
            urgent=urgent,
        )
        self._transitions.append(transition)
        return transition

    # ---------------------------------------------------------------- access

    @property
    def locations(self) -> tuple[Location, ...]:
        return tuple(self._locations.values())

    @property
    def leaf_locations(self) -> tuple[Location, ...]:
        return tuple(loc for loc in self._locations.values() if not loc.is_composite)

    @property
    def transitions(self) -> tuple[RTSCTransition, ...]:
        return tuple(self._transitions)

    @property
    def initial_location(self) -> Location:
        if self._initial is None:
            raise ModelError(f"statechart {self.name!r} has no initial location")
        return self._initial

    def find(self, path: str) -> Location:
        """Look up a location by its qualified ``outer::inner`` path."""
        try:
            return self._locations[path]
        except KeyError:
            raise ModelError(f"statechart {self.name!r} has no location {path!r}") from None

    def max_clock_constant(self) -> int:
        """The largest clock constant in guards and invariants."""
        constants = [t.guard.max_constant() for t in self._transitions]
        constants.extend(loc.invariant.max_constant() for loc in self._locations.values())
        return max(constants, default=0)

    def __repr__(self) -> str:
        return (
            f"Statechart(name={self.name!r}, |locations|={len(self._locations)}, "
            f"|transitions|={len(self._transitions)}, clocks={sorted(self.clocks)})"
        )
