"""Real-Time Statecharts: Mechatronic UML's behavioral notation.

RTSC models role protocols, connectors, and component coordination;
:func:`unfold` maps them to the discrete-time automata of §2 (one time
unit per transition), on which composition, refinement, and model
checking operate.
"""

from .clocks import Bound, ClockConstraint, ClockValuation, TRUE_CONSTRAINT, advance, reset
from .model import Location, RTSCTransition, Statechart
from .semantics import default_labeler, unfold, unfold_parallel
from .validation import ValidationReport, validate

__all__ = [
    "Bound",
    "ClockConstraint",
    "ClockValuation",
    "TRUE_CONSTRAINT",
    "advance",
    "reset",
    "Location",
    "RTSCTransition",
    "Statechart",
    "unfold",
    "unfold_parallel",
    "default_labeler",
    "validate",
    "ValidationReport",
]
