"""Execution semantics: unfolding an RTSC into the paper's automaton model.

The unfolding realizes the simplified I/O-interval-structure mapping of
§2: every automaton transition takes exactly one time unit.  A
configuration of the statechart is a pair of an active leaf location and
a clock valuation; each time unit the chart either

* *fires* one transition whose source scope contains the active leaf
  and whose guard is satisfied — consuming the trigger message,
  producing the raised message, advancing all clocks by one and
  resetting the transition's reset set — or
* *idles* — advancing all clocks by one — provided the location
  invariants of the active scope still tolerate the advanced valuation.

A configuration whose invariants forbid idling and whose transitions
cannot fire has no successor: it is a (time-stopping) deadlock,
representing a missed deadline.  This is deliberate — the verification
obligation ``φ ∧ ¬δ`` of §4.1 is exactly what detects such situations.

Clock values are capped at the largest constant plus one; beyond that
bound, all valuations satisfy and violate the same constraints, so the
unfolding stays finite (and exact).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from ..automata.automaton import Automaton, Transition
from ..automata.interaction import Interaction
from ..errors import ModelError
from .clocks import advance, reset
from .model import Location, Statechart

__all__ = ["unfold", "unfold_parallel", "default_labeler"]

_Configuration = tuple[Location, tuple[tuple[str, int], ...]]


def default_labeler(statechart: Statechart) -> Callable[[Location], frozenset[str]]:
    """Propositions for a leaf: its top-level region and its full path.

    ``noConvoy::default`` in statechart ``frontRole`` is labeled with
    ``frontRole.noConvoy`` (the proposition pattern constraints use) and
    ``frontRole.noConvoy::default`` (for precise per-leaf properties).
    """

    def labeler(leaf: Location) -> frozenset[str]:
        top = leaf.ancestors()[-1]
        return frozenset({f"{statechart.name}.{top.name}", f"{statechart.name}.{leaf.path}"})

    return labeler


def _state_name(leaf: Location, valuation: tuple[tuple[str, int], ...]) -> str:
    if not valuation:
        return leaf.path
    clocks = ",".join(f"{clock}={value}" for clock, value in valuation)
    return f"{leaf.path}|{clocks}"


def _invariants_hold(leaf: Location, valuation: dict[str, int]) -> bool:
    return all(location.invariant.satisfied_by(valuation) for location in leaf.ancestors())


def unfold(
    statechart: Statechart,
    *,
    labeler: Callable[[Location], Iterable[str]] | None = None,
    name: str | None = None,
) -> Automaton:
    """The automaton ``M = (S, I, O, T, L, Q)`` of a statechart.

    States are readable strings — the leaf path, suffixed with the clock
    valuation when the chart has clocks (``convoy|c=2``).
    """
    if labeler is None:
        labeler = default_labeler(statechart)
    cap = statechart.max_clock_constant() + 1
    clock_names = tuple(sorted(statechart.clocks))

    initial_leaf = statechart.initial_location.initial_leaf()
    initial_valuation = {clock: 0 for clock in clock_names}
    initial_config: _Configuration = (initial_leaf, tuple(sorted(initial_valuation.items())))

    leaf_by_name: dict[str, Location] = {}
    transitions: list[Transition] = []
    labels: dict[str, frozenset[str]] = {}
    seen: set[str] = set()
    queue: deque[_Configuration] = deque([initial_config])
    seen.add(_state_name(*initial_config))
    labels[_state_name(*initial_config)] = frozenset(labeler(initial_leaf))
    leaf_by_name[_state_name(*initial_config)] = initial_leaf

    while queue:
        leaf, valuation_items = queue.popleft()
        source_name = _state_name(leaf, valuation_items)
        valuation = dict(valuation_items)
        advanced = advance(valuation, cap)
        scope = leaf.ancestors()

        def visit(target_leaf: Location, target_valuation: dict[str, int], interaction: Interaction) -> None:
            target_items = tuple(sorted(target_valuation.items()))
            target_name = _state_name(target_leaf, target_items)
            transitions.append(Transition(source_name, interaction, target_name))
            if target_name not in seen:
                seen.add(target_name)
                labels[target_name] = frozenset(labeler(target_leaf))
                leaf_by_name[target_name] = target_leaf
                queue.append((target_leaf, target_items))

        # Fire an eligible transition of the active scope.
        urgency_pending = False
        for rtsc_transition in statechart.transitions:
            if rtsc_transition.source not in scope:
                continue
            if not rtsc_transition.guard.satisfied_by(valuation):
                continue
            if rtsc_transition.urgent:
                urgency_pending = True
            target_leaf = rtsc_transition.target.initial_leaf()
            target_valuation = reset(advanced, rtsc_transition.resets)
            if not _invariants_hold(target_leaf, target_valuation):
                continue
            interaction = Interaction(
                [rtsc_transition.trigger] if rtsc_transition.trigger else None,
                [rtsc_transition.raised] if rtsc_transition.raised else None,
            )
            visit(target_leaf, target_valuation, interaction)

        # Idle for one time unit if the invariants tolerate it — and no
        # urgent transition demands to fire right now.
        if not urgency_pending and _invariants_hold(leaf, advanced):
            visit(leaf, advanced, Interaction())

    automaton = Automaton(
        states=seen,
        inputs=statechart.inputs,
        outputs=statechart.outputs,
        transitions=transitions,
        initial=[_state_name(*initial_config)],
        labels=labels,
        name=name if name is not None else statechart.name,
    )
    if not automaton.states:
        raise ModelError(f"statechart {statechart.name!r} unfolds to an empty automaton")
    return automaton


def unfold_parallel(statecharts, *, name: str | None = None) -> Automaton:
    """Unfold several charts and compose them — AND-state (orthogonal
    region) modeling by composition.

    Statecharts with orthogonal regions are modeled compositionally in
    this library: one chart per region, synchronised through shared
    signals.  The result is semantically the product the flat AND-state
    would unfold to, with the synchronous one-transition-per-time-unit
    discipline of §2 applied jointly.
    """
    from ..automata.composition import compose_all

    charts = list(statecharts)
    if not charts:
        raise ModelError("unfold_parallel needs at least one statechart")
    automata = [unfold(chart) for chart in charts]
    if len(automata) == 1:
        result = automata[0]
        return result.replace(name=name) if name is not None else result
    return compose_all(automata, name=name if name is not None else "||".join(c.name for c in charts))
