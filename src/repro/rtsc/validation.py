"""Static well-formedness checks for Real-Time Statecharts.

Construction-time checks in :mod:`repro.rtsc.model` already reject
locally malformed elements (undeclared triggers, clocks, duplicate
locations).  :func:`validate` adds the whole-chart checks: every
composite must resolve to an initial leaf, the chart must have an
initial location, and structural reachability is reported so dead
locations are caught before unfolding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import ModelError
from .model import Location, Statechart

__all__ = ["ValidationReport", "validate"]


@dataclass
class ValidationReport:
    """Outcome of validating a statechart."""

    statechart: str
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    reachable_leaves: frozenset[str] = frozenset()

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise ModelError(
                f"statechart {self.statechart!r} is ill-formed: " + "; ".join(self.errors)
            )


def _structural_successors(statechart: Statechart, leaf: Location) -> set[Location]:
    scope = set(leaf.ancestors())
    successors: set[Location] = set()
    for transition in statechart.transitions:
        if transition.source in scope:
            try:
                successors.add(transition.target.initial_leaf())
            except ModelError:
                continue  # reported separately as a missing initial substate
    return successors


def validate(statechart: Statechart) -> ValidationReport:
    """Check a statechart and return a report (never raises itself)."""
    report = ValidationReport(statechart.name)

    try:
        initial = statechart.initial_location
    except ModelError as error:
        report.errors.append(str(error))
        return report

    for location in statechart.locations:
        if location.is_composite and location.initial_child is None:
            report.errors.append(f"composite location {location.path!r} has no initial substate")

    try:
        start = initial.initial_leaf()
    except ModelError as error:
        report.errors.append(str(error))
        return report

    seen: set[Location] = {start}
    queue: deque[Location] = deque([start])
    while queue:
        leaf = queue.popleft()
        for successor in _structural_successors(statechart, leaf):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    report.reachable_leaves = frozenset(leaf.path for leaf in seen)

    for leaf in statechart.leaf_locations:
        if leaf not in seen:
            report.warnings.append(f"leaf location {leaf.path!r} is structurally unreachable")

    for transition in statechart.transitions:
        if transition.source.is_composite and transition.target in transition.source.ancestors():
            report.warnings.append(
                f"self-targeting composite transition on {transition.source.path!r} "
                "re-enters the initial substate each time it fires"
            )
    return report
