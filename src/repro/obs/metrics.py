"""Deterministic metrics: counters, gauges, and fixed-bucket histograms.

The synthesis pipeline grew ad-hoc counter plumbing one PR at a time:
``StepStats`` on the incremental product, ``CheckerStats.as_dict()`` on
the model checker, the ``product_*`` / ``checker_*`` namespaces on the
iteration records.  :class:`MetricsRegistry` is the common sink those
vocabularies publish into — and the single source reports and exporters
read from:

* :func:`record_counters` renders one iteration record's counter
  namespaces as a plain dict (the canonical shape used by
  ``result_to_dict`` and the markdown report);
* :func:`publish_record` folds the same counters into a registry;
* ``CheckerStats.publish_to`` and ``WorkerPool.publish_to`` snapshot
  their own dicts via :meth:`MetricsRegistry.absorb`.

Determinism: histograms use *fixed* bucket bounds (never computed from
the data), and every ``as_dict`` is sorted by name, so the exported
metrics of a run are byte-identical across hash seeds and schedulers —
only wall-clock histogram tallies may move between adjacent buckets.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "DEFAULT_TIME_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "record_counters",
    "publish_record",
]

#: Fixed wall-clock bucket upper bounds, in seconds (roughly half-decade
#: steps from 0.1 ms to 10 s).  Fixed bounds keep the *shape* of the
#: exported histogram independent of the data, so trace diffs stay
#: meaningful run-over-run.
DEFAULT_TIME_BOUNDS: tuple[float, ...] = (
    0.0001,
    0.00032,
    0.001,
    0.0032,
    0.01,
    0.032,
    0.1,
    0.32,
    1.0,
    3.2,
    10.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-write-wins numeric metric (snapshots, sizes, ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | int = 0

    def set(self, value: float | int) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bound histogram of observations (typically durations).

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket, so ``len(counts) == len(bounds) + 1``
    and ``sum(counts) == count`` always hold.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_TIME_BOUNDS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must be strictly increasing, got {bounds!r}")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Get-or-create home of every counter, gauge, and histogram.

    One registry accompanies one :class:`~repro.obs.tracer.Tracer`;
    instrumented code reaches it as ``tracer.metrics``.  All accessors
    are get-or-create, so publication sites never need registration
    boilerplate.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # --------------------------------------------------------------- accessors

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_TIME_BOUNDS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    # -------------------------------------------------------------- shorthands

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float | int) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def absorb(self, mapping: dict, prefix: str = "") -> None:
        """Snapshot a counter dict (``CheckerStats.as_dict()``-style).

        Numeric values become gauges (last write wins, so absorbing the
        same source repeatedly never double-counts); integer sequences
        become one indexed gauge per element.  Booleans and other value
        types are skipped.
        """
        for name in sorted(mapping):
            value = mapping[name]
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                self.set_gauge(prefix + name, value)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, (int, float)) and not isinstance(item, bool):
                        self.set_gauge(f"{prefix}{name}[{index}]", item)

    # ----------------------------------------------------------------- export

    def as_dict(self) -> dict[str, dict]:
        """Deterministic (name-sorted) snapshot of every metric."""
        return {
            "counters": {name: self._counters[name].value for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].as_dict() for name in sorted(self._histograms)
            },
        }


class _NullMetric:
    """Shared no-op stand-in for Counter/Gauge/Histogram."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    bounds: tuple[float, ...] = ()
    counts: list[int] = []

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float | int) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def as_dict(self) -> dict[str, object]:
        return {}


_NULL_METRIC = _NullMetric()


class NullMetricsRegistry(MetricsRegistry):
    """The registry behind ``NULL_TRACER.metrics``: records nothing."""

    def __init__(self) -> None:
        pass

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_METRIC  # type: ignore[return-value]

    def histogram(  # type: ignore[override]
        self, name: str, bounds: tuple[float, ...] = DEFAULT_TIME_BOUNDS
    ) -> Histogram:
        return _NULL_METRIC  # type: ignore[return-value]

    def absorb(self, mapping: dict, prefix: str = "") -> None:
        pass

    def as_dict(self) -> dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Process-wide no-op registry (the ``metrics`` of ``NULL_TRACER``).
NULL_METRICS = NullMetricsRegistry()


# -------------------------------------------------- iteration-record plumbing

#: Scalar counters shared by ``IterationRecord`` and
#: ``MultiIterationRecord``, in the canonical export order.
_RECORD_SCALARS = (
    "closure_groups_reused",
    "closure_groups_rebuilt",
    "dirty_states",
    "affected_states",
    "product_hits",
    "product_misses",
    "product_shards",
)
_RECORD_SCALARS_TAIL = (
    "product_shard_handoffs",
    "product_shard_merge_conflicts",
    "checker_fixpoint_work",
    "checker_shards",
)


def record_counters(record) -> dict[str, int | list[int]]:
    """The ``product_*`` / ``checker_*`` counter namespaces of one record.

    Works on both ``IterationRecord`` and ``MultiIterationRecord`` (the
    two share every counter field).  The key order matches the
    ``counters`` object of ``result_to_dict`` exactly — this function is
    its single source.
    """
    counters: dict[str, int | list[int]] = {
        name: getattr(record, name) for name in _RECORD_SCALARS
    }
    counters["product_shard_states_explored"] = list(record.product_shard_states_explored)
    counters["product_shard_handoffs"] = record.product_shard_handoffs
    counters["product_shard_merge_conflicts"] = record.product_shard_merge_conflicts
    counters["product_dense_states"] = record.product_dense_states
    counters["product_bitset_words"] = record.product_bitset_words
    counters["checker_fixpoint_work"] = record.checker_fixpoint_work
    counters["checker_shards"] = record.checker_shards
    counters["checker_shard_fixpoint_work"] = list(record.checker_shard_fixpoint_work)
    counters["checker_shard_handoffs"] = record.checker_shard_handoffs
    counters["test_retries"] = record.test_retries
    counters["test_timeouts"] = record.test_timeouts
    counters["tests_inconclusive"] = record.tests_inconclusive
    counters["quarantine_size"] = record.quarantine_size
    return counters


def publish_record(registry: MetricsRegistry, record) -> None:
    """Accumulate one iteration record's counters into a registry.

    Scalars increment same-named counters; per-shard tuples increment
    one indexed counter per shard (``product_shard_states_explored[k]``),
    so the sum invariants (`sum(shards) == hits + misses`, etc.) can be
    re-checked on the registry alone.  ``product_shards`` /
    ``checker_shards`` are configuration, not work, and land in gauges,
    as do the dense-product sizes (``product_dense_states`` /
    ``product_bitset_words``) and ``quarantine_size``.
    """
    for name, value in record_counters(record).items():
        if name in (
            "product_shards",
            "checker_shards",
            "quarantine_size",
            "product_dense_states",
            "product_bitset_words",
        ):
            # Configuration / current-size values, not accumulated work.
            registry.set_gauge(name, value)  # type: ignore[arg-type]
        elif isinstance(value, list):
            for index, item in enumerate(value):
                registry.inc(f"{name}[{index}]", item)
        else:
            registry.inc(name, value)
    registry.inc("loop_iterations")
    registry.inc("loop_tests_executed", record.tests_executed)
    registry.inc("loop_knowledge_gained", record.knowledge_gained)
