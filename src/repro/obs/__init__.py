"""Observability for the verify → test → learn loop.

``repro.obs`` packages three pieces that work together:

* :mod:`repro.obs.tracer` — hierarchical span tracing with a
  zero-overhead :data:`NULL_TRACER` default and ``REPRO_TRACE``
  environment activation;
* :mod:`repro.obs.metrics` — deterministic counters, gauges, and
  fixed-bucket histograms, plus the canonical ``product_*`` /
  ``checker_*`` counter plumbing shared with the reports;
* :mod:`repro.obs.export` — JSONL and Chrome trace-event exporters,
  the self-time fold behind ``tools/trace_report.py``, and the
  plain-text per-iteration summary.

Span and metric names are a stable, tested contract — see
``docs/observability.md`` for the reference.
"""

from .export import (
    chrome_trace,
    encode_event,
    fold_self_time,
    load_trace,
    metric_events,
    render_fold_table,
    render_trace_summary,
    span_event,
    span_line,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .metrics import (
    DEFAULT_TIME_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    publish_record,
    record_counters,
)
from .tracer import (
    NULL_TRACER,
    TRACE_ENV,
    TRACE_FORMAT_ENV,
    NullTracer,
    Span,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_TIME_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "TRACE_ENV",
    "TRACE_FORMAT_ENV",
    "Tracer",
    "chrome_trace",
    "fold_self_time",
    "load_trace",
    "metric_events",
    "encode_event",
    "publish_record",
    "record_counters",
    "render_fold_table",
    "render_trace_summary",
    "resolve_tracer",
    "span_event",
    "span_line",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
