"""Observability for the verify → test → learn loop.

``repro.obs`` packages three pieces that work together:

* :mod:`repro.obs.tracer` — hierarchical span tracing with a
  zero-overhead :data:`NULL_TRACER` default and ``REPRO_TRACE``
  environment activation;
* :mod:`repro.obs.metrics` — deterministic counters, gauges, and
  fixed-bucket histograms, plus the canonical ``product_*`` /
  ``checker_*`` counter plumbing shared with the reports;
* :mod:`repro.obs.export` — JSONL and Chrome trace-event exporters,
  the self-time fold (and fold diff) behind ``tools/trace_report.py``,
  and the plain-text per-iteration summary;
* :mod:`repro.obs.progress` — typed live progress events from the
  loop, through callback/JSONL/TTY sinks (the service streaming hook);
* :mod:`repro.obs.flight` — the flight recorder: a bounded event ring
  that dumps a self-contained ``blackbox.json`` on anomalies, with a
  zero-overhead :data:`NULL_FLIGHT_RECORDER` default and
  ``REPRO_BLACKBOX`` environment activation.

Span, metric, and progress-event names are a stable, tested contract —
see ``docs/observability.md`` for the reference.
"""

from .export import (
    chrome_trace,
    encode_event,
    fold_diff,
    fold_self_time,
    load_trace,
    metric_events,
    render_fold_diff,
    render_fold_table,
    render_trace_summary,
    span_event,
    span_line,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .flight import (
    BLACKBOX_ENV,
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    resolve_flight_recorder,
)
from .metrics import (
    DEFAULT_TIME_BOUNDS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    publish_record,
    record_counters,
)
from .progress import (
    PROGRESS_EVENT_NAMES,
    CallbackProgressSink,
    JsonlProgressSink,
    ProgressEmitter,
    ProgressEvent,
    TtyProgressSink,
)
from .tracer import (
    NULL_TRACER,
    TRACE_ENV,
    TRACE_FORMAT_ENV,
    NullTracer,
    Span,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "BLACKBOX_ENV",
    "CallbackProgressSink",
    "Counter",
    "DEFAULT_TIME_BOUNDS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlProgressSink",
    "MetricsRegistry",
    "NULL_FLIGHT_RECORDER",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullFlightRecorder",
    "NullMetricsRegistry",
    "NullTracer",
    "PROGRESS_EVENT_NAMES",
    "ProgressEmitter",
    "ProgressEvent",
    "Span",
    "TRACE_ENV",
    "TRACE_FORMAT_ENV",
    "Tracer",
    "TtyProgressSink",
    "chrome_trace",
    "fold_diff",
    "fold_self_time",
    "load_trace",
    "metric_events",
    "encode_event",
    "publish_record",
    "record_counters",
    "render_fold_diff",
    "render_fold_table",
    "render_trace_summary",
    "resolve_flight_recorder",
    "resolve_tracer",
    "span_event",
    "span_line",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
