"""Trace exporters: JSONL event logs, Chrome trace-event JSON, summaries.

Three audiences, three formats:

* :func:`write_jsonl` — one JSON object per line (``{"type": "span", ...}``
  then ``{"type": "metric", ...}``), greppable and streamable; the
  format the ``REPRO_TRACE`` tracer appends live.
* :func:`write_chrome_trace` — the Chrome trace-event format (a
  ``{"traceEvents": [...]}`` document of ``ph: "X"`` complete events),
  loadable in Perfetto / ``chrome://tracing``.  Every tracer track
  becomes one named thread row, so checker and product shards render as
  parallel swimlanes under the coordinator's ``main`` track.
* :func:`render_trace_summary` — a plain-text per-iteration table of
  where each loop iteration spent its time, for terminals and CI logs.

:func:`fold_self_time` is the shared analysis primitive (also behind
``tools/trace_report.py``): spans on a track nest by interval
containment, and a span's *self time* is its duration minus its direct
children's — the number that actually ranks optimization targets.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Sequence

from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = [
    "span_event",
    "span_line",
    "encode_event",
    "metric_events",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "load_trace",
    "fold_self_time",
    "fold_diff",
    "render_fold_table",
    "render_fold_diff",
    "render_trace_summary",
]


# ----------------------------------------------------------------- JSONL form


def span_event(span: Span) -> dict:
    """The JSONL object of one span (times in seconds)."""
    return {
        "type": "span",
        "name": span.name,
        "track": span.track,
        "start": span.start,
        "dur": span.duration,
        "args": dict(span.args),
    }


#: Cached compact encoder — ``json.dumps`` builds a fresh encoder per
#: call, which dominates the streaming sink's per-span cost.
_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def encode_event(event: dict) -> str:
    """One event as a compact, key-sorted JSON line (no newline)."""
    return _ENCODE(event)


def _args_json(args: dict) -> str:
    """Compact key-sorted JSON of a span's args, fast-pathing the usual
    shape: a few identifier keys mapping to ints or plain strings."""
    if not args:
        return "{}"
    parts = []
    for key in sorted(args):
        value = args[key]
        if type(value) is int:
            parts.append(f'"{key}":{value}')
        elif type(value) is str and '"' not in value and "\\" not in value:
            parts.append(f'"{key}":"{value}"')
        else:
            return _ENCODE(args)
    return "{" + ",".join(parts) + "}"


def span_line(span: Span) -> str:
    """``encode_event(span_event(span))`` without the intermediate dict.

    The streaming sinks serialize one span per finished ``with`` block,
    so this is the hottest line of the *active* tracer; the span shape
    is fixed, the names are library-controlled identifiers, ``repr`` of
    a finite float is valid JSON, and the args fast path covers the
    int/plain-string annotations the loop emits.  The output is
    byte-identical to the generic path (pinned by a test), keeping
    JSONL files diffable across both.
    """
    return (
        f'{{"args":{_args_json(span.args)},"dur":{span.duration!r},'
        f'"name":"{span.name}","start":{span.start!r},'
        f'"track":"{span.track}","type":"span"}}'
    )


def metric_events(metrics: MetricsRegistry) -> list[dict]:
    """One JSONL object per metric, name-sorted for determinism."""
    snapshot = metrics.as_dict()
    events: list[dict] = []
    for name, value in snapshot["counters"].items():
        events.append({"type": "metric", "kind": "counter", "name": name, "value": value})
    for name, value in snapshot["gauges"].items():
        events.append({"type": "metric", "kind": "gauge", "name": name, "value": value})
    for name, hist in snapshot["histograms"].items():
        events.append({"type": "metric", "kind": "histogram", "name": name, **hist})
    return events


def write_jsonl(tracer: Tracer, destination: "str | IO[str]") -> None:
    """Write every retained span, then the metrics snapshot, as JSONL."""

    def emit(handle: "IO[str]") -> None:
        for span in tracer.spans:
            handle.write(span_line(span) + "\n")
        for event in metric_events(tracer.metrics):
            handle.write(encode_event(event) + "\n")

    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            emit(handle)
    else:
        emit(destination)


# --------------------------------------------------------- Chrome trace form


def chrome_trace(tracer: Tracer) -> dict:
    """The Chrome trace-event document for a tracer's retained spans.

    One process (pid 1), one thread per track; tracks are named via
    ``thread_name`` metadata events and ordered by sorted track name, so
    the document is deterministic given a deterministic span set.
    Timestamps are microseconds from the tracer's epoch, per the format.
    """
    spans = tracer.spans
    tracks = sorted({span.track for span in spans})
    tids = {track: index + 1 for index, track in enumerate(tracks)}
    events: list[dict] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": "repro"}}
    ]
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[track],
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[track],
                "name": "thread_sort_index",
                "args": {"sort_index": tids[track]},
            }
        )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.track,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": dict(span.args),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    document = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")


def write_trace(tracer: Tracer, path: str, *, format: str = "jsonl") -> None:
    """Dispatch on ``format`` (``jsonl`` or ``chrome``)."""
    if format == "jsonl":
        write_jsonl(tracer, path)
    elif format == "chrome":
        write_chrome_trace(tracer, path)
    else:
        raise ValueError(f"unknown trace format {format!r}; expected 'jsonl' or 'chrome'")


# ------------------------------------------------------------------- loading


def load_trace(path: str) -> tuple[list[Span], list[dict]]:
    """Read a JSONL or Chrome trace file back into (spans, metric events).

    Format is detected from the content: a single JSON document with
    ``traceEvents`` is a Chrome trace (track names recovered from the
    ``thread_name`` metadata), anything else is parsed line-by-line.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped.splitlines()[0]:
        document = json.loads(text)
        names: dict[int, str] = {}
        for event in document["traceEvents"]:
            if event.get("ph") == "M" and event.get("name") == "thread_name":
                names[event["tid"]] = event["args"]["name"]
        spans = [
            Span(
                name=event["name"],
                track=names.get(event["tid"], f"tid-{event['tid']}"),
                start=event["ts"] / 1e6,
                duration=event["dur"] / 1e6,
                args=dict(event.get("args", {})),
            )
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        return spans, []
    spans = []
    metrics: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if event.get("type") == "span":
            spans.append(
                Span(
                    name=event["name"],
                    track=event["track"],
                    start=event["start"],
                    duration=event["dur"],
                    args=dict(event.get("args", {})),
                )
            )
        elif event.get("type") == "metric":
            metrics.append(event)
    return spans, metrics


# ------------------------------------------------------------------ analysis


def fold_self_time(spans: Iterable[Span]) -> list[dict]:
    """Aggregate spans into per-name count / total / self-time rows.

    Spans nest by interval containment per track (the same rule trace
    viewers use); a span's self time excludes its direct children.
    Rows are sorted by descending self time, then name.
    """
    agg: dict[str, list[float]] = {}
    by_track: dict[str, list[Span]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)

    def commit(name: str, duration: float, child_total: float, stack: list) -> None:
        entry = agg.setdefault(name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += duration
        entry[2] += max(duration - child_total, 0.0)
        if stack:
            stack[-1][3] += duration

    for track in sorted(by_track):
        ordered = sorted(by_track[track], key=lambda s: (s.start, -s.duration))
        # Open-span stack entries: [end, name, duration, child_total].
        stack: list[list] = []
        for span in ordered:
            while stack and span.start >= stack[-1][0]:
                closed = stack.pop()
                commit(closed[1], closed[2], closed[3], stack)
            stack.append([span.start + span.duration, span.name, span.duration, 0.0])
        while stack:
            closed = stack.pop()
            commit(closed[1], closed[2], closed[3], stack)
    return sorted(
        (
            {"name": name, "count": int(count), "total": total, "self": self_time}
            for name, (count, total, self_time) in agg.items()
        ),
        key=lambda row: (-row["self"], row["name"]),
    )


def render_fold_table(rows: Sequence[dict], *, limit: int | None = None) -> str:
    """The top-N self-time table of :func:`fold_self_time` rows."""
    shown = list(rows if limit is None else rows[:limit])
    header = f"{'span':<28} {'count':>7} {'total ms':>10} {'self ms':>10} {'self %':>7}"
    lines = [header, "-" * len(header)]
    grand_self = sum(row["self"] for row in rows) or 1.0
    for row in shown:
        lines.append(
            f"{row['name']:<28} {row['count']:>7} {row['total'] * 1e3:>10.2f} "
            f"{row['self'] * 1e3:>10.2f} {100.0 * row['self'] / grand_self:>6.1f}%"
        )
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span name(s)")
    return "\n".join(lines)


def fold_diff(old_rows: Sequence[dict], new_rows: Sequence[dict]) -> list[dict]:
    """Attribute a time regression to phases: diff two self-time folds.

    Takes two :func:`fold_self_time` results (old and new run of the
    same scenario) and returns one row per span name with the old/new
    self times, their delta, and the count delta.  Rows are sorted by
    descending absolute self-time delta, then name — the top row is
    the phase that moved the most.  Names present in only one fold
    diff against zero.
    """
    old = {row["name"]: row for row in old_rows}
    new = {row["name"]: row for row in new_rows}
    rows = []
    for name in sorted(old.keys() | new.keys()):
        old_self = old.get(name, {}).get("self", 0.0)
        new_self = new.get(name, {}).get("self", 0.0)
        rows.append(
            {
                "name": name,
                "old_self": old_self,
                "new_self": new_self,
                "delta_self": new_self - old_self,
                "old_count": old.get(name, {}).get("count", 0),
                "new_count": new.get(name, {}).get("count", 0),
            }
        )
    return sorted(rows, key=lambda row: (-abs(row["delta_self"]), row["name"]))


def render_fold_diff(rows: Sequence[dict], *, limit: int | None = None) -> str:
    """The phase-attribution table of :func:`fold_diff` rows."""
    shown = list(rows if limit is None else rows[:limit])
    header = (
        f"{'span':<28} {'old ms':>10} {'new ms':>10} {'delta ms':>10} "
        f"{'delta %':>8} {'count':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in shown:
        base = row["old_self"]
        percent = f"{100.0 * row['delta_self'] / base:>7.1f}%" if base > 0 else "     new"
        lines.append(
            f"{row['name']:<28} {row['old_self'] * 1e3:>10.2f} "
            f"{row['new_self'] * 1e3:>10.2f} {row['delta_self'] * 1e3:>+10.2f} "
            f"{percent} {row['old_count']:>5}->{row['new_count']:<5}"
        )
    if limit is not None and len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span name(s)")
    total = sum(row["delta_self"] for row in rows)
    lines.append(f"net self-time delta: {total * 1e3:+.2f} ms")
    return "\n".join(lines)


#: Main-track phase spans broken out per iteration by the summary table,
#: in column order.  Everything else inside the iteration lands in
#: "other" (self time of the iteration span itself).
_SUMMARY_PHASES = (
    "verify.step",
    "checker.check",
    "counterexample.derive",
    "test.execute",
    "monitor.replay",
    "learn.merge",
)


def render_trace_summary(tracer_or_spans) -> str:
    """A plain-text per-iteration time breakdown of one traced run.

    Accepts a tracer or an iterable of spans.  Each ``loop.iteration``
    span on the ``main`` track becomes one row; top-level phase spans it
    contains are attributed by start-time containment.  Milliseconds
    throughout.  Falls back to the self-time fold when the trace holds
    no iteration spans.
    """
    spans = list(tracer_or_spans.spans if hasattr(tracer_or_spans, "spans") else tracer_or_spans)
    main = sorted((s for s in spans if s.track == "main"), key=lambda s: s.start)
    iterations = [s for s in main if s.name == "loop.iteration"]
    if not iterations:
        return render_fold_table(fold_self_time(spans))
    columns = ["verify", "checker", "cex", "test", "replay", "learn"]
    header = f"{'it':>4} {'total':>9} " + " ".join(f"{c:>9}" for c in columns) + f" {'other':>9}"
    lines = [header, "-" * len(header)]
    for iteration in iterations:
        end = iteration.start + iteration.duration
        inside = [
            s
            for s in main
            if s is not iteration and iteration.start <= s.start < end
        ]
        phase_time = dict.fromkeys(_SUMMARY_PHASES, 0.0)
        accounted = 0.0
        for span in inside:
            if span.name in phase_time:
                phase_time[span.name] += span.duration
                accounted += span.duration
        other = max(iteration.duration - accounted, 0.0)
        index = iteration.args.get("index", "?")
        cells = " ".join(f"{phase_time[p] * 1e3:>9.2f}" for p in _SUMMARY_PHASES)
        lines.append(
            f"{index:>4} {iteration.duration * 1e3:>9.2f} {cells} {other * 1e3:>9.2f}"
        )
    return "\n".join(lines)
