"""Live progress events from the verify → test → learn loop.

The span tracer (:mod:`repro.obs.tracer`) answers "where did the time
go" after a run; this module answers "where is the loop *right now*"
while it runs.  Both synthesizers emit a small stream of typed
:class:`ProgressEvent` values — loop started, iteration begun, verify
phase finished with its ``product_*``/``checker_*`` counter deltas,
iteration finished, verdict reached, quarantine admissions, and test
retries/timeouts — through a minimal sink interface: any object with an
``emit(event)`` method.

Three sinks ship here:

* :class:`CallbackProgressSink` — forwards every event to a callable;
  this is the hook a long-running service streams progress from
  (ROADMAP item 1) without inventing a second event schema.
* :class:`JsonlProgressSink` — appends one deterministic, sorted-key
  JSON object per event to a file or stream.
* :class:`TtyProgressSink` — renders a single in-place status line for
  the CLI's ``--progress`` flag.

Event names and their payload fields are a stable, tested contract
exactly like the span names — see :data:`PROGRESS_EVENT_NAMES` and
``docs/observability.md``.  Payloads carry only deterministic values
(counts, names, indices, verdicts — never wall-clock timings), so a
JSONL progress log is bit-reproducible from the same run.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field

__all__ = [
    "PROGRESS_EVENT_NAMES",
    "ProgressEvent",
    "ProgressEmitter",
    "CallbackProgressSink",
    "JsonlProgressSink",
    "TtyProgressSink",
]

#: The stable progress-event vocabulary.  Every event the synthesizers
#: emit uses one of these names; ``tests/test_progress.py`` pins the
#: set, and renaming an event is an API break for downstream consumers
#: (the service hook, the flight recorder's blackbox dumps).
PROGRESS_EVENT_NAMES = frozenset(
    {
        "loop.started",
        "iteration.started",
        "phase.finished",
        "iteration.finished",
        "verdict.reached",
        "quarantine.admitted",
        "test.retry",
        "test.timeout",
        "test.inconclusive",
        "anomaly.recorded",
        # Out-of-process component lifecycle (repro.legacy.remote): a
        # host spawned, SIGKILL-ed (deadline/violation), respawned after
        # a crash, or caught speaking the wire protocol wrong.
        "component.spawn",
        "component.kill",
        "component.respawn",
        "component.violation",
    }
)

_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


@dataclass(frozen=True)
class ProgressEvent:
    """One typed progress notification.

    ``name`` is drawn from :data:`PROGRESS_EVENT_NAMES`; ``seq`` is the
    emitter's monotonically increasing sequence number (deterministic
    for a deterministic run); ``payload`` holds the event's fields —
    plain JSON-serializable scalars, lists, and strings only.
    """

    name: str
    seq: int
    payload: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The canonical wire form: ``{"event": name, "seq": n, ...payload}``."""
        return {"event": self.name, "seq": self.seq, **self.payload}

    def encode(self) -> str:
        """Deterministic sorted-key compact JSON of :meth:`as_dict`."""
        return _ENCODE(self.as_dict())


class ProgressEmitter:
    """Deterministic fan-out of loop events to every active consumer.

    Both synthesizers build one emitter from the configured progress
    sink and flight recorder; ``emit`` sequences events with a single
    monotone counter and forwards the same :class:`ProgressEvent` to
    each consumer.  With no active consumers (the default) the emitter
    is falsy and ``emit`` returns after one tuple check, so the
    uninstrumented loop pays essentially nothing.
    """

    __slots__ = ("_observers", "_seq")

    def __init__(self, *observers):
        self._observers = tuple(
            observer
            for observer in observers
            if observer is not None and getattr(observer, "enabled", True)
        )
        self._seq = 0

    def __bool__(self) -> bool:
        return bool(self._observers)

    def emit(self, name, /, **payload) -> None:
        if not self._observers:
            return
        event = ProgressEvent(name, self._seq, payload)
        self._seq += 1
        for observer in self._observers:
            observer.emit(event)


class CallbackProgressSink:
    """Forward every event to ``callback(event)``.

    The integration hook for embedding callers: a synthesis service
    registers one callback per session and fans events out to its
    clients.  Exceptions from the callback propagate — a broken
    consumer should fail loudly, not silently drop progress.
    """

    __slots__ = ("_callback",)

    def __init__(self, callback):
        if not callable(callback):
            raise TypeError(f"callback must be callable, got {type(callback).__name__}")
        self._callback = callback

    def emit(self, event: ProgressEvent) -> None:
        self._callback(event)


class JsonlProgressSink:
    """Append one JSON object per event to a path or text stream.

    Lines are sorted-key compact JSON (the same convention as the trace
    exporters), so two identical runs produce byte-identical logs.
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._stream = target
            self._owned = False
        else:
            self._stream = open(target, "w", encoding="utf-8")
            self._owned = True

    def emit(self, event: ProgressEvent) -> None:
        self._stream.write(event.encode() + "\n")

    def close(self) -> None:
        if self._owned:
            self._stream.close()
        else:
            self._stream.flush()


class TtyProgressSink:
    """Render a single in-place status line on a terminal.

    Each event refreshes one ``\\r``-rewritten line —
    ``iter 12 | verify ✓ | tests 34 | quarantine 2`` — and the final
    ``verdict.reached`` event prints a newline-terminated summary so
    the verdict survives in scrollback.  Used by ``--progress``.
    """

    def __init__(self, stream=None):
        self._stream = stream if stream is not None else sys.stderr
        self._iteration = 0
        self._tests = 0
        self._quarantine = 0
        self._phase = ""
        self._width = 0

    def _render(self, line: str, *, final: bool = False) -> None:
        pad = max(self._width - len(line), 0)
        self._stream.write("\r" + line + " " * pad)
        self._width = 0 if final else len(line)
        if final:
            self._stream.write("\n")
        self._stream.flush()

    def emit(self, event: ProgressEvent) -> None:
        payload = event.payload
        if event.name == "iteration.started":
            self._iteration = payload.get("iteration", self._iteration)
            self._phase = "verify"
        elif event.name == "phase.finished":
            self._phase = str(payload.get("phase", self._phase)) + " done"
        elif event.name == "iteration.finished":
            self._tests += payload.get("tests_executed", 0)
            self._quarantine = payload.get("quarantine_size", self._quarantine)
            self._phase = "learned +%d" % payload.get("knowledge_gained", 0)
        elif event.name == "quarantine.admitted":
            self._quarantine = payload.get("quarantine_size", self._quarantine + 1)
        elif event.name == "verdict.reached":
            self._render(
                "verdict %s after %d iteration(s), %d test(s)"
                % (payload.get("verdict", "?"), payload.get("iterations", 0), self._tests),
                final=True,
            )
            return
        elif event.name not in PROGRESS_EVENT_NAMES:
            return
        self._render(
            "iter %d | %s | tests %d | quarantine %d"
            % (self._iteration, self._phase or "starting", self._tests, self._quarantine)
        )

    def close(self) -> None:
        if self._width:
            self._stream.write("\n")
            self._width = 0
            self._stream.flush()
