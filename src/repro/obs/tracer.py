"""Hierarchical span tracing with a zero-overhead null default.

A :class:`Tracer` collects *spans* — named, timed intervals on named
*tracks* — from the verify → test → learn loop.  The API is designed so
instrumentation can stay in the hot paths permanently:

* ``with tracer.span("checker.check", kind="property"): ...`` times a
  block on the coordinator track (``"main"`` unless overridden);
* ``tracer.record(name, track=..., start=t0, duration=dt)`` publishes a
  measurement taken elsewhere — shard workers time themselves with
  :func:`time.perf_counter` and report on their own per-shard track;
* ``@tracer.wrap("learn.merge")`` decorates a function.

Hierarchy is positional: spans on the same track nest by interval
containment, which is exactly how Chrome trace viewers (and the
self-time fold of ``tools/trace_report.py``) reconstruct the call tree.

The default is :data:`NULL_TRACER`, whose ``span`` returns one shared
no-op context manager and whose ``metrics`` is the no-op registry — the
instrumented loop pays only the call itself (the benchmark guard in
``benchmarks/bench_incremental_loop.py`` pins this below 1% of loop
time).  ``REPRO_TRACE=/path/to/file`` activates a process-wide tracer
without touching call sites (``REPRO_TRACE_FORMAT`` selects ``jsonl``,
the streaming default, or ``chrome``, written at interpreter exit).
"""

from __future__ import annotations

import atexit
import functools
import os
import threading
import time
from dataclasses import dataclass, field

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "TRACE_ENV",
    "TRACE_FORMAT_ENV",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
]

#: Environment variable naming a trace output file.  When set (and no
#: explicit ``tracer=`` is given), every synthesis run in the process
#: traces into it — this is how CI runs the whole suite traced.
TRACE_ENV = "REPRO_TRACE"

#: Companion format knob for :data:`TRACE_ENV`: ``jsonl`` (default,
#: streamed) or ``chrome`` (one trace-event JSON written at exit).
TRACE_FORMAT_ENV = "REPRO_TRACE_FORMAT"


@dataclass(frozen=True, slots=True)
class Span:
    """One finished interval: what happened, where, when, for how long.

    ``start`` is in seconds relative to the tracer's epoch (its
    construction time); ``duration`` is in seconds.  ``args`` carry
    small deterministic annotations (iteration index, solve kind,
    domain size) — never wall-clock-derived values.
    """

    name: str
    track: str
    start: float
    duration: float
    args: dict = field(default_factory=dict)


class _SpanHandle:
    """The live context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_track", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, track: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._args = args

    def set(self, **args) -> None:
        """Attach annotations discovered while the span is open."""
        self._args.update(args)

    def __enter__(self) -> "_SpanHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer._emit(self._name, self._track, self._start, end - self._start, self._args)
        return False


class Tracer:
    """Collects spans and metrics for one (or many) synthesis runs.

    Parameters
    ----------
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` counters publish
        into; a fresh one by default.
    sink:
        Optional callable invoked with each finished :class:`Span`.
        With a sink the tracer *streams* and retains nothing — the mode
        the ``REPRO_TRACE`` JSONL tracer uses so a whole test suite can
        run traced without accumulating memory.  Sinks are invoked
        without the tracer's lock, so one shared across threads must
        synchronize internally (the ``REPRO_TRACE`` sink does).
        Without a sink, spans are kept on :attr:`spans` for the
        exporters.
    """

    enabled = True

    def __init__(self, *, metrics: MetricsRegistry | None = None, sink=None):
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._sink = sink
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every finished span, in completion order (empty when streaming)."""
        with self._lock:
            return tuple(self._spans)

    # ------------------------------------------------------------ recording

    def span(self, name: str, *, track: str = "main", **args) -> _SpanHandle:
        """A context manager timing a block as one span on ``track``."""
        return _SpanHandle(self, name, track, args)

    def record(
        self, name: str, *, track: str = "main", start: float, duration: float, **args
    ) -> None:
        """Publish an externally timed interval.

        ``start`` is an absolute :func:`time.perf_counter` value (the
        worker's own clock reading); it is rebased onto the tracer's
        epoch here.  This is the API shard workers use — they must not
        share the coordinator's span stack or lock while running.
        """
        self._emit(name, track, start, duration, args)

    def wrap(self, name: str, *, track: str = "main"):
        """Decorator form of :meth:`span`."""

        def decorate(function):
            @functools.wraps(function)
            def traced(*args, **kwargs):
                with self.span(name, track=track):
                    return function(*args, **kwargs)

            return traced

        return decorate

    def count(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``tracer.metrics.inc(name, amount)``."""
        self.metrics.inc(name, amount)

    def _emit(self, name: str, track: str, start: float, duration: float, args: dict) -> None:
        span = Span(name, track, start - self._epoch, duration, args)
        sink = self._sink
        if sink is not None:
            # Sinks serialize their own access (the REPRO_TRACE sink
            # holds a file lock) — taking the tracer lock here too would
            # double-lock the hottest path of the active tracer.
            sink(span)
            return
        with self._lock:
            self._spans.append(span)


class NullTracer:
    """The zero-overhead default: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) with a single shared
    null span keeps the per-call cost to one attribute lookup and one
    call — small enough to leave tracing calls in every hot path (the
    benchmark guard holds it below 1% of loop time).  ``enabled`` is
    ``False`` so bulk publication sites can skip entirely.
    """

    __slots__ = ()

    enabled = False
    metrics = NULL_METRICS
    spans: tuple[Span, ...] = ()

    def span(self, name: str, *, track: str = "main", **args) -> "_NullSpan":
        return _NULL_SPAN

    def record(
        self, name: str, *, track: str = "main", start: float = 0.0, duration: float = 0.0, **args
    ) -> None:
        pass

    def wrap(self, name: str, *, track: str = "main"):
        return lambda function: function

    def count(self, name: str, amount: int = 1) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def set(self, **args) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The process-wide no-op tracer every entry point defaults to.
NULL_TRACER = NullTracer()


# ------------------------------------------------------------- env activation

_ENV_TRACER: "tuple[tuple[str, str], Tracer] | None" = None


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """An explicit tracer, the ``REPRO_TRACE`` env tracer, or the null one.

    Mirrors ``resolve_parallelism``: call sites thread ``None`` through
    and resolution happens in one place.  The env tracer is process-wide
    and created once per ``(path, format)`` pair.
    """
    if tracer is not None:
        return tracer
    path = os.environ.get(TRACE_ENV, "").strip()
    if not path:
        return NULL_TRACER
    fmt = os.environ.get(TRACE_FORMAT_ENV, "").strip() or "jsonl"
    global _ENV_TRACER
    if _ENV_TRACER is not None and _ENV_TRACER[0] == (path, fmt):
        return _ENV_TRACER[1]
    env_tracer = _make_env_tracer(path, fmt)
    _ENV_TRACER = ((path, fmt), env_tracer)
    return env_tracer


def _make_env_tracer(path: str, fmt: str) -> Tracer:
    from .export import encode_event, metric_events, span_line, write_chrome_trace

    if fmt == "chrome":
        # Chrome trace-event JSON is one document: retain spans and
        # write the file when the process ends.
        tracer = Tracer()
        atexit.register(write_chrome_trace, tracer, path)
        return tracer
    if fmt != "jsonl":
        raise ValueError(f"{TRACE_FORMAT_ENV} must be 'jsonl' or 'chrome', got {fmt!r}")
    handle = open(path, "a", encoding="utf-8")
    lock = threading.Lock()
    pending = [0]

    def sink(span: Span) -> None:
        # A flush per span would syscall in the loop's hottest paths;
        # flushing every few hundred keeps a crashed run's prefix fresh
        # at a fraction of the cost (the OS buffer holds the rest).
        line = span_line(span)
        with lock:
            handle.write(line + "\n")
            pending[0] += 1
            if pending[0] >= 256:
                pending[0] = 0
                handle.flush()

    tracer = Tracer(sink=sink)

    def finish() -> None:
        with lock:
            for event in metric_events(tracer.metrics):
                handle.write(encode_event(event) + "\n")
            handle.flush()
            handle.close()

    atexit.register(finish)
    return tracer
