"""Flight recorder: a bounded event ring plus anomaly blackbox dumps.

Counters tell you *that* the loop degraded; they cannot tell you *how
it got there*.  The flight recorder keeps a bounded ring buffer of the
most recent loop events — iteration verdicts, verify-phase counter
deltas, fault/retry/quarantine admissions — and, when an anomaly
occurs (an inconclusive escalation, a test deadline expiry, a
quarantine admission, a ``SynthesisError``/``BUDGET_EXCEEDED``
degradation, or a conformance-campaign disagreement), dumps a
self-contained ``blackbox.json``: the last-N events, the full
:class:`~repro.synthesis.settings.SynthesisSettings` fingerprint, the
``REPRO_*`` environment plus ``PYTHONHASHSEED``, the fault seed, and
every iteration record so far.  The dump is everything needed to
replay the failure bit-for-bit from its seed.

Like the tracer, the default is the zero-overhead
:data:`NULL_FLIGHT_RECORDER` and activation follows the same three
routes: ``SynthesisSettings(flight_recorder=FlightRecorder(dir))``,
the CLI's ``--blackbox DIR``, or the :data:`BLACKBOX_ENV` environment
variable (pointing at the dump directory) picked up by
:func:`resolve_flight_recorder`.

Determinism: ring entries carry only deterministic values (no
wall-clock), dumps are sorted-key compact JSON, and the top-level
``payload_digest`` is the SHA-256 of the dump minus its ``env`` block
— for a deterministic scenario it is bit-identical across
``PYTHONHASHSEED`` values, so two blackboxes from the same seed can be
diffed by digest alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import deque
from pathlib import Path

from .progress import ProgressEvent

__all__ = [
    "BLACKBOX_ENV",
    "BLACKBOX_SCHEMA",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "resolve_flight_recorder",
]

#: Environment variable naming the blackbox dump directory; when set,
#: :func:`resolve_flight_recorder` hands every loop an active recorder
#: without touching any call site (the chaos CI legs set this).
BLACKBOX_ENV = "REPRO_BLACKBOX"

#: Schema tag written into every dump; bump on breaking layout changes.
BLACKBOX_SCHEMA = "repro.blackbox/1"

_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


def _jsonable(value):
    """Map an arbitrary value onto deterministic JSON-safe structure.

    Scalars pass through, mappings/sequences recurse (sets are sorted
    by repr for stability), frozen dataclasses flatten field by field,
    and anything else falls back to its ``repr`` — which the loop
    already keeps deterministic (quarantine keys are run reprs).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_jsonable(item) for item in value), key=repr)
    return repr(value)


def settings_fingerprint(settings) -> dict | None:
    """The comparable fields of a settings dataclass, JSON-safe.

    Non-compare fields (tracer, flight recorder, progress sink) are
    observation plumbing, excluded exactly as they are from equality.
    """
    if settings is None:
        return None
    return {
        f.name: _jsonable(getattr(settings, f.name))
        for f in dataclasses.fields(settings)
        if f.compare
    }


def environment_fingerprint() -> dict[str, str]:
    """Every ``REPRO_*`` variable plus ``PYTHONHASHSEED``, sorted."""
    out = {
        key: os.environ[key]
        for key in sorted(os.environ)
        if key.startswith("REPRO_")
    }
    if "PYTHONHASHSEED" in os.environ:
        out["PYTHONHASHSEED"] = os.environ["PYTHONHASHSEED"]
    return out


def _record_dict(record) -> dict:
    """One iteration record flattened for the dump.

    Shared between :class:`~repro.synthesis.iterate.IterationRecord`
    and the multi-legacy twin — the verdict-ish fields are read with
    ``getattr`` defaults and the counters go through the canonical
    :func:`repro.obs.metrics.record_counters` ordering.
    """
    from .metrics import record_counters

    cex = getattr(record, "counterexample", None)
    return {
        "index": record.index,
        "property_holds": record.property_holds,
        "deadlock_free": record.deadlock_free,
        "violated": getattr(record, "violated", None),
        "fast_conflict": getattr(record, "fast_conflict", False),
        "knowledge_gained": getattr(record, "knowledge_gained", 0),
        "counterexample": None if cex is None else repr(cex),
        **{name: _jsonable(value) for name, value in record_counters(record).items()},
    }


class NullFlightRecorder:
    """The do-nothing default: every hook is a constant-time no-op.

    Mirrors :class:`repro.obs.tracer.NullTracer` — loops are
    instrumented unconditionally and pay only an attribute check when
    no recorder is configured (pinned ≤1% of loop time by
    ``benchmarks/bench_incremental_loop.py``).
    """

    __slots__ = ()
    enabled = False

    def bind(self, *, settings=None, records=None) -> None:
        pass

    def emit(self, event) -> None:
        pass

    def record(self, name, /, **payload) -> None:
        pass

    def anomaly(self, reason, /, **context) -> None:
        return None

    def dump(self, reason, /, **context) -> None:
        return None


#: Shared do-nothing recorder (stateless, safe to share globally).
NULL_FLIGHT_RECORDER = NullFlightRecorder()


class FlightRecorder:
    """Bounded event ring with deterministic anomaly dumps.

    Parameters
    ----------
    directory:
        Where ``blackbox.json`` is written on anomaly; ``None`` keeps
        the ring in memory only (``anomaly()`` still records the event
        and ``snapshot()`` still works — useful for embedding callers
        that ship the payload elsewhere).
    capacity:
        Ring size: only the most recent ``capacity`` events survive
        into a dump.
    label:
        Distinguishes dump files when several loops share a directory
        (the campaign labels per scenario seed):
        ``blackbox.json`` without a label, ``blackbox-<label>.json``
        with one.

    The recorder doubles as a progress sink (it has ``emit``), so one
    instance can be passed as both ``flight_recorder=`` and a progress
    consumer without double plumbing.  Every anomaly rewrites the same
    dump file — the last dump holds the longest event history, and for
    a deterministic scenario the final file is bit-stable.
    """

    enabled = True

    def __init__(self, directory=None, *, capacity: int = 256, label: str | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.directory = Path(directory) if directory is not None else None
        self.capacity = capacity
        self.label = label
        self._events: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._settings = None
        self._records = None
        self.dumps = 0
        self.last_path: Path | None = None

    # ------------------------------------------------------------- recording

    def bind(self, *, settings=None, records=None) -> None:
        """Attach loop context included in every later dump.

        ``records`` is a zero-argument callable returning the iteration
        records so far (the loop's live list), read only at dump time.
        """
        if settings is not None:
            self._settings = settings
        if records is not None:
            self._records = records

    def emit(self, event: ProgressEvent) -> None:
        """Progress-sink entry point: absorb a typed event into the ring."""
        self.record(event.name, **event.payload)

    def record(self, name, /, **payload) -> None:
        """Append one event; the ring drops the oldest beyond capacity."""
        self._events.append({"seq": self._seq, "event": name, **payload})
        self._seq += 1

    @property
    def events(self) -> tuple[dict, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # --------------------------------------------------------------- dumping

    def anomaly(self, reason, /, **context) -> Path | None:
        """Record an anomaly event and dump the blackbox.

        Returns the dump path, or ``None`` without a directory.
        """
        merged = dict(context)
        merged["reason"] = reason
        self.record("anomaly.recorded", **merged)
        return self.dump(reason, **context)

    def snapshot(self, reason, /, **context) -> dict:
        """The dump payload as a dict (what :meth:`dump` serializes)."""
        records = self._records() if self._records is not None else ()
        payload = {
            "schema": BLACKBOX_SCHEMA,
            "reason": reason,
            "label": self.label,
            "capacity": self.capacity,
            "events_recorded": self._seq,
            "events": list(self._events),
            "settings": settings_fingerprint(self._settings),
            "fault_seed": self._fault_seed(),
            "records": [_record_dict(record) for record in records],
            "context": {key: _jsonable(value) for key, value in context.items()},
            "env": environment_fingerprint(),
        }
        digest_basis = {key: value for key, value in payload.items() if key != "env"}
        payload["payload_digest"] = hashlib.sha256(
            _ENCODE(digest_basis).encode("utf-8")
        ).hexdigest()
        return payload

    def dump(self, reason, /, **context) -> Path | None:
        """Write ``blackbox.json`` (sorted keys, compact) and return its path."""
        payload = self.snapshot(reason, **context)
        self.dumps += 1
        if self.directory is None:
            return None
        self.directory.mkdir(parents=True, exist_ok=True)
        name = "blackbox.json" if self.label is None else f"blackbox-{self.label}.json"
        path = self.directory / name
        path.write_text(_ENCODE(payload) + "\n", encoding="utf-8")
        self.last_path = path
        return path

    def _fault_seed(self) -> int | None:
        settings = self._settings
        if settings is not None:
            resolver = getattr(settings, "resolved_fault_profile", None)
            profile = resolver() if resolver is not None else None
            if profile is not None:
                return profile.seed
        from ..testing.faults import FAULT_SEED_ENV

        raw = os.environ.get(FAULT_SEED_ENV, "").strip()
        if raw:
            try:
                return int(raw)
            except ValueError:
                return None
        return None


#: Process-wide recorder for the environment activation route, keyed by
#: the directory so tests that rewrite :data:`BLACKBOX_ENV` get fresh
#: recorders (mirrors the tracer's ``_ENV_TRACER`` cache).
_ENV_RECORDER: tuple[str, FlightRecorder] | None = None


def resolve_flight_recorder(flight=None):
    """Pick the active flight recorder for a loop.

    An explicit recorder wins; otherwise :data:`BLACKBOX_ENV` names a
    dump directory served by a process-wide shared recorder; otherwise
    the zero-overhead :data:`NULL_FLIGHT_RECORDER`.
    """
    if flight is not None:
        return flight
    target = os.environ.get(BLACKBOX_ENV, "").strip()
    if not target:
        return NULL_FLIGHT_RECORDER
    global _ENV_RECORDER
    if _ENV_RECORDER is not None and _ENV_RECORDER[0] == target:
        return _ENV_RECORDER[1]
    recorder = FlightRecorder(target)
    _ENV_RECORDER = (target, recorder)
    return recorder
