"""One consolidated knob surface for the synthesis loop.

The verify → test → learn loop grew its tuning knobs one PR at a time:
``max_iterations`` and ``counterexamples_per_iteration`` on the
synthesizers, ``incremental`` with the warm engine, ``parallelism``
with the sharded product, ``checker_parallelism`` with the sharded
checker fixpoint.  :class:`SynthesisSettings` gathers them into one
frozen, validated value that :func:`repro.integration.integrate`,
:class:`~repro.synthesis.iterate.IntegrationSynthesizer`, and
:class:`~repro.synthesis.multi.MultiLegacySynthesizer` all accept as
``settings=``; the scattered keyword arguments still work but emit
:class:`DeprecationWarning` and forward here.

None of the knobs changes *what* is synthesized — verdicts,
counterexamples, and learned models are bit-identical for every
combination; they only trade time for memory or parallel workers (see
``docs/performance.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

from ..automata.sharding import (
    check_strategy,
    resolve_checker_parallelism,
    resolve_parallelism,
    resolve_product_strategy,
)
from typing import TYPE_CHECKING

from ..errors import CompositionError, SynthesisError
from ..testing.faults import FaultProfile
from ..testing.robust import RetryPolicy

if TYPE_CHECKING:  # runtime imports stay lazy so the component host
    # entry point (``python -m repro.legacy.remote``) is not imported
    # twice through the ``repro`` package graph.
    from ..legacy.remote import RemotePolicy

__all__ = ["SynthesisSettings"]


class _Unset:
    """Sentinel distinguishing "legacy keyword not passed" from an
    explicit ``None`` (which is meaningful for the parallelism knobs).
    The stable repr keeps generated API docs address-free."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<unset>"


_UNSET = _Unset()


@dataclass(frozen=True)
class SynthesisSettings:
    """Loop-tuning knobs shared by every synthesis entry point.

    Parameters
    ----------
    max_iterations:
        Safety budget for the loop; exceeding it yields a
        ``BUDGET_EXCEEDED`` verdict.  (§4.4 guarantees termination, so
        this is a guard rail, not a semantic limit.)
        :class:`~repro.synthesis.multi.MultiLegacySynthesizer` defaults
        to 1000 instead of 500 — pass an explicit value to override.
    counterexamples_per_iteration:
        Derive up to this many counterexamples from each failed check
        and test/learn all of them before re-verifying (the batching
        optimisation proposed in the paper's conclusion).
    incremental:
        Carry closures, the composed product, and the checker's
        fixpoints across iterations (default), rebuilding only what a
        learning step invalidated.
    parallelism:
        Shard count for the product re-exploration (and large closure
        rebuilds).  ``None`` defers to ``REPRO_PARALLELISM``, falling
        back to 1.
    checker_parallelism:
        Shard count for the model checker's fixpoint solves.  ``None``
        defers to ``REPRO_CHECKER_PARALLELISM`` and then follows
        ``parallelism``, so setting one knob shards the whole pipeline.
    dense:
        Run the checker's fixpoints over the dense integer-indexed core
        (interned ids, CSR adjacency, bitset images — see
        :mod:`repro.automata.interning`).  ``None`` defers to
        ``REPRO_DENSE`` when set and otherwise lets every checker pick
        by product size (dense from
        :data:`~repro.automata.interning.DENSE_STATE_FLOOR` states up);
        ``False`` forces the legacy dict/set solvers (the differential
        oracle), ``True`` forces the dense core everywhere.
    dense_product:
        Run the product BFS in id space (interned joint states, flat
        ``array('I')`` shard frontiers, ``id % K`` ownership).  Same
        tri-state convention as ``dense``, deferring to
        ``REPRO_DENSE_PRODUCT`` and then to the size heuristic against
        the *estimated* joint bound; ``False`` forces the legacy
        dict-cache exploration with crc32-of-repr ownership.
    product_strategy:
        Force one execution strategy (``"sequential"``, ``"thread"``,
        ``"process"``) for the product shard workers.  ``None`` defers
        to ``REPRO_PRODUCT_STRATEGY`` and then to the automatic
        workload-based selection
        (:func:`repro.automata.sharding.select_strategy`); takes effect
        only when ``parallelism > 1``.
    retry_policy:
        The :class:`repro.testing.robust.RetryPolicy` supervising every
        test execution: retry budget, backoff, per-step/per-test
        deadlines, recording validation.  ``None`` (the default) defers
        to ``REPRO_TEST_RETRIES`` and falls back to the default policy
        — whose fault-free behavior is identical to the raw executor.
    fault_profile:
        A :class:`repro.testing.faults.FaultProfile` to inject into the
        component under test (chaos testing of the loop itself).
        ``None`` defers to ``REPRO_FAULT_SEED`` (which selects the
        ``mild`` profile) and falls back to no injection.  With the
        mild profile and the default retry budget, verdicts and learned
        models stay bit-identical to the fault-free run — faults only
        cost retries (see ``docs/robustness.md``).
    remote:
        Run the component under test *out of process* behind the
        supervised subprocess adapter (:mod:`repro.legacy.remote`).  A
        :class:`repro.legacy.RemotePolicy` sets the per-step deadline,
        spawn timeout, and pool size; ``True`` selects the default
        policy; ``False`` forces in-process execution; ``None`` (the
        default) defers to the ``REPRO_REMOTE`` environment variable.
        Fault-free verdicts and iteration records are bit-identical to
        in-process execution — the adapter only changes *where* the
        component runs and what a real crash or hang can do (see
        ``docs/remote.md``).  When combined with ``fault_profile``, the
        faults are injected *inside* the host process.
    tracer:
        A :class:`repro.obs.Tracer` receiving spans and metrics from the
        run.  ``None`` (the default) defers to the ``REPRO_TRACE``
        environment variable and falls back to the zero-overhead
        :data:`repro.obs.NULL_TRACER`.  Excluded from equality/repr —
        tracing observes a run, it never changes one.
    flight_recorder:
        A :class:`repro.obs.FlightRecorder` keeping a bounded ring of
        recent loop events and dumping a self-contained
        ``blackbox.json`` on anomalies (inconclusive escalations, test
        deadline expiries, quarantine admissions, degraded verdicts).
        ``None`` (the default) defers to the ``REPRO_BLACKBOX``
        environment variable and falls back to the zero-overhead
        :data:`repro.obs.NULL_FLIGHT_RECORDER`.  Excluded from
        equality/repr like the tracer.
    progress:
        A progress sink — any object with an ``emit(event)`` method
        (see :mod:`repro.obs.progress`) — receiving the loop's typed
        live :class:`~repro.obs.ProgressEvent` stream.  ``None`` (the
        default) emits nothing.  Excluded from equality/repr like the
        tracer.
    """

    max_iterations: int | None = None
    counterexamples_per_iteration: int = 1
    incremental: bool = True
    parallelism: int | None = None
    checker_parallelism: int | None = None
    dense: bool | None = None
    dense_product: bool | None = None
    product_strategy: str | None = None
    retry_policy: RetryPolicy | None = None
    fault_profile: FaultProfile | None = None
    remote: RemotePolicy | bool | None = None
    tracer: object | None = field(default=None, compare=False, repr=False)
    flight_recorder: object | None = field(default=None, compare=False, repr=False)
    progress: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_iterations is not None and (
            not isinstance(self.max_iterations, int)
            or isinstance(self.max_iterations, bool)
            or self.max_iterations < 1
        ):
            raise SynthesisError(
                f"max_iterations must be a positive integer, got {self.max_iterations!r}"
            )
        if (
            not isinstance(self.counterexamples_per_iteration, int)
            or isinstance(self.counterexamples_per_iteration, bool)
            or self.counterexamples_per_iteration < 1
        ):
            raise SynthesisError("counterexamples_per_iteration must be positive")
        if self.parallelism is not None:
            resolve_parallelism(self.parallelism)
        if self.checker_parallelism is not None:
            resolve_checker_parallelism(self.checker_parallelism)
        if self.dense is not None and not isinstance(self.dense, bool):
            raise SynthesisError(
                f"dense must be a bool or None, got {self.dense!r}"
            )
        if self.dense_product is not None and not isinstance(self.dense_product, bool):
            raise SynthesisError(
                f"dense_product must be a bool or None, got {self.dense_product!r}"
            )
        if self.product_strategy is not None:
            try:
                check_strategy(self.product_strategy)
            except CompositionError as error:
                raise SynthesisError(str(error)) from None
        if self.retry_policy is not None and not isinstance(self.retry_policy, RetryPolicy):
            raise SynthesisError(
                f"retry_policy must be a RetryPolicy, got {type(self.retry_policy).__name__}"
            )
        if self.fault_profile is not None and not isinstance(self.fault_profile, FaultProfile):
            raise SynthesisError(
                f"fault_profile must be a FaultProfile, got {type(self.fault_profile).__name__}"
            )
        if self.remote is not None and not isinstance(self.remote, bool):
            from ..legacy.remote import RemotePolicy

            if not isinstance(self.remote, RemotePolicy):
                raise SynthesisError(
                    f"remote must be a RemotePolicy, a bool, or None, got "
                    f"{type(self.remote).__name__}"
                )
        if self.tracer is not None and not (
            hasattr(self.tracer, "span") and hasattr(self.tracer, "metrics")
        ):
            raise SynthesisError(
                f"tracer must provide span() and metrics (see repro.obs.Tracer), "
                f"got {type(self.tracer).__name__}"
            )
        if self.flight_recorder is not None and not (
            hasattr(self.flight_recorder, "record")
            and hasattr(self.flight_recorder, "anomaly")
        ):
            raise SynthesisError(
                f"flight_recorder must provide record() and anomaly() (see "
                f"repro.obs.FlightRecorder), got {type(self.flight_recorder).__name__}"
            )
        if self.progress is not None and not hasattr(self.progress, "emit"):
            raise SynthesisError(
                f"progress must provide emit(event) (see repro.obs.progress), "
                f"got {type(self.progress).__name__}"
            )

    # ------------------------------------------------------------ resolution

    def iterations_or(self, default: int) -> int:
        """``max_iterations`` with the entry point's own default."""
        return default if self.max_iterations is None else self.max_iterations

    def resolved_parallelism(self) -> int:
        """The product shard count with environment fallback applied."""
        return resolve_parallelism(self.parallelism)

    def resolved_checker_parallelism(self) -> int:
        """The checker shard count: explicit, env, or the product's."""
        return resolve_checker_parallelism(
            self.checker_parallelism, fallback=self.resolved_parallelism()
        )

    def resolved_dense(self, state_count: int | None = None) -> bool:
        """The dense-core toggle with ``REPRO_DENSE`` fallback applied.

        Without a ``state_count`` the answer for auto (``dense=None``,
        no environment override) is the dense default; pass the product
        size to get the per-checker size heuristic.
        """
        from ..automata.interning import resolve_dense

        return resolve_dense(self.dense, state_count)

    def resolved_dense_product(self, state_count: int | None = None) -> bool:
        """The dense product-BFS toggle, ``REPRO_DENSE_PRODUCT`` applied.

        Without a ``state_count`` the answer for auto
        (``dense_product=None``, no environment override) is the dense
        default; pass the estimated joint bound (the product of
        component sizes) to get the per-update size heuristic the
        engine itself applies.
        """
        from ..automata.interning import resolve_dense_product

        return resolve_dense_product(self.dense_product, state_count)

    def resolved_product_strategy(self) -> str | None:
        """The forced product strategy: explicit, env, or ``None`` (auto)."""
        return resolve_product_strategy(self.product_strategy)

    def resolved_retry_policy(self) -> RetryPolicy:
        """The retry policy with environment fallback applied."""
        return self.retry_policy if self.retry_policy is not None else RetryPolicy.from_env()

    def resolved_fault_profile(self) -> "FaultProfile | None":
        """The fault profile: explicit, ``REPRO_FAULT_SEED``, or none."""
        return self.fault_profile if self.fault_profile is not None else FaultProfile.from_env()

    def resolved_remote(self) -> "RemotePolicy | None":
        """The remote policy: explicit, ``REPRO_REMOTE``, or in-process."""
        from ..legacy.remote import resolve_remote

        return resolve_remote(self.remote)

    def resolved_flight_recorder(self):
        """The flight recorder: explicit, ``REPRO_BLACKBOX``, or the null."""
        from ..obs.flight import resolve_flight_recorder

        return resolve_flight_recorder(self.flight_recorder)


def merge_legacy_settings(
    settings: "SynthesisSettings | None",
    owner: str,
    *,
    stacklevel: int = 3,
    **overrides: object,
) -> SynthesisSettings:
    """Fold deprecated keyword arguments into a :class:`SynthesisSettings`.

    Every override that is not the ``_UNSET`` sentinel emits a
    :class:`DeprecationWarning` naming the replacement and is applied on
    top of ``settings`` (or the defaults).  Shared by ``integrate()``
    and both synthesizers so the shim behaves identically everywhere.

    ``stacklevel`` must make the warning point at the *caller of the
    deprecated API*, not at this helper or its caller: the default of 3
    fits the direct ``caller → __init__/integrate() → here`` shape;
    wrappers that add a frame pass a larger value.  Pinned by the
    location assertions in ``tests/test_settings.py``.
    """
    base = settings if settings is not None else SynthesisSettings()
    updates = {name: value for name, value in overrides.items() if value is not _UNSET}
    if not updates:
        return base
    names = ", ".join(sorted(updates))
    warnings.warn(
        f"passing {names} to {owner} directly is deprecated and will be "
        f"removed in repro 2.0; use settings=SynthesisSettings(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return replace(base, **updates)  # type: ignore[arg-type]
