"""Initial behavior synthesis (§3 of the paper).

From the structural interface description alone, build the trivial
incomplete automaton ``M_l^0 = ({s₀}, I, O, ∅, ∅, {s₀})`` — just the
known initial state, no transitions, no refusals (Figure 4(a)) — and
its chaotic closure ``M_a^0 = chaos(M_l^0)`` (Figure 4(b)), which by
Lemma 4 is a safe abstraction of the legacy component:
``M_r ⊑ M_a^0``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..automata.automaton import Automaton, State
from ..automata.chaos import chaotic_closure
from ..automata.incomplete import IncompleteAutomaton
from ..automata.interaction import InteractionUniverse
from ..legacy.interface import InterfaceDescription

__all__ = ["StateLabeler", "initial_model", "initial_abstraction"]

#: Maps an observed legacy state identifier to atomic propositions (so
#: learned states participate in pattern constraints, e.g. a monitored
#: state ``"convoy"`` becomes the proposition ``rearRole.convoy``).
StateLabeler = Callable[[State], Iterable[str]]


def _no_labels(_state: State) -> Iterable[str]:
    return ()


def initial_model(
    interface: InterfaceDescription, *, labeler: StateLabeler | None = None
) -> IncompleteAutomaton:
    """``M_l^0``: the trivial incomplete automaton of §3 / Figure 4(a)."""
    labeler = labeler if labeler is not None else _no_labels
    return IncompleteAutomaton(
        states=[interface.initial_state],
        inputs=interface.inputs,
        outputs=interface.outputs,
        transitions=(),
        refusals=(),
        initial=[interface.initial_state],
        labels={interface.initial_state: frozenset(labeler(interface.initial_state))},
        name=f"M_l^0({interface.name})",
    )


def initial_abstraction(
    interface: InterfaceDescription,
    universe: InteractionUniverse | None = None,
    *,
    labeler: StateLabeler | None = None,
    deterministic_implementation: bool = True,
) -> Automaton:
    """``M_a^0 = chaos(M_l^0)``: the first safe abstraction (Figure 4(b))."""
    if universe is None:
        universe = interface.universe()
    model = initial_model(interface, labeler=labeler)
    return chaotic_closure(
        model,
        universe,
        deterministic_implementation=deterministic_implementation,
        name=f"M_a^0({interface.name})",
    )
