"""Iterative behavior synthesis: the paper's core loop (§4, Figure 2).

Each iteration performs the three steps of the scheme:

1. **Verify** (§4.1): model-check ``M_a^c ∥ chaos(M_l^i) ⊨ φ_weak ∧ ¬δ``
   where ``φ_weak`` is the §2.7 chaos weakening of the required
   property.  Success proves ``M_r^c ∥ M_r ⊨ φ`` (Lemma 5) — done.
2. **Test** (§4.2): otherwise the counterexample, projected onto the
   legacy component, is executed against the real component.  A
   counterexample whose legacy projection never visits the chaotic
   states is a *conflict in the synthesized part* and proves a real
   integration error without any test ("fast conflict detection",
   Listing 1.4).  A confirmed test of a chaos-visiting property
   counterexample is *not* yet proof (§4.2: such a run "is not really a
   possible run of ``M_r^c ∥ M_r``" because the concrete system has no
   chaos states) — it is learning material.  Deadlock counterexamples
   are confirmed by *probing*: after driving the component down the
   prefix, every interaction the context offers in the deadlocked
   configuration is attempted; only if none is served is the deadlock
   real.
3. **Learn** (§4.3): observed behavior — reactions, divergences,
   refusals — is merged into ``M_l^{i+1}`` via Definitions 11/12 (plus
   the deterministic refusal extension), and the loop repeats.

Termination (§4.4): every non-final iteration strictly increases
``|T| + |T̄|``, which is bounded for a finite deterministic component,
so the loop always ends in ``PROVEN`` or ``REAL_VIOLATION`` (the
``max_iterations`` budget is a safety net, not a semantic limit).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from enum import Enum

from ..automata.automaton import Automaton, State
from ..automata.chaos import chaotic_closure, is_chaos_state
from ..automata.composition import Semantics, compose
from ..automata.incomplete import IncompleteAutomaton
from ..automata.incremental import IncrementalVerifier
from ..automata.interaction import Interaction, InteractionUniverse
from ..automata.runs import Run
from ..automata.sharding import get_pool
from ..errors import (
    FaultInjectionError,
    LearningError,
    RemoteComponentError,
    SynthesisError,
    TestTimeoutError,
)
from ..legacy.component import LegacyComponent
from ..legacy.interface import InterfaceDescription, interface_of
from ..logic.checker import ModelChecker
from ..logic.compositional import assert_compositional, weaken_for_chaos
from ..logic.counterexample import counterexample, counterexamples
from ..logic.formulas import AF, AU, DEADLOCK_FREE, Deadlock, Formula
from ..obs.metrics import publish_record
from ..obs.progress import ProgressEmitter
from ..obs.tracer import resolve_tracer
from ..testing.executor import TestExecution, TestVerdict
from ..testing.faults import FaultyComponent
from ..testing.replay import ReplayResult, replay
from ..testing.robust import Quarantine, RobustExecution, RobustExecutor
from ..testing.testcase import TestCase, TestStep, test_case_from_counterexample
from .initial import StateLabeler, initial_model
from .learning import RefusalMode, learn_blocked, learn_regular, refuse
from .settings import SynthesisSettings, _UNSET, merge_legacy_settings

__all__ = [
    "Verdict",
    "IterationRecord",
    "SynthesisResult",
    "IntegrationSynthesizer",
    "CounterexampleStrategy",
    "SynthesisSettings",
]

#: Default iteration budget of :class:`IntegrationSynthesizer`.
DEFAULT_MAX_ITERATIONS = 500

#: Hook for custom counterexample selection (the paper's conclusion notes
#: that counterexample strategies are a tuning point).  Receives the
#: composed automaton, the violated formula, and a ready checker; must
#: return a violating run of the composition.
CounterexampleStrategy = Callable[[Automaton, Formula, ModelChecker], Run]


def _warn_renamed_counter(old: str, new: str, record: str = "IterationRecord") -> None:
    import warnings

    warnings.warn(
        f"{record}.{old} is deprecated and will be removed in repro 2.0; "
        f"read {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Verdict(Enum):
    """How a synthesis run ended."""

    PROVEN = "proven"
    REAL_VIOLATION = "real-violation"
    BUDGET_EXCEEDED = "budget-exceeded"


@dataclass(frozen=True)
class IterationRecord:
    """Everything observed during one iteration of the loop."""

    index: int
    model_states: int
    model_transitions: int
    model_refusals: int
    closure_states: int
    closure_transitions: int
    composed_states: int
    property_holds: bool
    deadlock_free: bool
    violated: str | None  # "property" | "deadlock" | None
    counterexample: Run | None
    fast_conflict: bool
    test_verdict: TestVerdict | None
    tests_executed: int
    replays_executed: int
    observed_run: Run | None
    knowledge_gained: int
    # Incremental-engine counters (all zero when ``incremental=False``).
    closure_groups_reused: int = 0
    closure_groups_rebuilt: int = 0
    product_hits: int = 0
    product_misses: int = 0
    dirty_states: int = 0
    affected_states: int = 0
    #: Worklist operations the checker spent on this iteration's fixpoints
    #: (populated on both paths; warm starts should show less work).
    checker_fixpoint_work: int = 0
    # Sharded-exploration counters, split into the ``product_*`` and
    # ``checker_*`` namespaces (matching ``CheckerStats.as_dict()``).
    # Product counters are zero/empty when no product ran or when
    # ``incremental=False``.  Per-shard breakdowns depend on the shard
    # count, but their sums are scheduling-independent:
    # ``sum(product_shard_states_explored) == product_hits + product_misses``
    # and ``sum(checker_shard_fixpoint_work) == checker_fixpoint_work``.
    product_shards: int = 0
    product_shard_states_explored: tuple[int, ...] = ()
    product_shard_handoffs: int = 0
    product_shard_merge_conflicts: int = 0
    # Dense product-BFS sizes (zero on the legacy dict-cache path).
    # K-independent by construction: the interner's content is the
    # reachable set plus previously interned states, regardless of how
    # the exploration was sharded or scheduled.
    product_dense_states: int = 0
    product_bitset_words: int = 0
    checker_shards: int = 1
    checker_shard_fixpoint_work: tuple[int, ...] = ()
    checker_shard_handoffs: int = 0
    # Robust-execution counters (all zero on a fault-free run with the
    # default retry policy).  ``tests_executed`` counts live attempts,
    # so ``tests_executed - test_retries`` is the number of supervised
    # executions this iteration.
    test_retries: int = 0
    test_timeouts: int = 0
    tests_inconclusive: int = 0
    quarantine_size: int = 0

    # Pre-redesign names of the product shard counters, kept as
    # deprecated read-only views.
    @property
    def shard_states_explored(self) -> tuple[int, ...]:
        _warn_renamed_counter("shard_states_explored", "product_shard_states_explored")
        return self.product_shard_states_explored

    @property
    def shard_handoffs(self) -> int:
        _warn_renamed_counter("shard_handoffs", "product_shard_handoffs")
        return self.product_shard_handoffs

    @property
    def shard_merge_conflicts(self) -> int:
        _warn_renamed_counter("shard_merge_conflicts", "product_shard_merge_conflicts")
        return self.product_shard_merge_conflicts


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a full synthesis run."""

    verdict: Verdict
    property: Formula
    iterations: tuple[IterationRecord, ...]
    final_model: IncompleteAutomaton
    final_closure: Automaton | None
    violation_witness: Run | None
    violation_kind: str | None
    #: Counterexamples whose tests never completed fault-free within the
    #: retry budget (see :mod:`repro.testing.robust`).  Empty on every
    #: fault-free run.  They were *not* merged into the model and were
    #: *not* confirmed as real errors (Lemma 6 requires a validated
    #: fault-free run) — they are reported here instead of being
    #: silently dropped.
    quarantined: tuple[Run, ...] = ()

    @property
    def proven(self) -> bool:
        return self.verdict is Verdict.PROVEN

    def require_proven(self) -> "SynthesisResult":
        """Raise unless the verdict is ``PROVEN`` (for CI-style use).

        ``BudgetExceededError`` for an exhausted iteration budget,
        ``SynthesisError`` carrying the violation kind otherwise;
        returns ``self`` so it chains: ``synthesizer.run().require_proven()``.
        """
        from ..errors import BudgetExceededError

        if self.verdict is Verdict.PROVEN:
            return self
        if self.verdict is Verdict.BUDGET_EXCEEDED:
            raise BudgetExceededError(
                f"synthesis exhausted its iteration budget after "
                f"{self.iteration_count} iterations"
            )
        raise SynthesisError(
            f"integration violates the requirements ({self.violation_kind}); "
            f"witness: {self.violation_witness}"
        )

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def total_tests(self) -> int:
        return sum(record.tests_executed for record in self.iterations)

    @property
    def total_replays(self) -> int:
        return sum(record.replays_executed for record in self.iterations)

    @property
    def total_test_retries(self) -> int:
        return sum(record.test_retries for record in self.iterations)

    @property
    def total_test_timeouts(self) -> int:
        return sum(record.test_timeouts for record in self.iterations)

    @property
    def total_inconclusive(self) -> int:
        return sum(record.tests_inconclusive for record in self.iterations)

    @property
    def learned_states(self) -> int:
        return self.final_model.automaton.states.__len__()

    @property
    def learned_transitions(self) -> int:
        return len(self.final_model.transitions)

    @property
    def learned_refusals(self) -> int:
        return len(self.final_model.refusals)


@dataclass
class _IterationScratch:
    """Mutable per-iteration counters the helpers update."""

    tests: int = 0
    replays: int = 0
    retries: int = 0
    timeouts: int = 0
    inconclusive: int = 0
    observed: Run | None = None
    test_verdict: TestVerdict | None = None
    real_violation: bool = False
    violation: Run | None = None


class IntegrationSynthesizer:
    """Drives the verify → test → learn loop for one legacy placement.

    Parameters
    ----------
    context:
        The context abstraction ``M_a^c`` (typically produced by
        :meth:`repro.muml.Architecture.context_for` or by unfolding the
        partner role's statechart).
    component:
        The executable legacy component (``M_r`` behind the harness).
    property:
        The required compositional constraint ``φ``.  Deadlock freedom
        ``¬δ`` is always checked in addition, per §4.1.
    universe:
        The interaction alphabet of the legacy interface; defaults to
        the message-passing alphabet induced by the interface.
    labeler:
        Maps observed legacy state identifiers to atomic propositions
        so learned states participate in ``φ``.
    refusal_mode:
        ``"deterministic"`` (default) exploits strong determinism to
        refuse wholesale; ``"conservative"`` follows Definition 12
        literally.
    fast_conflict:
        Enable §4.2's shortcut: a property counterexample confined to
        the synthesized (non-chaotic) part proves a real conflict
        without testing.
    settings:
        The consolidated loop-tuning knobs
        (:class:`~repro.synthesis.settings.SynthesisSettings`):
        iteration budget, counterexample batching, incrementality, and
        the product/checker shard counts.  The individual keyword
        arguments below still work but are deprecated shims that
        forward into it.
    initial_knowledge:
        Warm-start the series from a previously learned model instead of
        the trivial ``M_l^0`` — e.g. the ``final_model`` of an earlier
        run against another property, or a model loaded via
        :mod:`repro.persistence`.  With ``validate_knowledge`` (default)
        the provided model is first checked against the live component:
        every transition is re-executed and every refusal re-attempted,
        so a stale model (the component was updated) is rejected instead
        of silently breaking the safe-abstraction invariant.
    max_iterations, counterexamples_per_iteration, incremental, parallelism:
        Deprecated: pass these through ``settings=`` instead.  They
        keep working (forwarded with a :class:`DeprecationWarning`) so
        existing call sites survive the redesign.
    """

    def __init__(
        self,
        context: Automaton,
        component: LegacyComponent,
        property: Formula,
        *,
        universe: InteractionUniverse | None = None,
        labeler: StateLabeler | None = None,
        refusal_mode: RefusalMode = "deterministic",
        fast_conflict: bool = True,
        settings: SynthesisSettings | None = None,
        max_iterations: int = _UNSET,  # type: ignore[assignment]
        composition_semantics: Semantics = "strict",
        counterexample_strategy: CounterexampleStrategy | None = None,
        counterexamples_per_iteration: int = _UNSET,  # type: ignore[assignment]
        initial_knowledge: IncompleteAutomaton | None = None,
        validate_knowledge: bool = True,
        port: str = "port",
        incremental: bool = _UNSET,  # type: ignore[assignment]
        parallelism: int | None = _UNSET,  # type: ignore[assignment]
    ):
        assert_compositional(property)
        settings = merge_legacy_settings(
            settings,
            "IntegrationSynthesizer",
            max_iterations=max_iterations,
            counterexamples_per_iteration=counterexamples_per_iteration,
            incremental=incremental,
            parallelism=parallelism,
        )
        self.settings = settings
        self.tracer = resolve_tracer(settings.tracer)
        self.context = context
        self.flight = settings.resolved_flight_recorder()
        self.flight.bind(settings=settings)
        self._events = ProgressEmitter(settings.progress, self.flight)
        fault_profile = settings.resolved_fault_profile()
        self._chaos = fault_profile is not None and fault_profile.active
        remote_policy = settings.resolved_remote()
        # Imported lazily so spawned component hosts (which import the
        # ``repro`` package) do not load ``legacy.remote`` twice.
        from ..legacy.remote import RemoteComponent, rehost

        if remote_policy is not None and not isinstance(component, RemoteComponent):
            # Out-of-process rehosting: the component — and, under chaos,
            # its fault schedule — moves into a supervised subprocess.
            # Fault-free verdicts stay bit-identical to in-process runs;
            # real crashes and hangs surface as retryable faults.
            component = rehost(
                component,
                remote_policy,
                fault_profile=fault_profile if self._chaos else None,
                tracer=self.tracer,
                flight=self.flight,
                events=self._events.emit if self._events else None,
            )
        elif self._chaos and not isinstance(component, RemoteComponent):
            # Chaos harness: wrap the component so the robust executor can
            # arm seed-driven fault injection around each supervised test.
            # Transparent everywhere else (knowledge validation, probing,
            # direct callers) — faults only fire inside armed scopes.
            component = FaultyComponent.wrap(component, fault_profile, tracer=self.tracer)
        self.component = component
        self.retry_policy = settings.resolved_retry_policy()
        self.robust = RobustExecutor(
            self.retry_policy,
            tracer=self.tracer,
            flight=self.flight,
            events=self._events.emit if self._events else None,
        )
        self.quarantine = Quarantine()
        self.property = property
        self.weakened_property = weaken_for_chaos(property)
        self.interface: InterfaceDescription = interface_of(component)
        self.universe = universe if universe is not None else self.interface.universe()
        self.labeler = labeler
        self.refusal_mode: RefusalMode = refusal_mode
        self.fast_conflict = fast_conflict
        self.max_iterations = settings.iterations_or(DEFAULT_MAX_ITERATIONS)
        self.composition_semantics: Semantics = composition_semantics
        self.counterexample_strategy = counterexample_strategy
        self.counterexamples_per_iteration = settings.counterexamples_per_iteration
        self.port = port
        self.incremental = settings.incremental
        self.parallelism = settings.resolved_parallelism()
        self.checker_parallelism = settings.resolved_checker_parallelism()
        self.dense = settings.dense
        self.dense_product = settings.dense_product
        self.product_strategy = settings.resolved_product_strategy()
        # Violations of properties mentioning the deadlock atom or an
        # eventuality (AF/AU) can hinge on the closure's *pessimistic
        # refusals* — a path that merely might end.  Only those need the
        # probe treatment when their counterexample ends in a composed
        # deadlock state; violations of boolean-state properties rest on
        # labels alone.
        self._refusal_sensitive = any(
            isinstance(node, (Deadlock, AF, AU)) for node in property.walk()
        )
        if context.inputs & self.interface.inputs or context.outputs & self.interface.outputs:
            raise SynthesisError(
                "context and legacy interface are not composable: they share "
                f"inputs {sorted(context.inputs & self.interface.inputs)} / "
                f"outputs {sorted(context.outputs & self.interface.outputs)}"
            )
        self.initial_knowledge = initial_knowledge
        if initial_knowledge is not None:
            self._check_knowledge_shape(initial_knowledge)
            if validate_knowledge:
                self._validate_knowledge(initial_knowledge)

    # -------------------------------------------------------- prior knowledge

    def _check_knowledge_shape(self, knowledge: IncompleteAutomaton) -> None:
        if (
            knowledge.inputs != self.interface.inputs
            or knowledge.outputs != self.interface.outputs
        ):
            raise SynthesisError(
                f"initial knowledge has signals I={sorted(knowledge.inputs)}/"
                f"O={sorted(knowledge.outputs)} but the component's interface is "
                f"I={sorted(self.interface.inputs)}/O={sorted(self.interface.outputs)}"
            )
        if knowledge.initial != frozenset({self.interface.initial_state}):
            raise SynthesisError(
                f"initial knowledge starts in {sorted(map(repr, knowledge.initial))} but the "
                f"component's initial state is {self.interface.initial_state!r}"
            )
        if not knowledge.is_deterministic():
            raise SynthesisError("initial knowledge must be deterministic (§2.6)")

    def _validate_knowledge(self, knowledge: IncompleteAutomaton) -> None:
        """Re-execute the knowledge against the live component.

        Every transition is driven via a covering run and every refusal
        re-attempted, so the model is observation-conforming when this
        returns — the precondition of Theorem 1.
        """
        from ..automata.analysis import transition_cover_runs

        for run in transition_cover_runs(knowledge.automaton):
            self.component.reset()
            current_expected = run.start
            for interaction, target in run.steps:
                outcome = self.component.step(interaction.inputs)
                if outcome.blocked or outcome.outputs != interaction.outputs:
                    raise SynthesisError(
                        f"stale initial knowledge: transition "
                        f"{current_expected!r} --{interaction}--> {target!r} is not "
                        "reproducible on the component"
                    )
                current_expected = target
        for refusal in sorted(
            knowledge.refusals, key=lambda r: (repr(r.state), r.interaction.sort_key())
        ):
            prefix = self._run_to_state(knowledge, refusal.state)
            if prefix is None:
                continue  # unreachable knowledge state: harmless
            self.component.reset()
            for interaction, _ in prefix.steps:
                self.component.step(interaction.inputs)
            outcome = self.component.step(refusal.interaction.inputs)
            if not outcome.blocked and outcome.outputs == refusal.interaction.outputs:
                raise SynthesisError(
                    f"stale initial knowledge: refusal of {refusal.interaction} at "
                    f"{refusal.state!r} contradicts the component's actual reaction"
                )

    @staticmethod
    def _run_to_state(knowledge: IncompleteAutomaton, state):
        from ..automata.analysis import shortest_run_to

        return shortest_run_to(knowledge.automaton, lambda s: s == state)

    # ----------------------------------------------------------------- loop

    def run(self) -> SynthesisResult:
        """Execute the loop until proof, real violation, or budget."""
        tracer = self.tracer
        with tracer.span("loop.run", synthesizer="IntegrationSynthesizer"):
            result = self._run()
        if tracer.enabled:
            get_pool().publish_to(tracer.metrics)
            tracer.metrics.set_gauge("loop_iteration_count", result.iteration_count)
            fault_counts = getattr(self.component, "fault_counts", None)
            if fault_counts:
                tracer.metrics.absorb(fault_counts, prefix="fault_injected_")
            remote_stats = getattr(self.component, "remote_stats", None)
            if remote_stats:
                tracer.metrics.absorb(remote_stats, prefix="remote_")
        return result

    def _finish(self, result: SynthesisResult) -> SynthesisResult:
        """Emit the final verdict event (and dump degraded verdicts)."""
        if self._events:
            self._events.emit(
                "verdict.reached",
                verdict=result.verdict.value,
                iterations=result.iteration_count,
                quarantined=len(result.quarantined),
            )
        if result.verdict is Verdict.BUDGET_EXCEEDED:
            self.flight.anomaly(
                "budget_exceeded",
                iterations=result.iteration_count,
                quarantined=len(result.quarantined),
            )
        return result

    def _quarantine_push(self, run: Run, *, probe: bool) -> bool:
        """Quarantine a counterexample; an admission is a recorded anomaly."""
        admitted = self.quarantine.push(run, probe=probe)
        if admitted:
            if self._events:
                self._events.emit(
                    "quarantine.admitted",
                    quarantine_size=len(self.quarantine),
                    probe=probe,
                )
            self.flight.anomaly(
                "quarantine_admission",
                counterexample=repr(run),
                quarantine_size=len(self.quarantine),
            )
        return admitted

    def _run(self) -> SynthesisResult:
        tracer = self.tracer
        if self.initial_knowledge is not None:
            model = self.initial_knowledge
        else:
            model = initial_model(self.interface, labeler=self.labeler)
        records: list[IterationRecord] = []
        self.flight.bind(settings=self.settings, records=lambda: records)
        self._events.emit(
            "loop.started",
            synthesizer="IntegrationSynthesizer",
            max_iterations=self.max_iterations,
            incremental=self.incremental,
            parallelism=self.parallelism,
            checker_parallelism=self.checker_parallelism,
        )

        def note(rec: IterationRecord) -> None:
            records.append(rec)
            if tracer.enabled:
                publish_record(tracer.metrics, rec)
                checker.stats.publish_to(tracer.metrics)
            if self._events:
                self._events.emit(
                    "iteration.finished",
                    iteration=rec.index,
                    property_holds=rec.property_holds,
                    deadlock_free=rec.deadlock_free,
                    violated=rec.violated,
                    fast_conflict=rec.fast_conflict,
                    tests_executed=rec.tests_executed,
                    knowledge_gained=rec.knowledge_gained,
                    test_retries=rec.test_retries,
                    test_timeouts=rec.test_timeouts,
                    tests_inconclusive=rec.tests_inconclusive,
                    quarantine_size=rec.quarantine_size,
                )

        closure: Automaton | None = None
        engine = (
            IncrementalVerifier(
                context=self.context,
                universes=[self.universe],
                semantics=self.composition_semantics,
                deterministic_implementation=True,
                parallelism=self.parallelism,
                checker_parallelism=self.checker_parallelism,
                dense=self.dense,
                dense_product=self.dense_product,
                product_strategy=self.product_strategy,
                tracer=tracer,
            )
            if self.incremental
            else None
        )

        for index in range(self.max_iterations):
            with tracer.span("loop.iteration", index=index):
                if self._events:
                    self._events.emit("iteration.started", iteration=index)
                if engine is not None:
                    step = engine.step([model], closure_names=[f"M_a^{index}"])
                    closure = step.closures[0]
                    composed = step.composed
                    checker = step.checker
                    step_stats = step.stats
                else:
                    with tracer.span("verify.step", models=1):
                        closure = chaotic_closure(
                            model,
                            self.universe,
                            deterministic_implementation=True,
                            name=f"M_a^{index}",
                        )
                        composed = compose(
                            self.context,
                            closure,
                            semantics=self.composition_semantics,
                            parallelism=self.parallelism,
                        )
                        checker = ModelChecker(
                            composed,
                            parallelism=self.checker_parallelism,
                            dense=self.dense,
                            tracer=tracer,
                        )
                    step_stats = None
                with tracer.span("checker.check", kind="property"):
                    property_result = checker.check(self.weakened_property)
                with tracer.span("checker.check", kind="deadlock"):
                    deadlock_result = checker.check(DEADLOCK_FREE)
                if self._events:
                    self._events.emit(
                        "phase.finished",
                        iteration=index,
                        phase="verify",
                        property_holds=property_result.holds,
                        deadlock_free=deadlock_result.holds,
                        composed_states=len(composed.states),
                        checker_fixpoint_work=checker.stats.fixpoint_work,
                        checker_shards=checker.stats.shards,
                        checker_shard_handoffs=checker.stats.shard_handoffs,
                        product_hits=step_stats.product_hits if step_stats else 0,
                        product_misses=step_stats.product_misses if step_stats else 0,
                        product_shards=step_stats.product_shards if step_stats else 0,
                        dirty_states=step_stats.dirty_states if step_stats else 0,
                        affected_states=step_stats.affected_states if step_stats else 0,
                    )

                def record(
                    *,
                    violated: str | None,
                    cex: Run | None,
                    fast: bool,
                    scratch: _IterationScratch | None,
                    gained: int,
                ) -> IterationRecord:
                    return IterationRecord(
                        index=index,
                        model_states=len(model.states),
                        model_transitions=len(model.transitions),
                        model_refusals=len(model.refusals),
                        closure_states=len(closure.states),
                        closure_transitions=closure.transition_count,
                        composed_states=len(composed.states),
                        property_holds=property_result.holds,
                        deadlock_free=deadlock_result.holds,
                        violated=violated,
                        counterexample=cex,
                        fast_conflict=fast,
                        test_verdict=scratch.test_verdict if scratch else None,
                        tests_executed=scratch.tests if scratch else 0,
                        replays_executed=scratch.replays if scratch else 0,
                        observed_run=scratch.observed if scratch else None,
                        knowledge_gained=gained,
                        closure_groups_reused=step_stats.closure_groups_reused if step_stats else 0,
                        closure_groups_rebuilt=step_stats.closure_groups_rebuilt if step_stats else 0,
                        product_hits=step_stats.product_hits if step_stats else 0,
                        product_misses=step_stats.product_misses if step_stats else 0,
                        dirty_states=step_stats.dirty_states if step_stats else 0,
                        affected_states=step_stats.affected_states if step_stats else 0,
                        checker_fixpoint_work=checker.stats.fixpoint_work,
                        product_shards=step_stats.product_shards if step_stats else 0,
                        product_shard_states_explored=(
                            step_stats.shard_states_explored if step_stats else ()
                        ),
                        product_shard_handoffs=(
                            step_stats.shard_handoffs if step_stats else 0
                        ),
                        product_shard_merge_conflicts=(
                            step_stats.shard_merge_conflicts if step_stats else 0
                        ),
                        product_dense_states=(
                            step_stats.product_dense_states if step_stats else 0
                        ),
                        product_bitset_words=(
                            step_stats.product_bitset_words if step_stats else 0
                        ),
                        checker_shards=checker.stats.shards,
                        checker_shard_fixpoint_work=checker.stats.shard_fixpoint_work,
                        checker_shard_handoffs=checker.stats.shard_handoffs,
                        test_retries=scratch.retries if scratch else 0,
                        test_timeouts=scratch.timeouts if scratch else 0,
                        tests_inconclusive=scratch.inconclusive if scratch else 0,
                        quarantine_size=len(self.quarantine),
                    )

                if property_result.holds and deadlock_result.holds:
                    note(record(violated=None, cex=None, fast=False, scratch=None, gained=0))
                    return self._finish(
                        SynthesisResult(
                            verdict=Verdict.PROVEN,
                            property=self.property,
                            iterations=tuple(records),
                            final_model=model,
                            final_closure=closure,
                            violation_witness=None,
                            violation_kind=None,
                            quarantined=self.quarantine.unresolved(),
                        )
                    )

                if not property_result.holds:
                    violated = "property"
                    batch = self._counterexample_batch(composed, self.weakened_property, checker)
                else:
                    violated = "deadlock"
                    batch = self._counterexample_batch(composed, DEADLOCK_FREE, checker)
                cex = batch[0]

                def needs_probing_for(candidate: Run) -> bool:
                    # A property counterexample that *ends in a composed
                    # deadlock state* may owe its violation to the pessimistic
                    # refusals of the closure (the deadlock atom, or a bounded
                    # obligation cut short) rather than to real labels: such
                    # runs are confirmed or refuted exactly like deadlock
                    # counterexamples, by probing what the context offers in
                    # the final configuration.  A confirmed probe-failure then
                    # witnesses a genuine ¬δ violation of φ ∧ ¬δ.
                    return (
                        violated == "property"
                        and self._refusal_sensitive
                        and composed.is_deadlock(candidate.last_state)
                    )

                if self.fast_conflict and violated == "property":
                    fast_candidate = next(
                        (
                            candidate
                            for candidate in batch
                            if not needs_probing_for(candidate)
                            and not any(is_chaos_state(state[1]) for state in candidate.states)
                        ),
                        None,
                    )
                    if fast_candidate is not None:
                        note(
                            record(violated=violated, cex=fast_candidate, fast=True, scratch=None, gained=0)
                        )
                        return self._finish(
                            SynthesisResult(
                                verdict=Verdict.REAL_VIOLATION,
                                property=self.property,
                                iterations=tuple(records),
                                final_model=model,
                                final_closure=closure,
                                violation_witness=fast_candidate,
                                violation_kind=violated,
                                quarantined=self.quarantine.unresolved(),
                            )
                        )

                scratch = _IterationScratch()
                before = model.knowledge_size()
                # The work list is the checker's batch plus every
                # quarantined counterexample from earlier iterations (an
                # inconclusive test is retried here, not forgotten).  Each
                # entry carries its probing route: quarantined runs keep the
                # route they were pushed with — they may reference stale
                # composed states, and the probing decision only needs
                # ``cex.last_state`` on the context side.
                work: list[tuple[Run, bool]] = [
                    (candidate, violated != "property" or needs_probing_for(candidate))
                    for candidate in batch
                ]
                fresh = {repr(candidate) for candidate in batch}
                work.extend(
                    entry for entry in self.quarantine.drain() if repr(entry[0]) not in fresh
                )
                position = 0
                while position < len(work):
                    candidate, probing = work[position]
                    group = [candidate]
                    if self.fast_conflict and violated == "property" and not probing:
                        # Maximal run of plain property counterexamples: safe
                        # to execute all live first and batch the monitor
                        # replays (none of them can confirm a real violation
                        # here — fast conflict detection already returned for
                        # chaos-free candidates, so all of these visit chaos
                        # and are pure learning material).
                        while position + len(group) < len(work) and not work[position + len(group)][1]:
                            group.append(work[position + len(group)][0])
                    try:
                        if len(group) > 1:
                            model = self._handle_property_batch(
                                model, group, scratch, offset=position
                            )
                        elif not probing:
                            model = self._handle_property_counterexample(model, candidate, scratch)
                        else:
                            model = self._handle_deadlock_counterexample(
                                model, composed, candidate, scratch
                            )
                    except LearningError:
                        if self._absorb_learning_error(candidate, scratch, probe=probing):
                            position += len(group)
                            continue
                        if position == 0:
                            raise
                        position += len(group)
                        continue  # a later counterexample went stale mid-batch
                    except (FaultInjectionError, TestTimeoutError, RemoteComponentError):
                        # A real out-of-process failure (crash, hang kill,
                        # protocol violation) escaped the supervised test
                        # window — e.g. during probing or a learning
                        # replay, where in-process fault injection cannot
                        # fire.  Sound degradation, exactly as for an
                        # inconclusive test: quarantine the counterexample
                        # for a later retry against a fresh host, never
                        # abort the loop or report a violation.
                        scratch.inconclusive += 1
                        self._quarantine_push(candidate, probe=probing)
                        position += len(group)
                        continue
                    if scratch.real_violation:
                        cex = scratch.violation if scratch.violation is not None else candidate
                        break
                    position += len(group)
                gained = model.knowledge_size() - before

                note(
                    record(violated=violated, cex=cex, fast=False, scratch=scratch, gained=gained)
                )
                if scratch.real_violation:
                    return self._finish(
                        SynthesisResult(
                            verdict=Verdict.REAL_VIOLATION,
                            property=self.property,
                            iterations=tuple(records),
                            final_model=model,
                            final_closure=closure,
                            violation_witness=cex,
                            violation_kind=violated,
                            quarantined=self.quarantine.unresolved(),
                        )
                    )
                if gained <= 0 and scratch.inconclusive == 0:
                    # An iteration that learned nothing *and* completed all
                    # its tests fault-free contradicts §4.4's termination
                    # argument.  Inconclusive-only iterations are allowed to
                    # continue — the retry happens under the iteration
                    # budget, so degradation stays bounded.
                    if self._chaos:
                        # Under fault injection §4.4's premises fail: a
                        # silent crash-reset inside a long output-free run
                        # is observationally clean (nothing to contradict)
                        # yet erases the progress the counterexample needed,
                        # so the iteration legitimately learns nothing.  The
                        # sound degraded answer is inconclusive, never a
                        # crash — found by the randomized conformance
                        # campaign on dense-floor scenarios.
                        self.flight.anomaly(
                            "chaos_zero_progress",
                            iteration=index,
                            counterexample=repr(cex),
                        )
                        return self._finish(
                            SynthesisResult(
                                verdict=Verdict.BUDGET_EXCEEDED,
                                property=self.property,
                                iterations=tuple(records),
                                final_model=model,
                                final_closure=closure,
                                violation_witness=None,
                                violation_kind=None,
                                quarantined=self.quarantine.unresolved(),
                            )
                        )
                    message = (
                        f"iteration {index} made no learning progress on {cex} — "
                        "this contradicts §4.4's termination argument and indicates "
                        "a non-deterministic component or an inconsistent universe"
                    )
                    self.flight.anomaly("synthesis_error", iteration=index, error=message)
                    raise SynthesisError(message)

        return self._finish(
            SynthesisResult(
                verdict=Verdict.BUDGET_EXCEEDED,
                property=self.property,
                iterations=tuple(records),
                final_model=model,
                final_closure=closure,
                violation_witness=None,
                violation_kind=None,
                quarantined=self.quarantine.unresolved(),
            )
        )

    # -------------------------------------------------------------- helpers

    def _counterexample_batch(
        self, composed: Automaton, formula: Formula, checker: ModelChecker
    ) -> list[Run]:
        with self.tracer.span(
            "counterexample.derive", limit=self.counterexamples_per_iteration
        ):
            return self._counterexample_batch_inner(composed, formula, checker)

    def _counterexample_batch_inner(
        self, composed: Automaton, formula: Formula, checker: ModelChecker
    ) -> list[Run]:
        if self.counterexample_strategy is not None:
            return [self.counterexample_strategy(composed, formula, checker)]
        if self.counterexamples_per_iteration > 1:
            batch = counterexamples(
                composed, formula, checker=checker, limit=self.counterexamples_per_iteration
            )
            if batch:
                return batch
        run = counterexample(composed, formula, checker=checker)
        if run is None:
            raise SynthesisError(f"{formula} was violated but no counterexample was produced")
        return [run]

    def _testcase(self, cex: Run) -> TestCase:
        return test_case_from_counterexample(
            cex,
            component_index=1,
            inputs=self.interface.inputs,
            outputs=self.interface.outputs,
        )

    def _execute(self, testcase: TestCase, scratch: _IterationScratch) -> RobustExecution:
        """One supervised execution (retries, deadlines, validation)."""
        begin = time.perf_counter()
        with self.tracer.span("test.execute", steps=len(testcase.steps)):
            outcome = self.robust.execute(self.component, testcase, port=self.port)
        self.tracer.metrics.observe("test_execute_seconds", time.perf_counter() - begin)
        scratch.tests += outcome.attempts
        scratch.retries += outcome.retries
        scratch.timeouts += outcome.timeouts
        scratch.replays += outcome.replays_performed
        return outcome

    def _execute_supervised(
        self,
        testcase: TestCase,
        scratch: _IterationScratch,
        *,
        quarantine_run: Run | None,
        probe: bool,
    ) -> RobustExecution | None:
        """Execute a test; quarantine its counterexample when inconclusive.

        Returns ``None`` when the execution could not be completed
        fault-free — the caller must then treat the counterexample as
        *undecided*: no learning, no verdict (Lemma 6).
        """
        outcome = self._execute(testcase, scratch)
        scratch.test_verdict = outcome.verdict
        if outcome.inconclusive:
            scratch.inconclusive += 1
            if quarantine_run is not None:
                self._quarantine_push(quarantine_run, probe=probe)
            return None
        return outcome

    def _trusted(self, outcome: RobustExecution) -> bool:
        """May this outcome witness a real violation?  (Lemma 6.)

        A validated outcome always may; an unvalidated one only when the
        component cannot inject faults at all.
        """
        return outcome.validated or not getattr(
            self.component, "fault_injection_active", False
        )

    def _absorb_learning_error(
        self, candidate: Run, scratch: _IterationScratch, *, probe: bool
    ) -> bool:
        """Downgrade a learning contradiction to *inconclusive* under chaos.

        Validation is probabilistic: a corrupted recording can survive
        its replays when the replay faults happen to reproduce the
        corruption.  When that poisoned knowledge later contradicts an
        observation, the contradiction is chaos-induced, not genuine
        component non-determinism — quarantine the counterexample
        instead of aborting the run.  Without fault injection the
        contradiction is real and must keep raising.
        """
        if not getattr(self.component, "fault_injection_active", False):
            return False
        scratch.inconclusive += 1
        self._quarantine_push(candidate, probe=probe)
        return True

    def _replay(self, execution: TestExecution, scratch: _IterationScratch) -> ReplayResult:
        scratch.replays += 1
        begin = time.perf_counter()
        with self.tracer.span("monitor.replay", steps=len(execution.recording.steps)):
            result = replay(self.component, execution.recording, port=self.port)
        self.tracer.metrics.observe("monitor_replay_seconds", time.perf_counter() - begin)
        return result

    def _outcome_replay(
        self, outcome: RobustExecution, scratch: _IterationScratch
    ) -> ReplayResult:
        """The outcome's validation replay, or a fresh one when absent."""
        if outcome.replay is not None:
            return outcome.replay
        assert outcome.execution is not None
        return self._replay(outcome.execution, scratch)

    def _learn_execution(
        self,
        model: IncompleteAutomaton,
        outcome: RobustExecution,
        scratch: _IterationScratch,
        replay_result: ReplayResult | None = None,
    ) -> IncompleteAutomaton:
        """Replay a finished test execution and merge what was observed."""
        execution = outcome.execution
        assert execution is not None
        result = (
            replay_result if replay_result is not None else self._outcome_replay(outcome, scratch)
        )
        observed = result.observed_run
        scratch.observed = observed
        with self.tracer.span("learn.merge", verdict=execution.verdict.value):
            if execution.verdict is TestVerdict.BLOCKED:
                # No reaction at all: Definition 12 (+ wholesale refusal).
                return learn_blocked(
                    model,
                    observed,
                    labeler=self.labeler,
                    mode=self.refusal_mode,
                    universe=self.universe,
                    observed_outputs=None,
                )
            model = learn_regular(model, observed, labeler=self.labeler)
            if execution.verdict is TestVerdict.DIVERGED:
                assert execution.divergence_index is not None
                diverged = execution.recording.steps[execution.divergence_index]
                source = observed.states[execution.divergence_index]
                if self.refusal_mode == "deterministic":
                    impossible = [
                        interaction
                        for interaction in self.universe
                        if interaction.inputs == diverged.inputs
                        and interaction.outputs != diverged.observed_outputs
                    ]
                else:
                    impossible = [Interaction(diverged.inputs, diverged.expected_outputs)]
                model = refuse(model, source, impossible, allow_no_progress=True)
            return model

    # ------------------------------------------------- property counterexamples

    def _handle_property_counterexample(
        self, model: IncompleteAutomaton, cex: Run, scratch: _IterationScratch
    ) -> IncompleteAutomaton:
        outcome = self._execute_supervised(
            self._testcase(cex), scratch, quarantine_run=cex, probe=False
        )
        if outcome is None:
            return model  # inconclusive: quarantined, nothing merged
        return self._merge_property_outcome(model, cex, outcome, scratch)

    def _merge_property_outcome(
        self,
        model: IncompleteAutomaton,
        cex: Run,
        outcome: RobustExecution,
        scratch: _IterationScratch,
        replay_result: ReplayResult | None = None,
    ) -> IncompleteAutomaton:
        execution = outcome.execution
        assert execution is not None
        if execution.verdict is TestVerdict.CONFIRMED:
            legacy_states = [state[1] for state in cex.states]
            if not any(is_chaos_state(state) for state in legacy_states):
                # Only reachable with fast_conflict disabled: the violation
                # lives entirely in the synthesized part — a real conflict.
                if not self._trusted(outcome):
                    # Lemma 6: no CONFIRMED verdict without a validated
                    # fault-free run.  Retry later instead of reporting.
                    self._quarantine_push(cex, probe=False)
                    return model
                scratch.real_violation = True
                scratch.violation = cex
                return model
            # §4.2: a chaos-visiting run is never a run of the concrete
            # system; the confirmed behavior is learning material instead.
            return self._learn_execution(model, outcome, scratch, replay_result)
        return self._learn_execution(model, outcome, scratch, replay_result)

    def _handle_property_batch(
        self,
        model: IncompleteAutomaton,
        group: list[Run],
        scratch: _IterationScratch,
        *,
        offset: int,
    ) -> IncompleteAutomaton:
        """Test a run of plain property counterexamples with batched replays.

        Closes the roadmap's batching item: all candidates are executed
        live first, their monitor replays then go through the worker
        pool as one submission (chunked per component — a single
        synthesizer has a single component, so its chunk replays in
        recorded order and determinism is untouched; the multi-legacy
        loop shares the helper across slots, where chunks genuinely run
        in parallel), and the observations are merged in the original
        candidate order.
        """
        outcomes: list[tuple[int, Run, RobustExecution]] = []
        for index, cex in enumerate(group):
            outcome = self._execute_supervised(
                self._testcase(cex), scratch, quarantine_run=cex, probe=False
            )
            if outcome is not None:
                outcomes.append((offset + index, cex, outcome))
        replayed = self._batch_replays(
            [
                (position, outcome.execution)
                for position, _, outcome in outcomes
                if outcome.replay is None
            ],
            scratch,
        )
        for position, cex, outcome in outcomes:
            try:
                model = self._merge_property_outcome(
                    model, cex, outcome, scratch, replayed.get(position, outcome.replay)
                )
            except LearningError:
                if self._absorb_learning_error(cex, scratch, probe=False):
                    continue
                if position == 0:
                    raise
                continue  # a later counterexample went stale mid-batch
            if scratch.real_violation:  # unreachable with fast_conflict on
                break
        return model

    def _batch_replays(
        self,
        pending: list[tuple[int, TestExecution]],
        scratch: _IterationScratch,
    ) -> dict[int, ReplayResult]:
        """Replay recordings through the worker pool, one chunk per component.

        Within a chunk the recordings replay strictly in submission
        order against their (single, stateful) component; the pool only
        parallelizes *across* chunks.  Span/metric accounting matches
        the sequential path observation for observation.
        """
        if not pending:
            return {}
        tracer = self.tracer

        def replay_chunk(
            chunk: list[tuple[int, TestExecution]]
        ) -> list[tuple[int, ReplayResult, float]]:
            results = []
            for position, execution in chunk:
                begin = time.perf_counter()
                with tracer.span("monitor.replay", steps=len(execution.recording.steps)):
                    result = replay(self.component, execution.recording, port=self.port)
                results.append((position, result, time.perf_counter() - begin))
            return results

        chunks = [pending]  # one component -> one ordered chunk
        outputs = get_pool().map("thread", replay_chunk, chunks, workers=len(chunks))
        replayed: dict[int, ReplayResult] = {}
        for chunk_results in outputs:
            for position, result, seconds in chunk_results:
                scratch.replays += 1
                tracer.metrics.observe("monitor_replay_seconds", seconds)
                replayed[position] = result
        return replayed

    # ------------------------------------------------- deadlock counterexamples

    def _context_offers(self, composed_state: State) -> list[tuple[frozenset[str], frozenset[str]]]:
        """The legacy-side interactions the context offers at a state.

        For each context transition ``(A_c, B_c)`` enabled in the
        deadlocked configuration, the legacy component would have to
        consume ``B_c ∩ I`` and produce ``A_c ∩ O`` to synchronize
        (Definition 3's matching condition, two-party case).
        """
        context_state = composed_state[0]
        offers: list[tuple[frozenset[str], frozenset[str]]] = []
        for transition in self.context.transitions_from(context_state):
            probe_inputs = transition.outputs & self.interface.inputs
            expected = transition.inputs & self.interface.outputs
            offers.append((probe_inputs, expected))
        return offers

    def _handle_deadlock_counterexample(
        self,
        model: IncompleteAutomaton,
        composed: Automaton,
        cex: Run,
        scratch: _IterationScratch,
    ) -> IncompleteAutomaton:
        """Confirm or refute a composed deadlock by testing and probing."""
        testcase = self._testcase(cex)
        outcome = self._execute_supervised(testcase, scratch, quarantine_run=cex, probe=True)
        if outcome is None:
            return model  # inconclusive: quarantined, nothing merged
        execution = outcome.execution
        assert execution is not None
        if execution.verdict is not TestVerdict.CONFIRMED:
            # The component already left the predicted path: pure learning.
            return self._learn_execution(model, outcome, scratch)

        # The prefix is real.  The composition deadlocks in the final
        # configuration; whether the *system* deadlocks depends on whether
        # the real component serves any interaction the context offers.
        prefix_replay = self._outcome_replay(outcome, scratch)
        observed_prefix = prefix_replay.observed_run
        scratch.observed = observed_prefix
        with self.tracer.span("learn.merge", verdict="confirmed-prefix"):
            model = learn_regular(model, observed_prefix, labeler=self.labeler)
        legacy_state = observed_prefix.last_state

        offers = self._context_offers(cex.last_state)
        if not offers:
            # The context itself is stuck: nothing the legacy component
            # does can unblock the system.
            if not self._trusted(outcome):
                self._quarantine_push(cex, probe=True)
                return model
            scratch.real_violation = True
            scratch.violation = cex
            return model

        # Group offers by the inputs the legacy component would see.
        by_inputs: dict[frozenset[str], set[frozenset[str]]] = {}
        for probe_inputs, expected in offers:
            by_inputs.setdefault(probe_inputs, set()).add(expected)

        known = {t.interaction: t for t in model.automaton.transitions_from(legacy_state)}
        refused = model.refused(legacy_state)
        any_served = False
        for probe_inputs in sorted(by_inputs, key=sorted):
            expected_set = by_inputs[probe_inputs]
            known_reaction = next(
                (t for i, t in known.items() if i.inputs == probe_inputs), None
            )
            if known_reaction is not None:
                if known_reaction.interaction.outputs in expected_set:
                    # The deadlock was an artifact of the chaotic s_δ
                    # pessimism: the real component (whose state after the
                    # prefix is known by determinism) serves this offer.
                    any_served = True
                    break
                continue  # the known reaction cannot match: nothing to probe
            if self.refusal_mode == "deterministic" and any(
                refusal.inputs == probe_inputs for refusal in refused
            ):
                continue  # wholesale refusal already recorded for these inputs
            if self.refusal_mode == "conservative" and all(
                Interaction(probe_inputs, expected) in refused for expected in expected_set
            ):
                continue

            representative = sorted(expected_set, key=sorted)[0]
            probe_case = TestCase(
                name=f"{testcase.name}+probe",
                steps=(*testcase.steps, TestStep(probe_inputs, representative)),
                source_run=cex,
            )
            probe_outcome = self._execute_supervised(
                probe_case, scratch, quarantine_run=None, probe=True
            )
            if probe_outcome is None:
                # This offer could not be decided fault-free: park the whole
                # counterexample (undecided, not confirmed) and retry the
                # probing in a later iteration.
                self._quarantine_push(cex, probe=True)
                return model
            model = self._learn_execution(model, probe_outcome, scratch)
            assert probe_outcome.execution is not None
            if probe_outcome.execution.verdict is TestVerdict.BLOCKED:
                continue
            observed = scratch.observed
            assert observed is not None and observed.steps
            reaction_outputs = observed.steps[-1][0].outputs
            if reaction_outputs in expected_set:
                any_served = True
                break  # the system does not deadlock here; re-verify

        if not any_served:
            undecided = False
            refreshed = model.refused(legacy_state)
            known_now = {t.interaction for t in model.automaton.transitions_from(legacy_state)}
            for probe_inputs, expected_set in by_inputs.items():
                has_known = any(i.inputs == probe_inputs for i in known_now)
                fully_refused = (
                    any(r.inputs == probe_inputs for r in refreshed)
                    if self.refusal_mode == "deterministic"
                    else all(
                        Interaction(probe_inputs, expected) in refreshed
                        for expected in expected_set
                    )
                )
                if not has_known and not fully_refused:
                    undecided = True
                    break
            if not undecided:
                matched = any(
                    interaction.inputs == probe_inputs
                    and interaction.outputs in expected_set
                    for probe_inputs, expected_set in by_inputs.items()
                    for interaction in known_now
                )
                if not matched:
                    scratch.real_violation = True
                    scratch.violation = cex
        return model
