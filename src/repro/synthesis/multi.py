"""Multiple legacy components: the paper's §7 extension, implemented.

    "The approach can, however, be extended to multiple legacy
    components, by using the parallel combination of multiple
    behavioral models.  The iterative synthesis will then improve all
    these models in parallel."  (§7)

:class:`MultiLegacySynthesizer` verifies the composition of an
(optional) modeled context with one chaotic closure *per* legacy
component, and on a counterexample projects it onto every component,
tests each projection, and learns into all models in parallel.  The
soundness story is unchanged: each closure is a safe abstraction of its
component (Theorem 1), refinement is a precongruence for ``∥``
(Lemma 2), so Lemma 5 lifts to the n-ary composition.

The deadlock-testing step generalises §4.2's probing: after confirming
the prefix on every component, each component's *local reaction table*
at its current state is completed by probing every input set of its
alphabet (deterministic components make each probe exact after a prefix
re-run); a real deadlock is declared iff no joint step can be assembled
from the context's offers and the probed reactions.

The paper "can currently provide no experience whether such a parallel
learning is beneficial" and conjectures that the benefit depends on
"the degree in which the known context restricts their interaction" —
``benchmarks/bench_multi_legacy.py`` measures exactly that.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..automata.automaton import Automaton, State
from ..automata.chaos import chaotic_closure, is_chaos_state
from ..automata.composition import compose_all
from ..automata.incomplete import IncompleteAutomaton
from ..automata.incremental import IncrementalVerifier
from ..automata.interaction import Interaction, InteractionUniverse
from ..automata.runs import Run
from ..errors import (
    FaultInjectionError,
    LearningError,
    RemoteComponentError,
    SynthesisError,
    TestTimeoutError,
)
from ..legacy.component import LegacyComponent
from ..legacy.interface import interface_of
from ..logic.checker import ModelChecker
from ..logic.compositional import assert_compositional, weaken_for_chaos
from ..logic.counterexample import counterexample, counterexamples
from ..logic.formulas import DEADLOCK_FREE, Formula
from ..automata.sharding import get_pool
from ..obs.metrics import publish_record
from ..obs.progress import ProgressEmitter
from ..obs.tracer import resolve_tracer
from ..testing.executor import TestVerdict
from ..testing.faults import FaultyComponent
from ..testing.replay import replay
from ..testing.robust import Quarantine, RobustExecution, RobustExecutor
from ..testing.testcase import TestCase, TestStep
from .initial import StateLabeler, initial_model
from .iterate import Verdict, _warn_renamed_counter
from .learning import RefusalMode, learn_blocked, learn_regular, refuse
from .settings import SynthesisSettings, _UNSET, merge_legacy_settings

__all__ = ["MultiLegacySynthesizer", "MultiSynthesisResult", "MultiIterationRecord"]

#: Default iteration budget of :class:`MultiLegacySynthesizer` (higher
#: than the single-placement default: n models learn in parallel).
DEFAULT_MULTI_MAX_ITERATIONS = 1000


@dataclass(frozen=True)
class MultiIterationRecord:
    """Per-iteration observations of the parallel loop."""

    index: int
    model_sizes: tuple[tuple[int, int, int], ...]  # (states, T, T̄) per component
    composed_states: int
    property_holds: bool
    deadlock_free: bool
    violated: str | None
    counterexample: Run | None
    fast_conflict: bool
    tests_executed: int
    components_learned: tuple[str, ...]
    knowledge_gained: int
    # Incremental-engine counters (all zero when ``incremental=False``).
    closure_groups_reused: int = 0
    closure_groups_rebuilt: int = 0
    product_hits: int = 0
    product_misses: int = 0
    dirty_states: int = 0
    affected_states: int = 0
    #: Worklist operations the checker spent on this iteration's fixpoints.
    checker_fixpoint_work: int = 0
    # Sharded-exploration counters in the ``product_*`` / ``checker_*``
    # namespaces; per-shard breakdowns depend on the shard count, but
    # ``sum(product_shard_states_explored) == product_hits + product_misses``
    # and ``sum(checker_shard_fixpoint_work) == checker_fixpoint_work``
    # for every shard count.
    product_shards: int = 0
    product_shard_states_explored: tuple[int, ...] = ()
    product_shard_handoffs: int = 0
    product_shard_merge_conflicts: int = 0
    # Dense product-BFS sizes (zero on the legacy dict-cache path);
    # K-independent, like every non-per-shard product counter.
    product_dense_states: int = 0
    product_bitset_words: int = 0
    checker_shards: int = 1
    checker_shard_fixpoint_work: tuple[int, ...] = ()
    checker_shard_handoffs: int = 0
    # Robust-execution counters (all zero on a fault-free run with the
    # default retry policy).
    test_retries: int = 0
    test_timeouts: int = 0
    tests_inconclusive: int = 0
    quarantine_size: int = 0

    # Pre-redesign names, kept as deprecated read-only views.
    @property
    def shard_states_explored(self) -> tuple[int, ...]:
        _warn_renamed_counter(
            "shard_states_explored",
            "product_shard_states_explored",
            record="MultiIterationRecord",
        )
        return self.product_shard_states_explored

    @property
    def shard_handoffs(self) -> int:
        _warn_renamed_counter(
            "shard_handoffs", "product_shard_handoffs", record="MultiIterationRecord"
        )
        return self.product_shard_handoffs

    @property
    def shard_merge_conflicts(self) -> int:
        _warn_renamed_counter(
            "shard_merge_conflicts",
            "product_shard_merge_conflicts",
            record="MultiIterationRecord",
        )
        return self.product_shard_merge_conflicts


@dataclass(frozen=True)
class MultiSynthesisResult:
    """Outcome of a parallel synthesis run."""

    verdict: Verdict
    property: Formula
    iterations: tuple[MultiIterationRecord, ...]
    final_models: dict[str, IncompleteAutomaton]
    violation_witness: Run | None
    violation_kind: str | None
    #: Counterexamples whose tests never completed fault-free within the
    #: retry budget (see :mod:`repro.testing.robust`).  Empty on every
    #: fault-free run; never merged, never confirmed (Lemma 6).
    quarantined: tuple[Run, ...] = ()

    @property
    def proven(self) -> bool:
        return self.verdict is Verdict.PROVEN

    def require_proven(self) -> "MultiSynthesisResult":
        """Raise unless the verdict is ``PROVEN``; returns ``self``."""
        from ..errors import BudgetExceededError

        if self.verdict is Verdict.PROVEN:
            return self
        if self.verdict is Verdict.BUDGET_EXCEEDED:
            raise BudgetExceededError(
                f"multi-legacy synthesis exhausted its budget after "
                f"{self.iteration_count} iterations"
            )
        raise SynthesisError(
            f"integration violates the requirements ({self.violation_kind}); "
            f"witness: {self.violation_witness}"
        )

    @property
    def iteration_count(self) -> int:
        return len(self.iterations)

    @property
    def total_tests(self) -> int:
        return sum(record.tests_executed for record in self.iterations)

    def learned_states(self, name: str) -> int:
        return len(self.final_models[name].states)


@dataclass
class _MultiScratch:
    """Mutable per-iteration counters of the parallel loop."""

    tests: int = 0
    retries: int = 0
    timeouts: int = 0
    inconclusive: int = 0


@dataclass
class _Slot:
    """Bookkeeping for one legacy component."""

    component: LegacyComponent
    universe: InteractionUniverse
    labeler: StateLabeler | None
    model: IncompleteAutomaton
    index: int  # position inside the composed tuple states

    @property
    def name(self) -> str:
        return self.component.name


class MultiLegacySynthesizer:
    """Parallel iterative synthesis for several legacy components.

    Parameters
    ----------
    context:
        Optional modeled context automaton (``None`` when the legacy
        components only interact with each other, as in a two-shuttle
        convoy where both controllers are third-party code).
    components:
        The legacy components.  Their names must be unique; signal sets
        must be pairwise composable.
    property:
        The compositional constraint to establish, in addition to
        deadlock freedom.
    labelers:
        Optional per-component state labelers, keyed by component name.
    settings:
        The consolidated loop-tuning knobs
        (:class:`~repro.synthesis.settings.SynthesisSettings`), shared
        with :class:`~repro.synthesis.iterate.IntegrationSynthesizer`.
        The individual ``max_iterations`` / ``incremental`` /
        ``parallelism`` keywords still work but are deprecated shims.
        A ``counterexamples_per_iteration`` above 1 tests and learns
        from extra counterexamples of each failed check on top of the
        primary one.
    """

    def __init__(
        self,
        context: Automaton | None,
        components: Sequence[LegacyComponent],
        property: Formula,
        *,
        universes: dict[str, InteractionUniverse] | None = None,
        labelers: dict[str, StateLabeler] | None = None,
        refusal_mode: RefusalMode = "deterministic",
        fast_conflict: bool = True,
        settings: SynthesisSettings | None = None,
        max_iterations: int = _UNSET,  # type: ignore[assignment]
        counterexamples_per_iteration: int = _UNSET,  # type: ignore[assignment]
        port: str = "port",
        incremental: bool = _UNSET,  # type: ignore[assignment]
        parallelism: int | None = _UNSET,  # type: ignore[assignment]
    ):
        assert_compositional(property)
        settings = merge_legacy_settings(
            settings,
            "MultiLegacySynthesizer",
            max_iterations=max_iterations,
            counterexamples_per_iteration=counterexamples_per_iteration,
            incremental=incremental,
            parallelism=parallelism,
        )
        if not components:
            raise SynthesisError("MultiLegacySynthesizer needs at least one legacy component")
        names = [component.name for component in components]
        if len(set(names)) != len(names):
            raise SynthesisError(f"legacy component names must be unique, got {names}")
        self.settings = settings
        self.tracer = resolve_tracer(settings.tracer)
        self.context = context
        self.property = property
        self.weakened_property = weaken_for_chaos(property)
        self.refusal_mode: RefusalMode = refusal_mode
        self.fast_conflict = fast_conflict
        self.max_iterations = settings.iterations_or(DEFAULT_MULTI_MAX_ITERATIONS)
        self.counterexamples_per_iteration = settings.counterexamples_per_iteration
        self.port = port
        self.incremental = settings.incremental
        self.parallelism = settings.resolved_parallelism()
        self.checker_parallelism = settings.resolved_checker_parallelism()
        self.dense = settings.dense
        self.dense_product = settings.dense_product
        self.product_strategy = settings.resolved_product_strategy()
        self.retry_policy = settings.resolved_retry_policy()
        self.flight = settings.resolved_flight_recorder()
        self.flight.bind(settings=settings)
        self._events = ProgressEmitter(settings.progress, self.flight)
        self.robust = RobustExecutor(
            self.retry_policy,
            tracer=self.tracer,
            flight=self.flight,
            events=self._events.emit if self._events else None,
        )
        self.quarantine = Quarantine()
        fault_profile = settings.resolved_fault_profile()
        remote_policy = settings.resolved_remote()
        # Lazy for the same reason as in IntegrationSynthesizer: spawned
        # component hosts import ``repro`` without loading the adapter.
        from ..legacy.remote import RemoteComponent, rehost

        universes = universes or {}
        labelers = labelers or {}
        offset = 1 if context is not None else 0
        self.slots: list[_Slot] = []
        for position, component in enumerate(components):
            slot_profile = None
            if fault_profile is not None and fault_profile.active:
                # Each slot gets its own fault schedule (seed offset by
                # position) so one seed exercises distinct chaos per slot.
                from dataclasses import replace as _replace

                slot_profile = _replace(fault_profile, seed=fault_profile.seed + position)
            if remote_policy is not None and not isinstance(component, RemoteComponent):
                # One supervised subprocess per slot; under chaos the
                # slot's fault schedule is armed inside that host.
                component = rehost(
                    component,
                    remote_policy,
                    fault_profile=slot_profile,
                    tracer=self.tracer,
                    flight=self.flight,
                    events=self._events.emit if self._events else None,
                )
            elif slot_profile is not None and not isinstance(component, RemoteComponent):
                component = FaultyComponent.wrap(
                    component, slot_profile, tracer=self.tracer
                )
            interface = interface_of(component)
            universe = universes.get(component.name, interface.universe())
            labeler = labelers.get(component.name)
            self.slots.append(
                _Slot(
                    component=component,
                    universe=universe,
                    labeler=labeler,
                    model=initial_model(interface, labeler=labeler),
                    index=offset + position,
                )
            )
        self._validate_signals()
        from ..logic.formulas import AF, AU, Deadlock

        self._refusal_sensitive = any(
            isinstance(node, (Deadlock, AF, AU)) for node in property.walk()
        )

    def _validate_signals(self) -> None:
        parts: list[tuple[str, frozenset[str], frozenset[str]]] = []
        if self.context is not None:
            parts.append(("context", self.context.inputs, self.context.outputs))
        for slot in self.slots:
            parts.append((slot.name, slot.component.inputs, slot.component.outputs))
        for i, (name_a, in_a, out_a) in enumerate(parts):
            for name_b, in_b, out_b in parts[i + 1 :]:
                if in_a & in_b or out_a & out_b:
                    raise SynthesisError(
                        f"{name_a!r} and {name_b!r} are not composable: shared "
                        f"inputs {sorted(in_a & in_b)} / outputs {sorted(out_a & out_b)}"
                    )

    # --------------------------------------------------------------- helpers

    def _compose(self) -> Automaton:
        parts: list[Automaton] = []
        if self.context is not None:
            parts.append(self.context)
        for slot in self.slots:
            parts.append(
                chaotic_closure(
                    slot.model,
                    slot.universe,
                    deterministic_implementation=True,
                    name=f"chaos({slot.name})",
                )
            )
        if len(parts) == 1:
            return parts[0]
        composed = compose_all(
            parts, semantics="open", name="multi-closure", parallelism=self.parallelism
        )
        if len(parts) == 2:
            # compose_all leaves two-party states as plain pairs already.
            return composed
        return composed

    def _slot_state(self, composed_state: State, slot: _Slot) -> State:
        if len(self.slots) == 1 and self.context is None:
            return composed_state
        return composed_state[slot.index]

    def _project_case(self, cex: Run, slot: _Slot) -> TestCase:
        if len(self.slots) == 1 and self.context is None:
            steps = [TestStep(i.inputs, i.outputs) for i, _ in cex.steps]
            if cex.blocked is not None:
                steps.append(TestStep(cex.blocked.inputs, cex.blocked.outputs))
            return TestCase(name=f"{slot.name}-test", steps=tuple(steps), source_run=cex)
        projected = cex.project(
            slot.index, slot.component.inputs, slot.component.outputs
        )
        steps = [TestStep(i.inputs, i.outputs) for i, _ in projected.steps]
        if projected.blocked is not None:
            steps.append(TestStep(projected.blocked.inputs, projected.blocked.outputs))
        return TestCase(name=f"{slot.name}-test", steps=tuple(steps), source_run=cex)

    def _execute(self, slot: _Slot, case: TestCase, scratch: _MultiScratch) -> RobustExecution:
        """One supervised execution (retries, deadlines, validation)."""
        begin = time.perf_counter()
        with self.tracer.span("test.execute", steps=len(case.steps)):
            outcome = self.robust.execute(slot.component, case, port=self.port)
        self.tracer.metrics.observe("test_execute_seconds", time.perf_counter() - begin)
        scratch.tests += outcome.attempts
        scratch.retries += outcome.retries
        scratch.timeouts += outcome.timeouts
        if outcome.inconclusive:
            scratch.inconclusive += 1
        return outcome

    def _trusted(self, slot: _Slot, outcome: RobustExecution) -> bool:
        """May this outcome support a verdict?  (Lemma 6.)"""
        return outcome.validated or not getattr(
            slot.component, "fault_injection_active", False
        )

    def _replay(self, slot: _Slot, recording):
        begin = time.perf_counter()
        with self.tracer.span("monitor.replay", steps=len(recording.steps)):
            result = replay(slot.component, recording, port=self.port)
        self.tracer.metrics.observe("monitor_replay_seconds", time.perf_counter() - begin)
        return result

    def _batch_replays(self, pending: list[tuple[int, _Slot, object]]) -> dict[int, object]:
        """Replay ``(key, slot, recording)`` batches through the worker pool.

        Each chunk replays one slot's recordings strictly in submission
        order against that slot's (stateful) component, so observations
        are bit-identical to the sequential path; the pool parallelizes
        *across* slots, whose components are independent (the roadmap's
        batched monitor replays).  Returns ``key → ReplayResult``.
        """
        if not pending:
            return {}
        tracer = self.tracer
        by_slot: dict[int, list[tuple[int, _Slot, object]]] = {}
        for entry in pending:
            by_slot.setdefault(entry[1].index, []).append(entry)

        def replay_chunk(chunk):
            results = []
            for key, slot, recording in chunk:
                begin = time.perf_counter()
                with tracer.span("monitor.replay", steps=len(recording.steps)):
                    result = replay(slot.component, recording, port=self.port)
                results.append((key, result, time.perf_counter() - begin))
            return results

        chunks = [by_slot[index] for index in sorted(by_slot)]
        outputs = get_pool().map("thread", replay_chunk, chunks, workers=len(chunks))
        replayed: dict[int, object] = {}
        for chunk_results in outputs:
            for key, result, seconds in chunk_results:
                tracer.metrics.observe("monitor_replay_seconds", seconds)
                replayed[key] = result
        return replayed

    def _learn_execution(self, slot: _Slot, outcome: RobustExecution, replay_result=None) -> bool:
        """Replay and merge; returns True when knowledge grew."""
        execution = outcome.execution
        assert execution is not None
        before = slot.model.knowledge_size()
        if replay_result is None:
            replay_result = (
                outcome.replay
                if outcome.replay is not None
                else self._replay(slot, execution.recording)
            )
        result = replay_result
        observed = result.observed_run
        with self.tracer.span("learn.merge", verdict=execution.verdict.value):
            if execution.verdict is TestVerdict.BLOCKED:
                slot.model = learn_blocked(
                    slot.model,
                    observed,
                    labeler=slot.labeler,
                    mode=self.refusal_mode,
                    universe=slot.universe,
                    observed_outputs=None,
                )
            else:
                slot.model = learn_regular(slot.model, observed, labeler=slot.labeler)
                if execution.verdict is TestVerdict.DIVERGED:
                    assert execution.divergence_index is not None
                    diverged = execution.recording.steps[execution.divergence_index]
                    source = observed.states[execution.divergence_index]
                    if self.refusal_mode == "deterministic":
                        impossible = [
                            interaction
                            for interaction in slot.universe
                            if interaction.inputs == diverged.inputs
                            and interaction.outputs != diverged.observed_outputs
                        ]
                    else:
                        impossible = [Interaction(diverged.inputs, diverged.expected_outputs)]
                    slot.model = refuse(slot.model, source, impossible, allow_no_progress=True)
        return slot.model.knowledge_size() > before

    # ---------------------------------------------------- deadlock handling

    def _reaction_table(
        self, slot: _Slot, prefix: TestCase, scratch: _MultiScratch
    ) -> dict[frozenset[str], frozenset[str] | None] | None:
        """Probe every input set at the component's post-prefix state.

        Re-runs the (deterministic, already confirmed) prefix once per
        probe.  Returns ``inputs → outputs`` with ``None`` for refused
        inputs, and merges every observation into the model.  Returns
        ``None`` when any probe came back inconclusive — the deadlock is
        then undecided and the caller must quarantine it, not confirm it.
        """
        input_sets = sorted({interaction.inputs for interaction in slot.universe}, key=sorted)
        table: dict[frozenset[str], frozenset[str] | None] = {}
        for inputs in input_sets:
            probe = TestCase(
                name=f"{prefix.name}+probe",
                steps=(*prefix.steps, TestStep(inputs, frozenset())),
            )
            outcome = self._execute(slot, probe, scratch)
            if outcome.inconclusive:
                return None
            execution = outcome.execution
            assert execution is not None
            if execution.divergence_index is not None and execution.divergence_index < len(
                prefix.steps
            ):
                raise SynthesisError(
                    f"component {slot.name!r} did not reproduce its confirmed prefix — "
                    "it is not deterministic"
                )
            last = execution.recording.steps[-1]
            table[inputs] = None if last.blocked else last.observed_outputs
            self._learn_probe(slot, outcome)
        return table

    def _learn_probe(self, slot: _Slot, outcome: RobustExecution) -> None:
        execution = outcome.execution
        assert execution is not None
        result = (
            outcome.replay
            if outcome.replay is not None
            else self._replay(slot, execution.recording)
        )
        observed = result.observed_run
        with self.tracer.span("learn.merge", verdict="probe"):
            if observed.blocked is not None:
                try:
                    slot.model = learn_blocked(
                        slot.model,
                        observed,
                        labeler=slot.labeler,
                        mode=self.refusal_mode,
                        universe=slot.universe,
                        observed_outputs=None,
                    )
                except LearningError:
                    # The refusal was already known (the probe revisited a
                    # decided input); merge the regular prefix only.
                    slot.model = learn_regular(
                        slot.model, Run(observed.start, observed.steps), labeler=slot.labeler
                    )
            else:
                slot.model = learn_regular(slot.model, observed, labeler=slot.labeler)

    def _joint_step_exists(
        self,
        context_state: State | None,
        tables: list[dict[frozenset[str], frozenset[str] | None]],
    ) -> bool:
        """Can a synchronous step be assembled in the real system?

        Enumerates the context's offers (or an idle placeholder when
        there is no context) against every combination of probed
        reactions, requiring each party's inputs to equal exactly what
        the other parties emit towards it.
        """
        from itertools import product as iproduct

        if self.context is not None and context_state is not None:
            offers = [
                (t.interaction.inputs, t.interaction.outputs)
                for t in self.context.transitions_from(context_state)
            ]
            if not offers:
                return False
        else:
            offers = [(frozenset(), frozenset())]

        slot_inputs = [sorted(table) for table in tables]
        for offer_inputs, offer_outputs in offers:
            for combo in iproduct(*slot_inputs):
                outputs = [offer_outputs]
                reactions = []
                feasible = True
                for table, inputs in zip(tables, combo):
                    reaction = table[inputs]
                    if reaction is None:
                        feasible = False
                        break
                    reactions.append(reaction)
                    outputs.append(reaction)
                if not feasible:
                    continue
                # Check every party consumes exactly what the others emit.
                all_outputs = frozenset().union(*outputs)
                if self.context is not None:
                    expected = all_outputs & self.context.inputs
                    if offer_inputs != expected:
                        continue
                ok = True
                for slot, inputs in zip(self.slots, combo):
                    emitted_to_slot = frozenset()
                    for other_output in outputs:
                        emitted_to_slot |= other_output & slot.component.inputs
                    # Remove what the slot itself emitted (outputs are
                    # pairwise disjoint from its own inputs anyway).
                    if inputs != emitted_to_slot:
                        ok = False
                        break
                if ok:
                    return True
        return False

    def _counterexample_batch(
        self, composed: Automaton, formula: Formula, checker: ModelChecker
    ) -> list[Run]:
        with self.tracer.span(
            "counterexample.derive", limit=self.counterexamples_per_iteration
        ):
            return self._counterexample_batch_inner(composed, formula, checker)

    def _counterexample_batch_inner(
        self, composed: Automaton, formula: Formula, checker: ModelChecker
    ) -> list[Run]:
        if self.counterexamples_per_iteration > 1:
            batch = counterexamples(
                composed, formula, checker=checker, limit=self.counterexamples_per_iteration
            )
            if batch:
                return batch
        run = counterexample(composed, formula, checker=checker)
        if run is None:
            raise SynthesisError(f"{formula} was violated but no counterexample was produced")
        return [run]

    # ------------------------------------------------------------------ run

    def run(self) -> MultiSynthesisResult:
        """Execute the parallel loop until proof, real violation, or budget."""
        tracer = self.tracer
        with tracer.span("loop.run", synthesizer="MultiLegacySynthesizer"):
            result = self._run()
        if tracer.enabled:
            get_pool().publish_to(tracer.metrics)
            tracer.metrics.set_gauge("loop_iteration_count", result.iteration_count)
            for slot in self.slots:
                fault_counts = getattr(slot.component, "fault_counts", None)
                if fault_counts:
                    tracer.metrics.absorb(
                        fault_counts, prefix=f"fault_injected_{slot.name}_"
                    )
                remote_stats = getattr(slot.component, "remote_stats", None)
                if remote_stats:
                    tracer.metrics.absorb(
                        remote_stats, prefix=f"remote_{slot.name}_"
                    )
        return result

    def _quarantine_push(self, run, *, probe: bool) -> bool:
        """Quarantine a counterexample; an admission is a recorded anomaly."""
        admitted = self.quarantine.push(run, probe=probe)
        if admitted:
            if self._events:
                self._events.emit(
                    "quarantine.admitted",
                    quarantine_size=len(self.quarantine),
                    probe=probe,
                )
            self.flight.anomaly(
                "quarantine_admission",
                counterexample=repr(run),
                quarantine_size=len(self.quarantine),
            )
        return admitted

    def _run(self) -> MultiSynthesisResult:
        tracer = self.tracer
        records: list[MultiIterationRecord] = []
        self.flight.bind(settings=self.settings, records=lambda: records)
        self._events.emit(
            "loop.started",
            synthesizer="MultiLegacySynthesizer",
            components=[slot.name for slot in self.slots],
            max_iterations=self.max_iterations,
            incremental=self.incremental,
            parallelism=self.parallelism,
            checker_parallelism=self.checker_parallelism,
        )

        def note(rec: MultiIterationRecord) -> None:
            # ``checker`` late-binds to the current iteration's checker.
            records.append(rec)
            if tracer.enabled:
                publish_record(tracer.metrics, rec)
                checker.stats.publish_to(tracer.metrics)
            if self._events:
                self._events.emit(
                    "iteration.finished",
                    iteration=rec.index,
                    property_holds=rec.property_holds,
                    deadlock_free=rec.deadlock_free,
                    violated=rec.violated,
                    fast_conflict=rec.fast_conflict,
                    tests_executed=rec.tests_executed,
                    knowledge_gained=rec.knowledge_gained,
                    test_retries=rec.test_retries,
                    test_timeouts=rec.test_timeouts,
                    tests_inconclusive=rec.tests_inconclusive,
                    quarantine_size=rec.quarantine_size,
                )

        engine = (
            IncrementalVerifier(
                context=self.context,
                universes=[slot.universe for slot in self.slots],
                semantics="open",
                deterministic_implementation=True,
                parallelism=self.parallelism,
                checker_parallelism=self.checker_parallelism,
                dense=self.dense,
                dense_product=self.dense_product,
                product_strategy=self.product_strategy,
                tracer=tracer,
            )
            if self.incremental
            else None
        )
        for index in range(self.max_iterations):
            with tracer.span("loop.iteration", index=index):
                if self._events:
                    self._events.emit("iteration.started", iteration=index)
                if engine is not None:
                    step = engine.step(
                        [slot.model for slot in self.slots],
                        closure_names=[f"chaos({slot.name})" for slot in self.slots],
                        name="multi-closure",
                    )
                    composed = step.composed
                    checker = step.checker
                    step_stats = step.stats
                else:
                    with tracer.span("verify.step", models=len(self.slots)):
                        composed = self._compose()
                        checker = ModelChecker(
                            composed,
                            parallelism=self.checker_parallelism,
                            dense=self.dense,
                            tracer=tracer,
                        )
                    step_stats = None
                with tracer.span("checker.check", kind="property"):
                    property_result = checker.check(self.weakened_property)
                with tracer.span("checker.check", kind="deadlock"):
                    deadlock_result = checker.check(DEADLOCK_FREE)
                if self._events:
                    self._events.emit(
                        "phase.finished",
                        iteration=index,
                        phase="verify",
                        property_holds=property_result.holds,
                        deadlock_free=deadlock_result.holds,
                        composed_states=len(composed.states),
                        checker_fixpoint_work=checker.stats.fixpoint_work,
                        checker_shards=checker.stats.shards,
                        checker_shard_handoffs=checker.stats.shard_handoffs,
                        product_hits=step_stats.product_hits if step_stats else 0,
                        product_misses=step_stats.product_misses if step_stats else 0,
                        product_shards=step_stats.product_shards if step_stats else 0,
                        dirty_states=step_stats.dirty_states if step_stats else 0,
                        affected_states=step_stats.affected_states if step_stats else 0,
                    )
                counter_fields = dict(
                    closure_groups_reused=step_stats.closure_groups_reused if step_stats else 0,
                    closure_groups_rebuilt=step_stats.closure_groups_rebuilt if step_stats else 0,
                    product_hits=step_stats.product_hits if step_stats else 0,
                    product_misses=step_stats.product_misses if step_stats else 0,
                    dirty_states=step_stats.dirty_states if step_stats else 0,
                    affected_states=step_stats.affected_states if step_stats else 0,
                    checker_fixpoint_work=checker.stats.fixpoint_work,
                    product_shards=step_stats.product_shards if step_stats else 0,
                    product_shard_states_explored=(
                        step_stats.shard_states_explored if step_stats else ()
                    ),
                    product_shard_handoffs=(
                        step_stats.shard_handoffs if step_stats else 0
                    ),
                    product_shard_merge_conflicts=(
                        step_stats.shard_merge_conflicts if step_stats else 0
                    ),
                    product_dense_states=(
                        step_stats.product_dense_states if step_stats else 0
                    ),
                    product_bitset_words=(
                        step_stats.product_bitset_words if step_stats else 0
                    ),
                    checker_shards=checker.stats.shards,
                    checker_shard_fixpoint_work=checker.stats.shard_fixpoint_work,
                    checker_shard_handoffs=checker.stats.shard_handoffs,
                    quarantine_size=len(self.quarantine),
                )

                def snapshot() -> tuple[tuple[int, int, int], ...]:
                    return tuple(
                        (len(slot.model.states), len(slot.model.transitions), len(slot.model.refusals))
                        for slot in self.slots
                    )

                if property_result.holds and deadlock_result.holds:
                    note(
                        MultiIterationRecord(
                            index,
                            snapshot(),
                            len(composed.states),
                            True,
                            True,
                            None,
                            None,
                            False,
                            0,
                            (),
                            0,
                            **counter_fields,
                        )
                    )
                    return self._result(Verdict.PROVEN, records, None, None)

                if not property_result.holds:
                    violated = "property"
                    batch = self._counterexample_batch(composed, self.weakened_property, checker)
                else:
                    violated = "deadlock"
                    batch = self._counterexample_batch(composed, DEADLOCK_FREE, checker)
                cex = batch[0]

                def is_chaos_free(candidate: Run) -> bool:
                    return not any(
                        is_chaos_state(self._slot_state(state, slot))
                        for state in candidate.states
                        for slot in self.slots
                    )

                def probing_needed(candidate: Run) -> bool:
                    return violated == "deadlock" or (
                        self._refusal_sensitive and composed.is_deadlock(candidate.last_state)
                    )

                chaos_free = is_chaos_free(cex)
                needs_probing = probing_needed(cex)
                if self.fast_conflict and violated == "property":
                    fast_candidate = next(
                        (
                            candidate
                            for candidate in batch
                            if not probing_needed(candidate) and is_chaos_free(candidate)
                        ),
                        None,
                    )
                    if fast_candidate is not None:
                        cex = fast_candidate
                        chaos_free = True
                        needs_probing = False
                if self.fast_conflict and violated == "property" and not needs_probing and chaos_free:
                    note(
                        MultiIterationRecord(
                            index,
                            snapshot(),
                            len(composed.states),
                            property_result.holds,
                            deadlock_result.holds,
                            violated,
                            cex,
                            True,
                            0,
                            (),
                            0,
                            **counter_fields,
                        )
                    )
                    return self._result(Verdict.REAL_VIOLATION, records, cex, violated)

                before = sum(slot.model.knowledge_size() for slot in self.slots)
                scratch = _MultiScratch()
                learned_names: list[str] = []
                all_confirmed = True
                trusted = True
                for slot in self.slots:
                    case = self._project_case(cex, slot)
                    outcome = self._execute(slot, case, scratch)
                    if outcome.inconclusive:
                        # Undecided on this component, so undecided overall:
                        # quarantine the candidate for a later retry, learn
                        # nothing from it here (Lemma 6).
                        all_confirmed = False
                        self._quarantine_push(cex, probe=False)
                        continue
                    if not self._trusted(slot, outcome):
                        trusted = False
                    assert outcome.execution is not None
                    if outcome.execution.verdict is TestVerdict.CONFIRMED:
                        should_learn = not chaos_free
                    else:
                        all_confirmed = False
                        should_learn = True
                    if should_learn:
                        try:
                            if self._learn_execution(slot, outcome):
                                learned_names.append(slot.name)
                        except LearningError:
                            # A falsely validated recording poisoned the
                            # model earlier; under chaos the contradiction
                            # is injection noise, not component
                            # non-determinism — quarantine and move on.
                            if not getattr(
                                slot.component, "fault_injection_active", False
                            ):
                                raise
                            all_confirmed = False
                            scratch.inconclusive += 1
                            self._quarantine_push(cex, probe=False)
                        except (
                            FaultInjectionError,
                            TestTimeoutError,
                            RemoteComponentError,
                        ):
                            # The host process failed during the learning
                            # replay (unreachable in-process): undecided,
                            # never a verdict — same path as inconclusive.
                            all_confirmed = False
                            scratch.inconclusive += 1
                            self._quarantine_push(cex, probe=False)

                # Extra batch counterexamples — and quarantined runs from
                # earlier iterations — contribute test/learn material only;
                # verdict decisions rest on the primary one.  Probing
                # candidates are skipped (their confirmation protocol is the
                # expensive primary-path one).  Executions run slot by slot,
                # then the monitor replays are batched through the worker
                # pool, one chunk per slot, so independent components replay
                # in parallel (the roadmap's batched-replay item).
                extras: list[tuple[Run, bool]] = [(c, True) for c in batch[1:]]
                fresh = {repr(c) for c in batch}
                extras.extend(
                    (run, False)
                    for run, _ in self.quarantine.drain()
                    if repr(run) not in fresh
                )
                for candidate, from_batch in extras:
                    if candidate is cex or (from_batch and probing_needed(candidate)):
                        continue
                    candidate_chaos_free = is_chaos_free(candidate)
                    staged: list[tuple[_Slot, RobustExecution]] = []
                    for slot in self.slots:
                        case = self._project_case(candidate, slot)
                        outcome = self._execute(slot, case, scratch)
                        if outcome.inconclusive:
                            self._quarantine_push(candidate, probe=False)
                            continue
                        assert outcome.execution is not None
                        if (
                            outcome.execution.verdict is TestVerdict.CONFIRMED
                            and candidate_chaos_free
                        ):
                            continue
                        staged.append((slot, outcome))
                    try:
                        replayed = self._batch_replays(
                            [
                                (position, slot, outcome.execution.recording)
                                for position, (slot, outcome) in enumerate(staged)
                                if outcome.replay is None
                            ]
                        )
                    except (FaultInjectionError, TestTimeoutError, RemoteComponentError):
                        # A host died during the batched replays: this
                        # candidate is learning material only, so retry it
                        # later against a fresh host.
                        scratch.inconclusive += 1
                        self._quarantine_push(candidate, probe=False)
                        continue
                    for position, (slot, outcome) in enumerate(staged):
                        try:
                            if self._learn_execution(
                                slot, outcome, replayed.get(position, outcome.replay)
                            ):
                                learned_names.append(slot.name)
                        except LearningError:
                            # Later candidates may contradict knowledge the
                            # earlier ones just merged; skipping is sound.
                            continue
                        except (FaultInjectionError, TestTimeoutError, RemoteComponentError):
                            scratch.inconclusive += 1
                            self._quarantine_push(candidate, probe=False)
                            continue

                real = False
                if all_confirmed:
                    if needs_probing:
                        tables = []
                        undecided = False
                        for slot in self.slots:
                            prefix = self._project_case(cex, slot)
                            table = self._reaction_table(slot, prefix, scratch)
                            if table is None:
                                undecided = True
                                break
                            tables.append(table)
                            learned_names.append(slot.name)
                        if undecided:
                            # A probe came back inconclusive: the deadlock is
                            # neither confirmed nor refuted.  Quarantine.
                            self._quarantine_push(cex, probe=True)
                        else:
                            context_state = (
                                cex.last_state[0] if self.context is not None else None
                            )
                            real = not self._joint_step_exists(context_state, tables)
                    elif chaos_free:
                        real = True
                if real and not trusted:
                    # Lemma 6: an unvalidated execution cannot witness a real
                    # integration error; retry the candidate instead.
                    self._quarantine_push(cex, probe=False)
                    real = False

                after = sum(slot.model.knowledge_size() for slot in self.slots)
                note(
                    MultiIterationRecord(
                        index,
                        snapshot(),
                        len(composed.states),
                        property_result.holds,
                        deadlock_result.holds,
                        violated,
                        cex,
                        False,
                        scratch.tests,
                        tuple(dict.fromkeys(learned_names)),
                        after - before,
                        **{
                            **counter_fields,
                            "test_retries": scratch.retries,
                            "test_timeouts": scratch.timeouts,
                            "tests_inconclusive": scratch.inconclusive,
                            "quarantine_size": len(self.quarantine),
                        },
                    )
                )
                if real:
                    return self._result(Verdict.REAL_VIOLATION, records, cex, violated)
                if after <= before and scratch.inconclusive == 0:
                    message = (
                        f"iteration {index} made no learning progress — non-deterministic "
                        "component or inconsistent universe"
                    )
                    self.flight.anomaly("synthesis_error", iteration=index, error=message)
                    raise SynthesisError(message)
        return self._result(Verdict.BUDGET_EXCEEDED, records, None, None)

    def _result(
        self,
        verdict: Verdict,
        records: list[MultiIterationRecord],
        witness: Run | None,
        kind: str | None,
    ) -> MultiSynthesisResult:
        result = MultiSynthesisResult(
            verdict=verdict,
            property=self.property,
            iterations=tuple(records),
            final_models={slot.name: slot.model for slot in self.slots},
            violation_witness=witness,
            violation_kind=kind,
            quarantined=self.quarantine.unresolved(),
        )
        if self._events:
            self._events.emit(
                "verdict.reached",
                verdict=verdict.value,
                iterations=result.iteration_count,
                quarantined=len(result.quarantined),
            )
        if verdict is Verdict.BUDGET_EXCEEDED:
            self.flight.anomaly(
                "budget_exceeded",
                iterations=result.iteration_count,
                quarantined=len(result.quarantined),
            )
        return result
