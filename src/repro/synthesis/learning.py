"""The learning step: merging observed runs into the model (§4.3).

Definition 11 merges a *regular* observed run into the incomplete
automaton: new states, new transitions, (new initial states).
Definition 12 merges a *deadlock* run: the blocked interaction becomes
a refusal in ``T̄``.  Both preserve observation conformance, so by
Lemma 7 the chaotic closure of the learned model remains a safe
abstraction (``M_r ⊑ M_a^{i+1}``).

Beyond the literal definitions, :func:`learn` supports the two refusal
modes discussed in §4.3's determinism argument:

* ``conservative`` — record only the single attempted interaction as
  refused (the letter of Definition 12);
* ``deterministic`` (default) — exploit that the implementation is
  (strongly) deterministic: if state ``s`` *reacted* to inputs ``A``
  with outputs ``B_obs``, then every ``(s, A, B)`` with ``B ≠ B_obs``
  is impossible and can be refused wholesale; if ``s`` did not react to
  ``A`` at all, every ``(s, A, B)`` can.  This is sound for the
  components the paper targets ("we will build components such that any
  non-determinism or pseudo non-determinism is excluded") and shortens
  the iteration series considerably.
"""

from __future__ import annotations

from typing import Literal

from ..automata.automaton import Automaton, Transition
from ..automata.incomplete import IncompleteAutomaton, Refusal
from ..automata.interaction import InteractionUniverse
from ..automata.runs import Run
from ..errors import LearningError, ModelError
from .initial import StateLabeler

__all__ = ["RefusalMode", "learn", "learn_regular", "learn_blocked", "refuse"]

RefusalMode = Literal["conservative", "deterministic"]


def refuse(
    model: IncompleteAutomaton,
    state,
    interactions,
    *,
    allow_no_progress: bool = False,
) -> IncompleteAutomaton:
    """Add refusals at a known state, skipping already-known interactions.

    Used by the iterative synthesis after a *divergence*: when a
    deterministic component reacted to inputs ``A`` with outputs
    ``B_obs``, every other ``(A, B)`` at that state is impossible and
    can be refused without a dedicated deadlock run.
    """
    known = {t.interaction for t in model.automaton.transitions_from(state)}
    refusals = set(model.refusals)
    added = False
    for interaction in interactions:
        if interaction in known:
            continue
        refusal = Refusal(state, interaction)
        if refusal not in refusals:
            refusals.add(refusal)
            added = True
    if not added and not allow_no_progress:
        raise LearningError(f"refusal update at {state!r} added nothing new")
    return model.replace(refusals=refusals)


def learn_regular(
    model: IncompleteAutomaton, run: Run, *, labeler: StateLabeler | None = None
) -> IncompleteAutomaton:
    """Definition 11: merge a regular observed run into the model.

    The merge is *incremental*: a run only ever adds states and
    transitions, so instead of rebuilding (and re-sorting,
    re-validating) the whole automaton, only the per-source transition
    slices touched by the run are updated and everything else — states,
    labels, the refusal index — is shared with the previous model.
    """
    if run.blocked is not None:
        raise LearningError("learn_regular expects a regular run; use learn for deadlock runs")
    automaton = model.automaton
    known = automaton.transitions
    refused_by_state = model._refused_by_state
    new_transitions: list[Transition] = []
    seen_new: set[Transition] = set()

    for transition in run.transitions():
        if transition.interaction in refused_by_state.get(transition.source, ()):
            raise LearningError(
                f"observed transition {transition!r} contradicts an earlier refusal: "
                "the component behaved non-deterministically"
            )
        for conflicting in automaton.transitions_from(transition.source):
            if (
                conflicting.interaction == transition.interaction
                and conflicting.target != transition.target
            ):
                raise LearningError(
                    f"observed transition {transition!r} conflicts with known "
                    f"{conflicting!r}: the component behaved non-deterministically"
                )
        if transition in known or transition in seen_new:
            continue
        if not transition.inputs <= automaton.inputs:
            raise ModelError(
                f"automaton {automaton.name!r}: transition {transition!r} consumes signals "
                f"outside I={sorted(automaton.inputs)}"
            )
        if not transition.outputs <= automaton.outputs:
            raise ModelError(
                f"automaton {automaton.name!r}: transition {transition!r} produces signals "
                f"outside O={sorted(automaton.outputs)}"
            )
        seen_new.add(transition)
        new_transitions.append(transition)

    if not new_transitions and run.start in automaton.initial:
        return model

    by_source = dict(automaton._by_source)
    added: dict = {}
    for transition in new_transitions:
        added.setdefault(transition.source, []).append(transition)
    for source, extra in added.items():
        by_source[source] = tuple(
            sorted((*by_source.get(source, ()), *extra), key=Transition.sort_key)
        )
    old_states = automaton.states
    extra_states = {
        state
        for transition in new_transitions
        for state in (transition.source, transition.target)
        if state not in old_states
    }
    labels = automaton._labels
    if labeler is not None and extra_states:
        labels = dict(labels)
        for state in extra_states:
            labels[state] = frozenset(labeler(state))
    merged = Automaton._assemble(
        states=old_states | extra_states | {run.start},
        inputs=automaton.inputs,
        outputs=automaton.outputs,
        by_source=by_source,
        transition_count=automaton.transition_count + len(new_transitions),
        initial=automaton.initial | {run.start},
        labels=labels,
        name=automaton.name,
    )
    # Refusal consistency for the new transitions was checked above and
    # no refusal state disappeared, so the index carries over verbatim.
    learned = object.__new__(IncompleteAutomaton)
    learned.automaton = merged
    learned.refusals = model.refusals
    learned._refused_by_state = refused_by_state
    return learned


def learn_blocked(
    model: IncompleteAutomaton,
    run: Run,
    *,
    labeler: StateLabeler | None = None,
    mode: RefusalMode = "deterministic",
    universe: InteractionUniverse | None = None,
    observed_outputs: frozenset[str] | None = None,
) -> IncompleteAutomaton:
    """Definition 12 (with the deterministic extension): merge a deadlock run.

    The regular prefix is learned per Definition 11 first; the blocked
    tail then becomes refusals.  In ``deterministic`` mode a
    ``universe`` is required: with ``observed_outputs=None`` (no
    reaction at all) every interaction with the blocked inputs is
    refused; with observed outputs ``B_obs`` every interaction with the
    blocked inputs and outputs other than ``B_obs`` is refused.
    """
    if run.blocked is None:
        raise LearningError("learn_blocked expects a deadlock run with a blocked tail")
    prefix = Run(run.start, run.steps)
    merged = learn_regular(model, prefix, labeler=labeler)
    state = run.last_state
    known = {t.interaction for t in merged.automaton.transitions_from(state)}

    refusals = set(merged.refusals)
    if mode == "conservative":
        candidates = [run.blocked]
    else:
        if universe is None:
            raise LearningError("deterministic refusal mode needs the interaction universe")
        candidates = [
            interaction
            for interaction in universe
            if interaction.inputs == run.blocked.inputs
            and (observed_outputs is None or interaction.outputs != observed_outputs)
        ]
        if run.blocked not in candidates and run.blocked not in known:
            candidates.append(run.blocked)
    added = False
    for interaction in candidates:
        if interaction in known:
            raise LearningError(
                f"refusal of {interaction} at {state!r} contradicts a known transition: "
                "the component behaved non-deterministically"
            )
        refusal = Refusal(state, interaction)
        if refusal not in refusals:
            refusals.add(refusal)
            added = True
    if not added:
        raise LearningError(
            f"deadlock run added no new refusal at {state!r}: the learning step made no progress"
        )
    return merged.replace(refusals=refusals)


def learn(
    model: IncompleteAutomaton,
    run: Run,
    *,
    labeler: StateLabeler | None = None,
    mode: RefusalMode = "deterministic",
    universe: InteractionUniverse | None = None,
    observed_outputs: frozenset[str] | None = None,
) -> IncompleteAutomaton:
    """Merge an observed run — regular or deadlock — into the model."""
    if run.blocked is None:
        return learn_regular(model, run, labeler=labeler)
    return learn_blocked(
        model,
        run,
        labeler=labeler,
        mode=mode,
        universe=universe,
        observed_outputs=observed_outputs,
    )
