"""Iterative behavior synthesis — the paper's primary contribution (§3–4).

Initial synthesis from the structural interface, the verify → test →
learn loop with chaotic-closure abstractions, and reporting in the
paper's notation.
"""

from .initial import StateLabeler, initial_abstraction, initial_model
from .iterate import (
    CounterexampleStrategy,
    IntegrationSynthesizer,
    IterationRecord,
    SynthesisResult,
    Verdict,
)
from .learning import RefusalMode, learn, learn_blocked, learn_regular, refuse
from .multi import MultiIterationRecord, MultiLegacySynthesizer, MultiSynthesisResult
from .settings import SynthesisSettings
from .report import (
    coverage_summary,
    knowledge_gaps,
    render_counter_totals,
    render_counterexample_listing,
    render_iteration_table,
    render_markdown_report,
    render_state,
    result_to_dict,
    summarize,
)

__all__ = [
    "initial_model",
    "initial_abstraction",
    "StateLabeler",
    "learn",
    "learn_regular",
    "learn_blocked",
    "refuse",
    "RefusalMode",
    "IntegrationSynthesizer",
    "SynthesisResult",
    "SynthesisSettings",
    "IterationRecord",
    "Verdict",
    "CounterexampleStrategy",
    "MultiLegacySynthesizer",
    "MultiSynthesisResult",
    "MultiIterationRecord",
    "render_counterexample_listing",
    "render_iteration_table",
    "render_state",
    "summarize",
    "result_to_dict",
    "knowledge_gaps",
    "coverage_summary",
    "render_counter_totals",
    "render_markdown_report",
]
