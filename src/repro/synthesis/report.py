"""Rendering synthesis artifacts in the paper's notation.

Counterexamples print in the shape of Listing 1.1 — alternating lines
of composed states (``shuttle1.noConvoy, shuttle2.s_all``) and message
exchanges (``shuttle2.convoyProposal!, shuttle1.convoyProposal?``) —
and synthesis runs summarize into a per-iteration table.
"""

from __future__ import annotations

from ..automata.automaton import State
from ..automata.chaos import ChaosState, ClosureState
from ..automata.interaction import Interaction
from ..automata.runs import Run
from ..obs.metrics import record_counters
from .iterate import SynthesisResult

__all__ = [
    "SCHEMA_VERSION",
    "render_state",
    "render_counterexample_listing",
    "render_iteration_table",
    "summarize",
    "result_to_dict",
    "knowledge_gaps",
    "coverage_summary",
    "render_counter_totals",
    "render_markdown_report",
]

#: Version of the :func:`result_to_dict` JSON shape.  Bump the minor
#: component when keys are added (consumers tolerate extras), the major
#: component when keys are renamed, removed, or change meaning.
SCHEMA_VERSION = "1.1"


def knowledge_gaps(model, universe):
    """The interactions still *unknown* per learned state.

    A ``PROVEN`` verdict means the context never needs these — claim C2
    made concrete: everything returned here is behavior the proof did
    not have to learn.  Returns ``{state: frozenset[Interaction]}``,
    omitting states with no gaps.
    """
    gaps = {}
    for state in sorted(model.states, key=repr):
        known = {t.interaction for t in model.automaton.transitions_from(state)}
        refused = model.refused(state)
        unknown = frozenset(
            interaction
            for interaction in universe
            if interaction not in known and interaction not in refused
        )
        if unknown:
            gaps[state] = unknown
    return gaps


def coverage_summary(model, universe) -> str:
    """Human-readable knowledge coverage of a learned model."""
    total = len(model.states) * len(universe)
    decided = sum(
        len({t.interaction for t in model.automaton.transitions_from(state)})
        + len(model.refused(state))
        for state in model.states
    )
    gaps = knowledge_gaps(model, universe)
    lines = [
        f"knowledge coverage: {decided}/{total} (state, interaction) pairs decided "
        f"({100.0 * decided / total:.0f}%)" if total else "knowledge coverage: empty model",
    ]
    for state, unknown in gaps.items():
        rendered = ", ".join(str(interaction) for interaction in sorted(unknown, key=lambda i: i.sort_key()))
        lines.append(f"  {render_state(state)}: unknown {rendered}")
    if not gaps:
        lines.append("  (complete for the universe)")
    return "\n".join(lines)


def render_state(state: State) -> str:
    """A closure/chaos/plain state in the figures' notation."""
    if isinstance(state, ChaosState):
        return state.kind
    if isinstance(state, ClosureState):
        return render_state(state.base)
    if isinstance(state, tuple):
        return "(" + ", ".join(render_state(part) for part in state) + ")"
    return str(state)


def _message_line(
    interaction: Interaction,
    *,
    context_name: str,
    legacy_name: str,
    legacy_inputs: frozenset[str],
    legacy_outputs: frozenset[str],
) -> str:
    parts: list[str] = []
    for signal in sorted(interaction.outputs & legacy_outputs):
        parts.append(f"{legacy_name}.{signal}!, {context_name}.{signal}?")
    for signal in sorted(interaction.inputs & legacy_inputs):
        parts.append(f"{context_name}.{signal}!, {legacy_name}.{signal}?")
    remaining = (interaction.outputs - legacy_outputs) | (
        interaction.inputs - legacy_inputs - interaction.outputs
    )
    for signal in sorted(remaining - legacy_inputs - legacy_outputs):
        parts.append(f"{context_name}.{signal}")
    return "; ".join(parts) if parts else "(idle)"


def render_counterexample_listing(
    run: Run,
    *,
    context_name: str = "shuttle1",
    legacy_name: str = "shuttle2",
    legacy_inputs: frozenset[str],
    legacy_outputs: frozenset[str],
) -> str:
    """Render a composed counterexample run like the paper's Listing 1.1."""

    def state_line(state: State) -> str:
        if not isinstance(state, tuple) or len(state) != 2:
            return render_state(state)
        context_state, legacy_state = state
        return (
            f"{context_name}.{render_state(context_state)}, "
            f"{legacy_name}.{render_state(legacy_state)}"
        )

    lines = [state_line(run.start)]
    current = run.start
    for interaction, target in run.steps:
        lines.append(
            _message_line(
                interaction,
                context_name=context_name,
                legacy_name=legacy_name,
                legacy_inputs=legacy_inputs,
                legacy_outputs=legacy_outputs,
            )
        )
        lines.append(state_line(target))
        current = target
    if run.blocked is not None:
        lines.append(
            "blocked: "
            + _message_line(
                run.blocked,
                context_name=context_name,
                legacy_name=legacy_name,
                legacy_inputs=legacy_inputs,
                legacy_outputs=legacy_outputs,
            )
        )
    del current
    return "\n".join(lines)


def render_iteration_table(result: SynthesisResult) -> str:
    """A fixed-width per-iteration table of a synthesis run.

    One header line, one row per iteration (pinned by the tests) — the
    incremental/sharding work counters ride along as the last four
    columns, sourced from :func:`repro.obs.metrics.record_counters` so
    the table and the JSON export can never disagree.
    """
    header = (
        f"{'it':>3} {'|S_l|':>5} {'|T|':>5} {'|T̄|':>5} {'|closure|':>9} "
        f"{'φ':>5} {'¬δ':>5} {'violated':>9} {'test':>10} {'gain':>5} "
        f"{'hits':>6} {'miss':>6} {'fixwork':>8} {'handoff':>8}"
    )
    rows = [header, "-" * len(header)]
    for record in result.iterations:
        counters = record_counters(record)
        handoffs = counters["product_shard_handoffs"] + counters["checker_shard_handoffs"]
        rows.append(
            f"{record.index:>3} {record.model_states:>5} {record.model_transitions:>5} "
            f"{record.model_refusals:>5} {record.closure_states:>9} "
            f"{str(record.property_holds):>5} {str(record.deadlock_free):>5} "
            f"{record.violated or '-':>9} "
            f"{(record.test_verdict.value if record.test_verdict else ('fast' if record.fast_conflict else '-')):>10} "
            f"{record.knowledge_gained:>5} "
            f"{counters['product_hits']:>6} {counters['product_misses']:>6} "
            f"{counters['checker_fixpoint_work']:>8} {handoffs:>8}"
        )
    return "\n".join(rows)


def _run_to_jsonable(run) -> dict | None:
    if run is None:
        return None
    return {
        "start": render_state(run.start),
        "steps": [
            {"interaction": str(interaction), "target": render_state(target)}
            for interaction, target in run.steps
        ],
        "blocked": str(run.blocked) if run.blocked is not None else None,
    }


def result_to_dict(result: SynthesisResult) -> dict:
    """A JSON-serialisable audit record of a synthesis run.

    Contains the verdict, the property, per-iteration statistics, and
    the violation witness (rendered states/interactions) — everything a
    CI pipeline or report generator needs, without live objects.  The
    shape is versioned by the leading ``schema_version`` key (see
    :data:`SCHEMA_VERSION`), pinned by ``tests/test_report.py``.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "verdict": result.verdict.value,
        "property": str(result.property),
        "violation_kind": result.violation_kind,
        "violation_witness": _run_to_jsonable(result.violation_witness),
        "totals": {
            "iterations": result.iteration_count,
            "tests": result.total_tests,
            "replays": result.total_replays,
            "learned_states": result.learned_states,
            "learned_transitions": result.learned_transitions,
            "learned_refusals": result.learned_refusals,
        },
        "iterations": [
            {
                "index": record.index,
                "model": {
                    "states": record.model_states,
                    "transitions": record.model_transitions,
                    "refusals": record.model_refusals,
                },
                "closure_states": record.closure_states,
                "composed_states": record.composed_states,
                "property_holds": record.property_holds,
                "deadlock_free": record.deadlock_free,
                "violated": record.violated,
                "fast_conflict": record.fast_conflict,
                "test_verdict": record.test_verdict.value if record.test_verdict else None,
                "tests_executed": record.tests_executed,
                "knowledge_gained": record.knowledge_gained,
                # Incremental/sharding counters in the two namespaces of
                # StepStats (product_*) and CheckerStats (checker_*);
                # record_counters is the single source of this shape.
                "counters": record_counters(record),
            }
            for record in result.iterations
        ],
    }


def render_counter_totals(result: SynthesisResult) -> str:
    """Run totals of the ``product_*`` / ``checker_*`` counter namespaces.

    Aggregates :func:`repro.obs.metrics.record_counters` over every
    iteration: work counters sum, ``*_shards`` (configuration) take the
    maximum, and per-shard lists sum element-wise.
    """
    totals: dict[str, int | list[int]] = {}
    for record in result.iterations:
        for name, value in record_counters(record).items():
            if isinstance(value, list):
                merged = list(totals.get(name, []))
                merged += [0] * (len(value) - len(merged))
                for index, item in enumerate(value):
                    merged[index] += item
                totals[name] = merged
            elif name in ("product_shards", "checker_shards"):
                totals[name] = max(int(totals.get(name, 0)), value)
            else:
                totals[name] = int(totals.get(name, 0)) + value
    width = max(len(name) for name in totals) if totals else 0
    lines = []
    for name, value in totals.items():
        rendered = " ".join(str(item) for item in value) if isinstance(value, list) else value
        lines.append(f"{name:<{width}}  {rendered}")
    return "\n".join(lines)


def render_markdown_report(
    result: SynthesisResult,
    *,
    universe=None,
    legacy_inputs: frozenset[str] | None = None,
    legacy_outputs: frozenset[str] | None = None,
    title: str = "Integration report",
) -> str:
    """A complete, self-contained markdown report of one synthesis run.

    Suitable for attaching to a CI job or review ticket: verdict and
    totals, the per-iteration table, the violation witness in the
    paper's listing notation (when signal sets are supplied), and the
    knowledge-coverage appendix (when a universe is supplied).
    """
    sections = [f"# {title}", "", "```", summarize(result), "```", ""]
    sections += ["## Iterations", "", "```", render_iteration_table(result), "```", ""]
    sections += ["## Counters", "", "```", render_counter_totals(result), "```", ""]
    if result.violation_witness is not None and legacy_inputs is not None and legacy_outputs is not None:
        sections += [
            "## Violation witness",
            "",
            "```",
            render_counterexample_listing(
                result.violation_witness,
                legacy_inputs=legacy_inputs,
                legacy_outputs=legacy_outputs,
            ),
            "```",
            "",
        ]
    if universe is not None:
        sections += [
            "## Learned-knowledge coverage",
            "",
            "```",
            coverage_summary(result.final_model, universe),
            "```",
            "",
        ]
    return "\n".join(sections)


def summarize(result: SynthesisResult) -> str:
    """A short human-readable summary of a synthesis run."""
    lines = [
        f"verdict: {result.verdict.value}",
        f"property: {result.property}",
        f"iterations: {result.iteration_count}",
        f"tests executed: {result.total_tests} (replays: {result.total_replays})",
        (
            "learned model: "
            f"{result.learned_states} states, {result.learned_transitions} transitions, "
            f"{result.learned_refusals} refusals"
        ),
    ]
    if result.violation_witness is not None:
        lines.append(f"violation kind: {result.violation_kind}")
    return "\n".join(lines)
