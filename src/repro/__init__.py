"""repro — Correct legacy component integration in Mechatronic UML.

A from-scratch reproduction of Giese, Henkler, Hirsch: *Combining
Formal Verification and Testing for Correct Legacy Component
Integration in Mechatronic UML* (Architecting Dependable Systems V,
LNCS 5135, 2008; presented at DSN 2007 WADS).

The library answers one question: *given a component-based real-time
architecture that embeds a legacy component whose behavior model is
unknown, is the integration correct?* — without reverse-engineering or
learning the whole legacy component.  The scheme combines:

* **compositional formal verification** of the context composed with a
  *safe over-approximation* (chaotic closure) of the legacy component,
* **counterexample-based testing** with deterministic replay against
  the real component, and
* **learning** of the observed behavior into ever more precise safe
  abstractions, until the property is proven or a real failure found.

The package root is the stable facade: ``integrate`` and
``SynthesisSettings``, both synthesizers with their result/record
types, ``result_to_dict`` (the versioned JSON export), and the full
error taxonomy are re-exported here and listed in ``__all__``.
Downstream code should import from ``repro`` directly; the deep module
paths remain importable but are not part of the stability contract.

Quickstart::

    from repro import IntegrationSynthesizer, Verdict, railcab

    synthesizer = IntegrationSynthesizer(
        railcab.front_role_automaton(),          # the context M_a^c
        railcab.faulty_rear_shuttle(),           # the legacy component M_r
        railcab.PATTERN_CONSTRAINT,              # the property φ
        labeler=railcab.rear_state_labeler,
    )
    result = synthesizer.run()
    assert result.verdict is Verdict.REAL_VIOLATION

Subpackages
-----------
``repro.automata``
    Discrete-time I/O automata, composition, refinement, chaotic closure.
``repro.logic``
    CCTL formulas, model checking, counterexamples, compositionality.
``repro.rtsc``
    Real-Time Statecharts and their unfolding semantics.
``repro.muml``
    Coordination patterns, connectors, components, architectures.
``repro.legacy``
    The executable black-box legacy component harness.
``repro.testing``
    Counterexample-based testing and deterministic replay.
``repro.synthesis``
    The iterative verify → test → learn loop (the paper's contribution).
``repro.baselines``
    Angluin's L*, W-method conformance testing, black-box checking.
``repro.railcab``
    The RailCab shuttle running example.
"""

from . import (
    automata,
    automotive,
    codegen,
    integration,
    legacy,
    logic,
    muml,
    persistence,
    railcab,
    rtsc,
    synthesis,
    testing,
    workloads,
)
from .integration import IntegrationReport, integrate
from .synthesis import (
    IntegrationSynthesizer,
    IterationRecord,
    MultiIterationRecord,
    MultiLegacySynthesizer,
    MultiSynthesisResult,
    SynthesisResult,
    SynthesisSettings,
    Verdict,
    result_to_dict,
)
from .errors import (
    BudgetExceededError,
    CompositionError,
    CounterexampleError,
    ExecutionError,
    FaultInjectionError,
    FormulaError,
    LearningError,
    ModelError,
    NotCompositionalError,
    ParseError,
    RefinementError,
    ReplayError,
    ReproError,
    SynthesisError,
    TestTimeoutError,
)

__version__ = "1.0.0"

__all__ = [
    "automata",
    "logic",
    "rtsc",
    "muml",
    "legacy",
    "testing",
    "synthesis",
    "railcab",
    "automotive",
    "workloads",
    "persistence",
    "integration",
    "codegen",
    "integrate",
    "IntegrationReport",
    "SynthesisSettings",
    "IntegrationSynthesizer",
    "SynthesisResult",
    "IterationRecord",
    "Verdict",
    "MultiLegacySynthesizer",
    "MultiSynthesisResult",
    "MultiIterationRecord",
    "result_to_dict",
    "ReproError",
    "ModelError",
    "CompositionError",
    "RefinementError",
    "FormulaError",
    "ParseError",
    "NotCompositionalError",
    "CounterexampleError",
    "ExecutionError",
    "FaultInjectionError",
    "TestTimeoutError",
    "ReplayError",
    "SynthesisError",
    "LearningError",
    "BudgetExceededError",
    "__version__",
]
