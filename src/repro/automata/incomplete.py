"""Incomplete automata (Definitions 6 and 7 of the paper).

An incomplete automaton ``M = (S, I, O, T, T̄, Q)`` records *partial*
knowledge about a component: ``T`` holds the interactions known to be
possible, and the refusal set ``T̄ ⊆ S × ℘(I) × ℘(O)`` holds the
interactions known to be **impossible** (observed to block).  Everything
mentioned in neither set is simply *unknown* — the chaotic closure
(:mod:`repro.automata.chaos`) later interprets the unknown part
pessimistically.

Deadlock runs of an incomplete automaton exist only where ``T̄`` says so
(Definition 7): unknown interactions do not implicitly deadlock.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..errors import ModelError
from .automaton import Automaton, State, Transition
from .interaction import Interaction, InteractionUniverse
from .runs import Run

__all__ = ["Refusal", "IncompleteAutomaton"]


class Refusal:
    """One element of ``T̄``: interaction known to be blocked in a state."""

    __slots__ = ("state", "interaction", "_hash")

    def __init__(self, state: State, interaction: Interaction):
        self.state = state
        self.interaction = interaction

    def _key(self) -> tuple:
        return (self.state, self.interaction)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Refusal):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        # Refusal sets are rebuilt on every learning step; cache the
        # hash so those set operations stay cheap (cf. Transition).
        try:
            return self._hash
        except AttributeError:
            value = hash((self.state, self.interaction))
            self._hash = value
            return value

    def __repr__(self) -> str:
        return f"Refusal({self.state!r}, {self.interaction})"


def _as_refusal(item: "Refusal | tuple") -> Refusal:
    if isinstance(item, Refusal):
        return item
    if isinstance(item, tuple):
        if len(item) == 2:
            state, interaction = item
            if not isinstance(interaction, Interaction):
                interaction = Interaction(*interaction)
            return Refusal(state, interaction)
        if len(item) == 3:
            state, inputs, outputs = item
            return Refusal(state, Interaction(inputs, outputs))
    raise TypeError(f"cannot interpret {item!r} as a refusal")


class IncompleteAutomaton:
    """Immutable incomplete automaton ``(S, I, O, T, T̄, Q)``.

    Definition 6's consistency requirement — no interaction is both a
    transition and a refusal — is validated at construction time.
    """

    __slots__ = ("automaton", "refusals", "_refused_by_state")

    def __init__(
        self,
        *,
        states: Iterable[State] = (),
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        transitions: Iterable[Transition | tuple] = (),
        refusals: Iterable[Refusal | tuple] = (),
        initial: Iterable[State],
        labels: Mapping[State, Iterable[str]] | None = None,
        name: str = "M",
    ):
        self.automaton = Automaton(
            states=states,
            inputs=inputs,
            outputs=outputs,
            transitions=transitions,
            initial=initial,
            labels=labels,
            name=name,
        )
        self.refusals = frozenset(_as_refusal(r) for r in refusals)
        self._index_refusals()

    def _index_refusals(self) -> None:
        """Validate ``T̄`` against the automaton and index it by state."""
        automaton = self.automaton
        name = automaton.name
        refused: dict[State, set[Interaction]] = {}
        for refusal in self.refusals:
            if refusal.state not in automaton.states:
                raise ModelError(
                    f"incomplete automaton {name!r}: refusal {refusal!r} names an unknown state"
                )
            if not refusal.interaction.inputs <= automaton.inputs:
                raise ModelError(f"refusal {refusal!r} consumes signals outside I")
            if not refusal.interaction.outputs <= automaton.outputs:
                raise ModelError(f"refusal {refusal!r} produces signals outside O")
            refused.setdefault(refusal.state, set()).add(refusal.interaction)
        self._refused_by_state = {s: frozenset(i) for s, i in refused.items()}
        # Consistency (Definition 6): only states with refusals can clash.
        for state, refused_set in self._refused_by_state.items():
            for transition in automaton.transitions_from(state):
                if transition.interaction in refused_set:
                    raise ModelError(
                        f"incomplete automaton {name!r} is inconsistent (Definition 6): "
                        f"{transition!r} is both a transition and a refusal"
                    )

    # ---------------------------------------------------------------- access

    @property
    def name(self) -> str:
        return self.automaton.name

    @property
    def states(self) -> frozenset[State]:
        return self.automaton.states

    @property
    def inputs(self) -> frozenset[str]:
        return self.automaton.inputs

    @property
    def outputs(self) -> frozenset[str]:
        return self.automaton.outputs

    @property
    def transitions(self) -> frozenset[Transition]:
        return self.automaton.transitions

    @property
    def initial(self) -> frozenset[State]:
        return self.automaton.initial

    def labels(self, state: State) -> frozenset[str]:
        return self.automaton.labels(state)

    def refused(self, state: State) -> frozenset[Interaction]:
        """The interactions known to be blocked in ``state``."""
        if state not in self.states:
            raise ModelError(f"incomplete automaton {self.name!r} has no state {state!r}")
        return self._refused_by_state.get(state, frozenset())

    def status(self, state: State, interaction: Interaction) -> str:
        """``'known'``, ``'refused'``, or ``'unknown'`` for ``(s, A, B)``."""
        if any(
            t.interaction == interaction for t in self.automaton.transitions_from(state)
        ):
            return "known"
        if interaction in self.refused(state):
            return "refused"
        return "unknown"

    def is_deterministic(self) -> bool:
        """§2.6: ≤ 1 entry per ``(s, A, B)`` across ``T`` and ``T̄``."""
        seen: set[tuple[State, Interaction]] = set()
        for transition in self.transitions:
            key = (transition.source, transition.interaction)
            if key in seen:
                return False
            seen.add(key)
        for refusal in self.refusals:
            key = (refusal.state, refusal.interaction)
            if key in seen:
                return False
            seen.add(key)
        return len(self.initial) <= 1

    def is_complete(self, universe: InteractionUniverse) -> bool:
        """Definition 6's final completeness: every interaction decided."""
        for state in self.states:
            enabled = {t.interaction for t in self.automaton.transitions_from(state)}
            refused = self.refused(state)
            for interaction in universe:
                if (interaction in enabled) == (interaction in refused):
                    return False
        return True

    def knowledge_size(self) -> int:
        """``|T| + |T̄|`` — the strictly monotone progress measure of §4.4."""
        return len(self.transitions) + len(self.refusals)

    # --------------------------------------------------------------- updates

    def replace(
        self,
        *,
        transitions: Iterable[Transition | tuple] | None = None,
        refusals: Iterable[Refusal | tuple] | None = None,
        states: Iterable[State] | None = None,
        initial: Iterable[State] | None = None,
        labels: Mapping[State, Iterable[str]] | None = None,
        name: str | None = None,
    ) -> "IncompleteAutomaton":
        if (
            refusals is not None
            and transitions is None
            and states is None
            and initial is None
            and labels is None
            and name is None
        ):
            # Only ``T̄`` changes: share the (immutable) automaton instead
            # of rebuilding and re-validating it.  The refusal-learning
            # step of Definition 12 hits this path on every iteration.
            clone = object.__new__(IncompleteAutomaton)
            clone.automaton = self.automaton
            clone.refusals = frozenset(_as_refusal(r) for r in refusals)
            clone._index_refusals()
            return clone
        return IncompleteAutomaton(
            states=self.states if states is None else states,
            inputs=self.inputs,
            outputs=self.outputs,
            transitions=self.transitions if transitions is None else transitions,
            refusals=self.refusals if refusals is None else refusals,
            initial=self.initial if initial is None else initial,
            labels=dict(self.automaton.label_map) if labels is None else labels,
            name=self.name if name is None else name,
        )

    # ------------------------------------------------------------------ runs

    def is_run(self, run: Run) -> bool:
        """Definition 7: deadlock runs must end in an explicit refusal."""
        if run.start not in self.initial:
            return False
        current = run.start
        for interaction, target in run.steps:
            if Transition(current, interaction, target) not in self.transitions:
                return False
            current = target
        if run.blocked is not None:
            return run.blocked in self.refused(current)
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IncompleteAutomaton):
            return NotImplemented
        return self.automaton == other.automaton and self.refusals == other.refusals

    def __hash__(self) -> int:
        return hash((self.automaton, self.refusals))

    def __repr__(self) -> str:
        return (
            f"IncompleteAutomaton(name={self.name!r}, |S|={len(self.states)}, "
            f"|T|={len(self.transitions)}, |T̄|={len(self.refusals)})"
        )
