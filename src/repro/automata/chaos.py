"""Chaotic automaton and chaotic closure (Definitions 8 and 9, §2.7).

The *chaotic automaton* is the maximal behavior over given signal sets:
state ``s_∀`` accepts every interaction (and may at any point move to
``s_δ``), and ``s_δ`` blocks everything.  Both are initial.

The *chaotic closure* ``chaos(M)`` of an incomplete automaton ``M``
interprets everything ``M`` does not know pessimistically: every known
state ``s`` is doubled into ``(s, 0)`` — "no further extension exists,
this state may already block" — and ``(s, 1)`` — "any extension may
exist", from which every interaction not explicitly refused by ``T̄``
escapes into the chaotic automaton.  By Theorem 1, ``chaos(M)`` is a
safe abstraction of every deterministic implementation that ``M`` is
observation-conforming to: ``M_r ⊑ chaos(M)``.

Instead of duplicating the chaos states per subset of the proposition
set, both chaos states carry the fresh proposition
:data:`CHAOS_PROPOSITION` and formulas are weakened accordingly
(``p ↦ p ∨ chaos``, ``¬p ↦ ¬p ∨ chaos`` — see
:func:`repro.logic.compositional.weaken_for_chaos`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ModelError
from .automaton import Automaton, State, Transition
from .incomplete import IncompleteAutomaton
from .interaction import InteractionUniverse
from .runs import Run

__all__ = [
    "CHAOS_PROPOSITION",
    "ClosureState",
    "ChaosState",
    "S_ALL",
    "S_DELTA",
    "chaotic_automaton",
    "chaotic_closure",
    "is_chaos_state",
    "closure_base_state",
    "run_stays_in_learned_part",
]

#: The fresh proposition ``p'`` of §2.7 carried by the chaos states.
CHAOS_PROPOSITION = "chaos"


@dataclass(frozen=True, slots=True)
class ClosureState:
    """A doubled state ``(s, 0)`` or ``(s, 1)`` of Definition 9."""

    base: State
    extended: bool

    def __repr__(self) -> str:
        return f"({self.base!r},{1 if self.extended else 0})"


@dataclass(frozen=True, slots=True)
class ChaosState:
    """One of the two chaotic states ``s_∀`` / ``s_δ`` of Definition 8."""

    kind: str

    def __repr__(self) -> str:
        return self.kind


#: The all-accepting chaotic state (``s_∀``, rendered ``s_all``).
S_ALL = ChaosState("s_all")
#: The all-blocking chaotic state (``s_δ``, rendered ``s_delta``).
S_DELTA = ChaosState("s_delta")


def is_chaos_state(state: State) -> bool:
    """True for ``s_∀`` and ``s_δ`` (also inside composed tuple states)."""
    return isinstance(state, ChaosState)


def closure_base_state(state: State) -> State | None:
    """The original ``M`` state behind a closure state, ``None`` for chaos."""
    if isinstance(state, ClosureState):
        return state.base
    if isinstance(state, ChaosState):
        return None
    raise ModelError(f"{state!r} is not a chaotic-closure state")


def run_stays_in_learned_part(run: Run) -> bool:
    """Does a closure run avoid ``s_∀``/``s_δ`` entirely?

    §4.2: a counterexample that never visits the chaotic states maps
    one-to-one onto a run of the learned (hence real, for a
    deterministic implementation) behavior — it proves a conflict
    without further testing ("fast conflict detection").
    """
    return not any(is_chaos_state(state) for state in run.states)


def chaotic_automaton(universe: InteractionUniverse, *, name: str = "M_c") -> Automaton:
    """The chaotic automaton of Definition 8 over the given alphabet."""
    transitions = []
    for interaction in universe:
        transitions.append(Transition(S_ALL, interaction, S_ALL))
        transitions.append(Transition(S_ALL, interaction, S_DELTA))
    return Automaton(
        states=[S_ALL, S_DELTA],
        inputs=universe.inputs,
        outputs=universe.outputs,
        transitions=transitions,
        initial=[S_ALL, S_DELTA],
        labels={S_ALL: {CHAOS_PROPOSITION}, S_DELTA: {CHAOS_PROPOSITION}},
        name=name,
    )


def chaotic_closure(
    incomplete: IncompleteAutomaton,
    universe: InteractionUniverse,
    *,
    deterministic_implementation: bool = False,
    name: str | None = None,
) -> Automaton:
    """``chaos(M)`` of Definition 9.

    The alphabet of the closure is fixed by ``universe``, which plays the
    role of "all possible input and output combinations" in the
    definition; it must range over exactly the incomplete automaton's
    signal sets.

    With ``deterministic_implementation=True`` the ``(s,1)`` escapes are
    built only for interactions that are *unknown* at ``s`` — neither in
    ``T`` nor in ``T̄``.  Definition 9 literally escapes for everything
    not in ``T̄``, but for a §2.6-deterministic implementation an
    interaction already recorded in ``T`` has a unique, known successor,
    so escaping for it adds no behavior the implementation can exhibit
    (Theorem 1 still holds) while it *would* let the model checker keep
    producing counterexamples the learner can extract nothing new from.
    The iterative synthesis therefore uses this variant — it is what
    makes every learning step strictly increase ``|T| + |T̄|`` (§4.4's
    termination measure).
    """
    if universe.inputs != incomplete.inputs or universe.outputs != incomplete.outputs:
        raise ModelError(
            f"universe signals (I={sorted(universe.inputs)}, O={sorted(universe.outputs)}) do not "
            f"match automaton {incomplete.name!r} "
            f"(I={sorted(incomplete.inputs)}, O={sorted(incomplete.outputs)})"
        )

    transitions: list[Transition] = []
    # 1) Known transitions, doubled over the (·,0)/(·,1) tags.
    for transition in incomplete.transitions:
        for src_tag in (False, True):
            for dst_tag in (False, True):
                transitions.append(
                    Transition(
                        ClosureState(transition.source, src_tag),
                        transition.interaction,
                        ClosureState(transition.target, dst_tag),
                    )
                )
    # 2) Escapes to chaos from every (s,1) for interactions not refused by T̄
    #    (and, for deterministic implementations, not already known in T).
    for state in incomplete.states:
        refused = incomplete.refused(state)
        known = (
            frozenset(t.interaction for t in incomplete.automaton.transitions_from(state))
            if deterministic_implementation
            else frozenset()
        )
        for interaction in universe:
            if interaction in refused or interaction in known:
                continue
            source = ClosureState(state, True)
            transitions.append(Transition(source, interaction, S_ALL))
            transitions.append(Transition(source, interaction, S_DELTA))
    # 3) The chaotic core itself.
    for interaction in universe:
        transitions.append(Transition(S_ALL, interaction, S_ALL))
        transitions.append(Transition(S_ALL, interaction, S_DELTA))

    states = [ClosureState(s, tag) for s in incomplete.states for tag in (False, True)]
    states.extend([S_ALL, S_DELTA])
    labels: dict[State, frozenset[str]] = {
        ClosureState(s, tag): incomplete.labels(s) for s in incomplete.states for tag in (False, True)
    }
    labels[S_ALL] = frozenset({CHAOS_PROPOSITION})
    labels[S_DELTA] = frozenset({CHAOS_PROPOSITION})
    initial = [ClosureState(q, tag) for q in incomplete.initial for tag in (False, True)]
    return Automaton(
        states=states,
        inputs=incomplete.inputs,
        outputs=incomplete.outputs,
        transitions=transitions,
        initial=initial,
        labels=labels,
        name=name if name is not None else f"chaos({incomplete.name})",
    )
