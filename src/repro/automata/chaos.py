"""Chaotic automaton and chaotic closure (Definitions 8 and 9, §2.7).

The *chaotic automaton* is the maximal behavior over given signal sets:
state ``s_∀`` accepts every interaction (and may at any point move to
``s_δ``), and ``s_δ`` blocks everything.  Both are initial.

The *chaotic closure* ``chaos(M)`` of an incomplete automaton ``M``
interprets everything ``M`` does not know pessimistically: every known
state ``s`` is doubled into ``(s, 0)`` — "no further extension exists,
this state may already block" — and ``(s, 1)`` — "any extension may
exist", from which every interaction not explicitly refused by ``T̄``
escapes into the chaotic automaton.  By Theorem 1, ``chaos(M)`` is a
safe abstraction of every deterministic implementation that ``M`` is
observation-conforming to: ``M_r ⊑ chaos(M)``.

Instead of duplicating the chaos states per subset of the proposition
set, both chaos states carry the fresh proposition
:data:`CHAOS_PROPOSITION` and formulas are weakened accordingly
(``p ↦ p ∨ chaos``, ``¬p ↦ ¬p ∨ chaos`` — see
:func:`repro.logic.compositional.weaken_for_chaos`).
"""

from __future__ import annotations

from ..errors import ModelError
from .automaton import Automaton, State, Transition
from .incomplete import IncompleteAutomaton
from .interaction import InteractionUniverse
from .runs import Run

__all__ = [
    "CHAOS_PROPOSITION",
    "ClosureState",
    "ChaosState",
    "S_ALL",
    "S_DELTA",
    "chaotic_automaton",
    "chaotic_closure",
    "chaotic_core_transitions",
    "closure_state_transitions",
    "is_chaos_state",
    "closure_base_state",
    "run_stays_in_learned_part",
]

#: The fresh proposition ``p'`` of §2.7 carried by the chaos states.
CHAOS_PROPOSITION = "chaos"


class ClosureState:
    """A doubled state ``(s, 0)`` or ``(s, 1)`` of Definition 9.

    Closure states appear inside every product state and hence get
    hashed and compared on nearly every set operation of the
    verification loop.  Like :class:`Interaction` they are therefore
    hash-consed: the closure rebuilt after each learning step reuses
    the *same* state objects, so equality collapses to a pointer
    comparison and the hash is computed once.  The intern table is
    bounded by the states of the models in play.
    """

    __slots__ = ("base", "extended", "_hash", "_repr")

    _intern: "dict[tuple[State, bool], ClosureState]" = {}

    def __new__(cls, base: State, extended: bool):
        key = (base, bool(extended))
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.base = base
        self.extended = key[1]
        self._hash = hash((cls, key))
        cls._intern[key] = self
        return self

    def __reduce__(self):
        return (ClosureState, (self.base, self.extended))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ClosureState):
            return NotImplemented
        return self.extended == other.extended and self.base == other.base

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        # repr keys every deterministic sort in the pipeline; with
        # interned states the cached string is shared by all users.
        try:
            return self._repr
        except AttributeError:
            value = f"({self.base!r},{1 if self.extended else 0})"
            self._repr = value
            return value


class ChaosState:
    """One of the two chaotic states ``s_∀`` / ``s_δ`` of Definition 8."""

    __slots__ = ("kind", "_hash")

    def __init__(self, kind: str):
        self.kind = kind
        self._hash = hash(("ChaosState", kind))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ChaosState):
            return NotImplemented
        return self.kind == other.kind

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ChaosState, (self.kind,))

    def __repr__(self) -> str:
        return self.kind


#: The all-accepting chaotic state (``s_∀``, rendered ``s_all``).
S_ALL = ChaosState("s_all")
#: The all-blocking chaotic state (``s_δ``, rendered ``s_delta``).
S_DELTA = ChaosState("s_delta")


def is_chaos_state(state: State) -> bool:
    """True for ``s_∀`` and ``s_δ`` (also inside composed tuple states)."""
    return isinstance(state, ChaosState)


def closure_base_state(state: State) -> State | None:
    """The original ``M`` state behind a closure state, ``None`` for chaos."""
    if isinstance(state, ClosureState):
        return state.base
    if isinstance(state, ChaosState):
        return None
    raise ModelError(f"{state!r} is not a chaotic-closure state")


def run_stays_in_learned_part(run: Run) -> bool:
    """Does a closure run avoid ``s_∀``/``s_δ`` entirely?

    §4.2: a counterexample that never visits the chaotic states maps
    one-to-one onto a run of the learned (hence real, for a
    deterministic implementation) behavior — it proves a conflict
    without further testing ("fast conflict detection").
    """
    return not any(is_chaos_state(state) for state in run.states)


def chaotic_automaton(universe: InteractionUniverse, *, name: str = "M_c") -> Automaton:
    """The chaotic automaton of Definition 8 over the given alphabet."""
    transitions = []
    for interaction in universe:
        transitions.append(Transition(S_ALL, interaction, S_ALL))
        transitions.append(Transition(S_ALL, interaction, S_DELTA))
    return Automaton(
        states=[S_ALL, S_DELTA],
        inputs=universe.inputs,
        outputs=universe.outputs,
        transitions=transitions,
        initial=[S_ALL, S_DELTA],
        labels={S_ALL: {CHAOS_PROPOSITION}, S_DELTA: {CHAOS_PROPOSITION}},
        name=name,
    )


def closure_state_transitions(
    incomplete: IncompleteAutomaton,
    universe: InteractionUniverse,
    state: State,
    *,
    deterministic_implementation: bool = False,
) -> tuple[Transition, ...]:
    """All closure transitions leaving ``(state,0)`` or ``(state,1)``.

    This is the per-base-state slice of Definition 9: the doubled known
    transitions plus the ``(state,1)`` escapes into the chaotic core.
    It only depends on ``state``'s local knowledge — its outgoing
    transitions and refusals — which is what makes the chaotic closure
    incrementally maintainable (see :mod:`repro.automata.incremental`).
    """
    transitions: list[Transition] = []
    for transition in incomplete.automaton.transitions_from(state):
        for src_tag in (False, True):
            for dst_tag in (False, True):
                transitions.append(
                    Transition(
                        ClosureState(transition.source, src_tag),
                        transition.interaction,
                        ClosureState(transition.target, dst_tag),
                    )
                )
    refused = incomplete.refused(state)
    known = (
        frozenset(t.interaction for t in incomplete.automaton.transitions_from(state))
        if deterministic_implementation
        else frozenset()
    )
    source = ClosureState(state, True)
    for interaction in universe:
        if interaction in refused or interaction in known:
            continue
        transitions.append(Transition(source, interaction, S_ALL))
        transitions.append(Transition(source, interaction, S_DELTA))
    return tuple(transitions)


def chaotic_core_transitions(universe: InteractionUniverse) -> tuple[Transition, ...]:
    """The transitions of the chaotic core ``s_∀``/``s_δ`` (Definition 8)."""
    transitions: list[Transition] = []
    for interaction in universe:
        transitions.append(Transition(S_ALL, interaction, S_ALL))
        transitions.append(Transition(S_ALL, interaction, S_DELTA))
    return tuple(transitions)


def chaotic_closure(
    incomplete: IncompleteAutomaton,
    universe: InteractionUniverse,
    *,
    deterministic_implementation: bool = False,
    name: str | None = None,
) -> Automaton:
    """``chaos(M)`` of Definition 9.

    The alphabet of the closure is fixed by ``universe``, which plays the
    role of "all possible input and output combinations" in the
    definition; it must range over exactly the incomplete automaton's
    signal sets.

    With ``deterministic_implementation=True`` the ``(s,1)`` escapes are
    built only for interactions that are *unknown* at ``s`` — neither in
    ``T`` nor in ``T̄``.  Definition 9 literally escapes for everything
    not in ``T̄``, but for a §2.6-deterministic implementation an
    interaction already recorded in ``T`` has a unique, known successor,
    so escaping for it adds no behavior the implementation can exhibit
    (Theorem 1 still holds) while it *would* let the model checker keep
    producing counterexamples the learner can extract nothing new from.
    The iterative synthesis therefore uses this variant — it is what
    makes every learning step strictly increase ``|T| + |T̄|`` (§4.4's
    termination measure).
    """
    if universe.inputs != incomplete.inputs or universe.outputs != incomplete.outputs:
        raise ModelError(
            f"universe signals (I={sorted(universe.inputs)}, O={sorted(universe.outputs)}) do not "
            f"match automaton {incomplete.name!r} "
            f"(I={sorted(incomplete.inputs)}, O={sorted(incomplete.outputs)})"
        )

    transitions: list[Transition] = []
    # Per base state: the doubled known transitions (1) and the (s,1)
    # escapes into the chaotic core (2) — see closure_state_transitions.
    for state in incomplete.states:
        transitions.extend(
            closure_state_transitions(
                incomplete,
                universe,
                state,
                deterministic_implementation=deterministic_implementation,
            )
        )
    # 3) The chaotic core itself.
    transitions.extend(chaotic_core_transitions(universe))

    states = [ClosureState(s, tag) for s in incomplete.states for tag in (False, True)]
    states.extend([S_ALL, S_DELTA])
    labels: dict[State, frozenset[str]] = {
        ClosureState(s, tag): incomplete.labels(s) for s in incomplete.states for tag in (False, True)
    }
    labels[S_ALL] = frozenset({CHAOS_PROPOSITION})
    labels[S_DELTA] = frozenset({CHAOS_PROPOSITION})
    initial = [ClosureState(q, tag) for q in incomplete.initial for tag in (False, True)]
    return Automaton(
        states=states,
        inputs=incomplete.inputs,
        outputs=incomplete.outputs,
        transitions=transitions,
        initial=initial,
        labels=labels,
        name=name if name is not None else f"chaos({incomplete.name})",
    )
